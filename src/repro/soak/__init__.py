"""Fleet-scale soak runs over the sharded simulation core.

``python -m repro.soak --shards N`` runs one :class:`FleetSpec` --
pump cells, control-plane pairs, optional cross-shard ring traffic --
either inline (one simulator, the baseline) or sharded across ``N``
worker processes via :func:`repro.sim.shard.run_sharded`, then folds
the per-shard audit/metrics/trace snapshots into one fleet document
(:func:`repro.obs.audit.merge_snapshots` and friends) that
``python -m repro.obs.report run`` renders as a single report.

The package's contract (tested in ``tests/integration``): a 1-shard
sharded run is bit-identical to the inline baseline, and an N-shard
run's merged conformance equals the baseline's.  See
``docs/SCALING.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.audit import merge_snapshots
from repro.obs.profile import merge_profiles
from repro.obs.registry import merge_snapshots as merge_metrics
from repro.obs.stream import DeltaFolder, LiveWriter
from repro.obs.trace import merge_traces
from repro.sim.shard import reset_process_state, run_sharded
from repro.soak.fleet import (
    FleetContext,
    FleetSpec,
    build_fleet_inline,
    build_fleet_shard,
    fleet_partition,
)

__all__ = [
    "FleetContext",
    "FleetResult",
    "FleetSpec",
    "build_fleet_inline",
    "build_fleet_shard",
    "fleet_partition",
    "run_fleet",
]


@dataclass
class FleetResult:
    """Outcome of :func:`run_fleet`: merged documents plus provenance.

    ``payloads[k]`` is shard ``k``'s raw ``collect()`` payload (one
    entry for inline runs); ``audit``/``metrics``/``trace`` are the
    merged fleet documents.  ``windows``/``messages`` come from the
    synchronization protocol (1 window, 0 messages inline).
    """

    spec: FleetSpec
    mode: str
    lookahead: float
    wall_s: float
    windows: int = 1
    messages: int = 0
    payloads: List[Dict[str, Any]] = field(default_factory=list)
    audit: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Dict[str, Any]] = None
    #: Merged wall-clock profile (``spec.profile`` runs only).
    profile: Optional[Dict[str, Any]] = None

    def _count(self, name: str) -> int:
        return sum(p["counts"][name] for p in self.payloads)

    @property
    def packets_delivered(self) -> int:
        """Audited data packets delivered fleet-wide (pump + ring)."""
        return self._count("pump_received") + self._count("cross_received")

    @property
    def packets_per_wall_second(self) -> float:
        """Delivered audited packets per wall-clock second."""
        return self.packets_delivered / self.wall_s if self.wall_s else 0.0

    def invariant_failures(self) -> List[str]:
        """Every broken fleet invariant, as human-readable strings.

        Empty means the run is healthy: control planes converged with
        zero lease violations, deliveries account for every sent packet
        (minus at most one in-flight batch per flow at cutoff), and the
        deterministic tight-contract violations survived the merge.
        """
        failures: List[str] = []
        spec = self.spec
        if spec.cp_pairs:
            for payload in self.payloads:
                cp = payload["controlplane"]
                where = f"shard {payload['shard']}"
                if cp["converged"] is not True:
                    failures.append(f"{where}: control plane not converged")
                if cp["lease_violations"]:
                    failures.append(
                        f"{where}: {len(cp['lease_violations'])} lease "
                        "violation(s)"
                    )
        # Armed fault episodes legitimately drop packets, so only the
        # upper accounting bound (no packet invented) survives chaos.
        lossless = not spec.faults
        if spec.topology == "pipeline":
            sent = self._count("pipe_sent")
            received = self._count("pump_received")
            expected = sent * spec.fanout
            # At cutoff each VC may have one batch on the ingress leg
            # and one held at the worker, each worth ``fanout`` copies.
            in_flight = spec.total_vcs * spec.pump_packets * spec.fanout * 2
            if not ((not lossless or expected - in_flight <= received)
                    and received <= expected):
                failures.append(
                    f"pipeline accounting: sent {sent} (x{spec.fanout} "
                    f"fan-out = {expected}), received {received}, "
                    f"in-flight bound {in_flight}"
                )
        else:
            sent = self._count("pump_sent")
            received = self._count("pump_received")
            in_flight = spec.total_vcs * spec.pump_packets
            if not ((not lossless or sent - in_flight <= received)
                    and received <= sent):
                failures.append(
                    f"pump accounting: sent {sent}, received {received}, "
                    f"in-flight bound {in_flight}"
                )
        xsent = self._count("cross_sent")
        xreceived = self._count("cross_received")
        x_in_flight = 2 * spec.cells * spec.cross_packets
        if not ((not lossless or xsent - x_in_flight <= xreceived)
                and xreceived <= xsent):
            failures.append(
                f"ring accounting: sent {xsent}, received {xreceived}, "
                f"in-flight bound {x_in_flight}"
            )
        summary = self.audit.get("summary", {})
        expected_vcs = (
            self._count("pump_vcs")
            + self._count("pipe_vcs") * spec.fanout
            + self._count("cross_vcs")
        )
        if summary.get("connections", 0) < expected_vcs:
            failures.append(
                f"merged audit lost connections: "
                f"{summary.get('connections')} < {expected_vcs}"
            )
        tight_vcs = (
            spec.total_vcs // spec.tight_every if spec.tight_every else 0
        )
        if (tight_vcs and spec.duration >= 3 * spec.pump_period
                and not summary.get("counts", {}).get("violated")):
            failures.append(
                f"expected violated periods from {tight_vcs} "
                "tight-contract VC(s), merged audit has none"
            )
        return failures


def _final_record(audit: Dict[str, Any], payloads: List[Dict[str, Any]],
                  windows: int, wall_s: float) -> Dict[str, Any]:
    """The closing live-telemetry record, from the merged documents."""
    summary = audit.get("summary", {})
    first: Optional[float] = None
    for conn in audit.get("connections", ()):
        ttfv = conn.get("time_to_first_violation")
        if ttfv is not None:
            at = conn.get("registered_at", 0.0) + ttfv
            if first is None or at < first:
                first = at
    return {
        "kind": "final",
        "t": audit.get("now", 0.0),
        "windows": windows,
        "connections": summary.get("connections", 0),
        "periods": summary.get("periods", 0),
        "counts": summary.get("counts", {}),
        "conformance": summary.get("conformance"),
        "first_breach_at": first,
        "skew_over_bound": sum(
            group.get("over_bound", 0) for group in audit.get("groups", ())
        ),
        "renegotiations": sum(
            summary.get("renegotiations", {}).values()
        ),
        "releases": sum(summary.get("releases", {}).values()),
        "lease_violations": sum(
            len(p["controlplane"]["lease_violations"]) for p in payloads
        ),
        "wall_s": wall_s,
    }


def run_fleet(
    spec: FleetSpec,
    *,
    inline: bool = False,
    window: Optional[float] = None,
    mp_context: str = "spawn",
    progress: Optional[Callable[[float, int], None]] = None,
    live: Optional[Any] = None,
) -> FleetResult:
    """Run one fleet spec to completion and merge its outputs.

    ``inline=True`` builds the whole fleet on one simulator in this
    process (resetting process-global id counters first, so the result
    is comparable to what a freshly spawned worker produces); otherwise
    ``spec.shards`` worker processes run the conservative window
    protocol.  ``window`` and ``mp_context`` pass through to
    :func:`repro.sim.shard.run_sharded`.

    With ``spec.stream`` set (sharded runs only), workers ship
    per-barrier telemetry deltas that a :class:`DeltaFolder` folds as
    they arrive, and the merged audit/metrics come out of the folder --
    byte-identical to the snapshot-merge path, without the per-shard
    finish-time snapshots ever existing.  ``live`` is an optional
    file-like sink: one rolling JSON line per barrier (streaming runs)
    plus a ``final`` record (every run), consumed by
    ``python -m repro.obs.live``.  The caller owns closing the sink.
    """
    spec.validate()
    lookahead = fleet_partition(spec).lookahead
    writer = LiveWriter(live) if live is not None else None
    if inline:
        reset_process_state()
        started = time.perf_counter()
        ctx = build_fleet_inline(spec)
        ctx.sim.run(until=spec.duration)
        payload = ctx.collect()
        result = FleetResult(
            spec=spec, mode="inline", lookahead=lookahead,
            wall_s=time.perf_counter() - started,
            payloads=[payload],
            audit=payload["audit"], metrics=payload["metrics"],
            trace=payload["trace"],
        )
        if payload.get("profile") is not None:
            result.profile = merge_profiles([payload["profile"]])
        if writer is not None:
            writer.write(_final_record(
                result.audit, result.payloads, result.windows,
                result.wall_s,
            ))
        return result
    labels = [f"s{k}" for k in range(spec.shards)]
    folder: Optional[DeltaFolder] = None
    on_delta = None
    barrier_cb = progress
    if spec.stream:
        folder = DeltaFolder(
            spec.shards, labels=labels, max_timeline=spec.max_timeline,
        )

        def on_delta(shard: int, _t_end: float, delta: Any) -> None:
            folder.fold(shard, delta)

        def barrier_cb(t_end: float, windows: int,
                       _user: Optional[Callable] = progress) -> None:
            folder.windows = windows
            if writer is not None:
                writer.write({"kind": "window", **folder.rolling()})
            if _user is not None:
                _user(t_end, windows)

    run = run_sharded(
        build_fleet_shard, spec.shards, until=spec.duration,
        lookahead=lookahead, args=(spec,), window=window,
        mp_context=mp_context, progress=barrier_cb, on_delta=on_delta,
    )
    if folder is not None:
        for payload in run.results:
            folder.fold(payload["shard"], payload.pop("delta", None))
        audit = folder.result_audit()
        metrics = folder.result_metrics()
    else:
        audit = merge_snapshots(
            [p["audit"] for p in run.results], labels=labels,
        )
        metrics = merge_metrics([p["metrics"] for p in run.results])
    trace = None
    if spec.trace:
        trace = merge_traces(
            [p["trace"] for p in run.results], labels=labels,
        )
    profile = None
    if any(p.get("profile") is not None for p in run.results):
        profile = merge_profiles(
            [p["profile"] for p in run.results], labels=labels,
        )
    result = FleetResult(
        spec=spec, mode="sharded", lookahead=lookahead,
        wall_s=run.wall_s, windows=run.windows, messages=run.messages,
        payloads=run.results, audit=audit, metrics=metrics, trace=trace,
        profile=profile,
    )
    if writer is not None:
        writer.write(_final_record(
            audit, run.results, run.windows, run.wall_s,
        ))
    return result
