"""CLI for fleet-scale soak runs: ``python -m repro.soak --shards N``.

Builds a :class:`~repro.soak.FleetSpec` from the flags, runs it
(sharded by default, ``--inline`` for the single-process baseline),
prints a one-screen summary, optionally writes the merged audit
snapshot (``--out``) and renders it through ``repro.obs.report``
(``--render``).  Exits non-zero when a fleet invariant fails, which is
what lets CI use a small soak as a smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.soak import FleetSpec, run_fleet

#: Named flag-default bundles (``--preset NAME``); explicit flags win.
PRESETS: Dict[str, Dict[str, Any]] = {
    "smoke": {
        "cells": 2, "vcs_per_cell": 3, "cp_pairs": 0,
        "duration": 8.0, "period": 0.5, "tight_every": 6,
    },
    "pipeline-smoke": {
        "cells": 2, "vcs_per_cell": 3, "cp_pairs": 0,
        "duration": 8.0, "period": 0.5, "tight_every": 6,
        "topology": "pipeline",
    },
    "soak": {
        "cells": 8, "vcs_per_cell": 16, "cp_pairs": 2,
        "duration": 60.0, "cross": True,
    },
    "trace-abr": {
        "cells": 4, "vcs_per_cell": 8, "cp_pairs": 0,
        "duration": 20.0, "period": 0.5,
        "workload": "trace:news", "flow": "abr",
    },
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.soak",
        description="Run a sharded (or inline-baseline) soak fleet.",
    )
    parser.add_argument("--list", action="store_true",
                        help="list the available presets and exit")
    parser.add_argument("--preset", default=None, choices=sorted(PRESETS),
                        help="apply a named bundle of flag defaults "
                             "(explicit flags still win)")
    parser.add_argument("--shards", type=int, default=1,
                        help="virtual-time domains / worker processes")
    parser.add_argument("--cells", type=int, default=4,
                        help="pump cells (two hosts each)")
    parser.add_argument("--vcs-per-cell", type=int, default=8,
                        help="audited VCs per cell")
    parser.add_argument("--cp-pairs", type=int, default=1,
                        help="control-plane pub/sub pairs")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="virtual seconds to simulate")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cross", action="store_true",
                        help="add the cross-shard gateway ring")
    parser.add_argument("--inline", action="store_true",
                        help="run unsharded in this process (baseline)")
    parser.add_argument("--pump-packets", type=int, default=2,
                        help="packets per VC per period")
    parser.add_argument("--pump-bytes", type=int, default=1200)
    parser.add_argument("--period", type=float, default=1.0,
                        help="pump/verdict period (virtual seconds)")
    parser.add_argument("--tight-every", type=int, default=16,
                        help="every Nth VC gets a violated-by-design "
                             "delay contract (0 disables)")
    parser.add_argument("--workload", default="cbr",
                        help="pump workload: 'cbr' or 'trace:<name>' "
                             "(GoP frame-trace replay)")
    parser.add_argument("--flow", default="open",
                        choices=("open", "paced", "abr"),
                        help="flow-control variant per pump VC")
    parser.add_argument("--topology", default="cells",
                        choices=("cells", "pipeline"),
                        help="per-cell traffic shape")
    parser.add_argument("--fanout", type=int, default=2,
                        help="pipeline republish fan-out")
    parser.add_argument("--timeline", type=int, default=16,
                        help="retained verdict-timeline entries per VC "
                             "(0 keeps full timelines)")
    parser.add_argument("--flight-recorder", action="store_true",
                        help="keep the per-packet flight-recorder ring "
                             "(off by default at fleet scale)")
    parser.add_argument("--trace", action="store_true",
                        help="record and merge lifecycle traces")
    parser.add_argument("--window", type=float, default=None,
                        help="cap the synchronization window below the "
                             "lookahead (protocol stress testing)")
    parser.add_argument("--mp-context", default="spawn",
                        choices=("spawn", "fork", "forkserver"))
    parser.add_argument("--stream", action="store_true",
                        help="ship per-window telemetry deltas instead of "
                             "finish-time snapshots (sharded runs only)")
    parser.add_argument("--live", default=None, metavar="PATH|FD",
                        help="write rolling JSONL telemetry records here "
                             "('-' for stdout, digits for an inherited fd); "
                             "tail with python -m repro.obs.live")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="enable wall-clock span profiling and write a "
                             "Chrome trace here (also prints the "
                             "per-subsystem table)")
    parser.add_argument("--out", default=None,
                        help="write the merged audit snapshot JSON here")
    parser.add_argument("--render", action="store_true",
                        help="render the merged report to stdout")
    parser.add_argument("--max-rows", type=int, default=40,
                        help="per-VC rows in the rendered report "
                             "(0 = unlimited)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _parser()
    # Two-phase parse: a preset only changes *defaults*, so any flag
    # the user passes explicitly still wins over the preset's value.
    preview, _ = parser.parse_known_args(argv)
    if preview.list:
        for name in sorted(PRESETS):
            settings = ", ".join(
                f"{key}={value}" for key, value in PRESETS[name].items()
            )
            print(f"{name}: {settings}")
        return 0
    if preview.preset:
        parser.set_defaults(**PRESETS[preview.preset])
    args = parser.parse_args(argv)
    spec = FleetSpec(
        cells=args.cells,
        vcs_per_cell=args.vcs_per_cell,
        shards=args.shards,
        cp_pairs=args.cp_pairs,
        duration=args.duration,
        seed=args.seed,
        cross_traffic=args.cross,
        pump_packets=args.pump_packets,
        pump_bytes=args.pump_bytes,
        pump_period=args.period,
        tight_every=args.tight_every,
        max_timeline=args.timeline or None,
        flight_recorder=args.flight_recorder,
        trace=args.trace,
        workload=args.workload,
        flow=args.flow,
        topology=args.topology,
        fanout=args.fanout,
        stream=args.stream,
        profile=args.profile is not None,
    )
    if args.stream and args.inline:
        parser.error("--stream requires a sharded run (drop --inline)")
    try:
        spec.validate()
    except ValueError as exc:
        parser.error(str(exc))

    def progress(t_end: float, windows: int) -> None:
        print(f"  window {windows}: virtual time {t_end:.3f}/"
              f"{spec.duration:.3f} s", file=sys.stderr)

    live_sink = None
    close_live = False
    if args.live is not None:
        from repro.obs.stream import open_live_sink

        live_sink, close_live = open_live_sink(args.live)
    try:
        result = run_fleet(
            spec, inline=args.inline, window=args.window,
            mp_context=args.mp_context,
            progress=progress if not args.inline else None,
            live=live_sink,
        )
    finally:
        if close_live and live_sink is not None:
            live_sink.close()

    summary = result.audit.get("summary", {})
    counts = summary.get("counts", {})
    conformance = summary.get("conformance")
    print(
        f"{result.mode} run: {spec.cells} cell(s) x "
        f"{spec.vcs_per_cell} VC(s) + {spec.cp_pairs} control-plane "
        f"pair(s) over {spec.shards if not args.inline else 1} "
        f"process(es), {spec.duration:g} virtual s"
    )
    print(
        f"  synchronization: lookahead "
        f"{result.lookahead if result.lookahead != float('inf') else 'inf'}"
        f", {result.windows} window(s), {result.messages} cross-shard "
        f"packet(s)"
    )
    print(
        f"  delivered {result.packets_delivered} audited packets in "
        f"{result.wall_s:.2f} wall s "
        f"({result.packets_per_wall_second:,.0f} packets/wall-s)"
    )
    print(
        f"  audit: {summary.get('connections', 0)} connection(s), "
        f"{summary.get('periods', 0)} period(s), conformance "
        f"{conformance if conformance is None else round(conformance, 4)} "
        f"(met {counts.get('met', 0)}, violated "
        f"{counts.get('violated', 0)})"
    )
    try:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        print(f"  coordinator peak RSS: {rss_kb / 1024:.1f} MiB"
              f"{' (streaming deltas)' if spec.stream else ''}")
    except ImportError:  # pragma: no cover - non-POSIX
        pass

    if args.profile and result.profile is not None:
        from repro.obs.profile import (
            export_chrome_trace,
            render_profile_table,
        )

        export_chrome_trace(result.profile, args.profile)
        print(f"  profile trace written to {args.profile}")
        print(render_profile_table(result.profile))

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.audit, handle)
        print(f"  merged audit written to {args.out}")
    if args.render:
        from repro.obs.report import render_run

        path = args.out
        if path is None:
            path = "fleet_audit.json"
            with open(path, "w") as handle:
                json.dump(result.audit, handle)
        print()
        print(render_run(path, max_rows=args.max_rows or None))

    failures = result.invariant_failures()
    for failure in failures:
        print(f"INVARIANT FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
