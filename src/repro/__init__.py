"""Reproduction of *A Continuous Media Transport and Orchestration
Service* (Campbell, Coulson, Garcia, Hutchison — ACM SIGCOMM 1992).

The package is layered exactly as Figure 1 of the paper:

- :mod:`repro.ansa` -- the object-based distributed application platform
  (ANSA with continuous-media extensions): invocation and Streams.
- :mod:`repro.orchestration` -- the three-level orchestration service
  (HLO, HLO agents, LLO) for co-ordinating related transport connections.
- :mod:`repro.transport` -- the continuous-media transport service:
  simplex VCs, extended QoS, remote connect, renegotiation, shared
  circular-buffer data transfer, rate-based flow control.
- :mod:`repro.netsim` -- the simulated multiservice network that stands
  in for the paper's transputer-based high-speed network emulator.
- :mod:`repro.sim` -- the discrete-event kernel everything runs on.
- :mod:`repro.media` -- continuous-media sources, sinks and metrics.
- :mod:`repro.apps` -- the paper's demonstration applications.
"""

__version__ = "1.0.0"
