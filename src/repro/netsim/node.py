"""Hosts and routers.

A :class:`Node` owns the outgoing :class:`~repro.netsim.link.Link`
objects toward its neighbours.  A :class:`Router` forwards packets along
the route computed by the :class:`~repro.netsim.topology.Network`.  A
:class:`Host` is an end-system: it has a drifting local clock (paper
section 3.6) and a registry of payload handlers, which is how protocol
entities (transport, orchestrator) attach to the network.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.sim.clock import NodeClock
from repro.sim.scheduler import Simulator

PacketHandler = Callable[[Packet], None]


class Node:
    """Base node: a named entity with outgoing links."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.links: Dict[str, Link] = {}  # neighbour name -> outgoing link

    def attach_link(self, link: Link) -> None:
        """Adopt an outgoing link originating at this node."""
        if link.src != self.name:
            raise ValueError(
                f"link {link!r} does not originate at node {self.name!r}"
            )
        self.links[link.dst] = link
        link.on_deliver = None  # the Network wires delivery

    def link_to(self, neighbour: str) -> Link:
        """The outgoing link toward ``neighbour``; KeyError if none."""
        try:
            return self.links[neighbour]
        except KeyError:
            raise KeyError(f"{self.name!r} has no link to {neighbour!r}") from None

    def receive(self, packet: Packet) -> None:
        """Handle a packet delivered to this node (subclass hook)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Human-readable summary for debugging."""
        return f"{type(self).__name__}({self.name!r})"


class Router(Node):
    """Store-and-forward router.

    ``forward`` is installed by the :class:`Network` and maps a
    destination node name to the next-hop neighbour name.  For
    multicast packets the router *splits*: one copy per distinct next
    hop, each carrying the subset of group targets reached through it
    -- source-rooted shortest-path-tree replication.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.forward: Callable[[str], str] = lambda dst: dst
        self.forwarded_packets = 0
        self.multicast_splits = 0
        self.crashed = False
        self.dropped_while_crashed = 0

    def crash(self) -> None:
        """Fail-stop the router: every packet it receives is dropped.

        Links attached to the router keep delivering into it (the wire
        is intact; the forwarding engine is not), which is exactly the
        failure mode the transport monitor must surface as sustained
        zero delivery.  Idempotent.
        """
        self.crashed = True
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "node.crash", track=f"node:{self.name}", cat="fault",
            )

    def restart(self) -> None:
        """Bring a crashed router back; forwarding state is stateless
        (routes live in the Network), so recovery is immediate.  Idempotent.
        """
        self.crashed = False
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "node.restart", track=f"node:{self.name}", cat="fault",
                args={"dropped_while_crashed": self.dropped_while_crashed},
            )

    def receive(self, packet: Packet) -> None:
        """Forward ``packet`` toward its destination (or drop if crashed)."""
        if self.crashed:
            self.dropped_while_crashed += 1
            return
        if packet.group_targets is not None:
            self._forward_multicast(packet)
            return
        if packet.dst == self.name:
            return  # routers sink packets addressed to themselves
        next_hop = self.forward(packet.dst)
        self.forwarded_packets += 1
        self.link_to(next_hop).send(packet)

    def _forward_multicast(self, packet: Packet) -> None:
        """Split a multicast packet: one copy per distinct next hop."""
        from dataclasses import replace as dc_replace

        branches: dict[str, list[str]] = {}
        for target in packet.group_targets:
            if target == self.name:
                continue
            branches.setdefault(self.forward(target), []).append(target)
        if len(branches) > 1:
            self.multicast_splits += 1
        for next_hop, targets in branches.items():
            copy = dc_replace(packet, group_targets=tuple(targets))
            self.forwarded_packets += 1
            self.link_to(next_hop).send(copy)


class Host(Node):
    """An end-system with a local clock and payload handlers.

    Handlers are keyed by *payload kind*: the class name of the payload
    object, or an explicit string key registered with
    :meth:`register_handler`.  Payload objects may define a
    ``handler_key`` attribute to override the class-name key; the
    transport entity uses ``"tpdu"`` and the orchestrator ``"opdu"``.
    """

    def __init__(self, sim: Simulator, name: str, clock: Optional[NodeClock] = None):
        super().__init__(sim, name)
        self.clock = clock or NodeClock(sim)
        self._handlers: Dict[str, PacketHandler] = {}
        self.received_packets = 0
        self.unhandled_packets = 0
        self._track = sys.intern(f"node:{name}")
        #: Interned ``rx:<key>`` trace labels, built once per payload kind.
        self._rx_labels: Dict[str, str] = {}

    def register_handler(self, key: str, handler: PacketHandler) -> None:
        """Attach a protocol entity for payloads with ``handler_key == key``."""
        if key in self._handlers:
            raise ValueError(f"handler for {key!r} already registered on {self.name}")
        self._handlers[key] = handler

    def unregister_handler(self, key: str) -> None:
        """Detach the protocol entity registered under ``key``, if any."""
        self._handlers.pop(key, None)

    def receive(self, packet: Packet) -> None:
        """Dispatch a delivered packet to the handler for its payload kind."""
        if packet.group_targets is not None and (
            self.name not in packet.group_targets
        ):
            # A multicast copy routed through this host (degenerate
            # topology): hosts do not forward.
            return
        self.received_packets += 1
        key = getattr(packet.payload, "handler_key", type(packet.payload).__name__)
        trace = self.sim.trace
        if trace.packets:
            label = self._rx_labels.get(key)
            if label is None:
                label = self._rx_labels[key] = sys.intern(f"rx:{key}")
            trace.instant(
                label, track=self._track, cat="host",
                args={"src": packet.src, "flow": packet.flow_id,
                      "packet_id": packet.packet_id},
            )
        handler = self._handlers.get(key)
        if handler is None:
            self.unhandled_packets += 1
            Packet.release(packet)
            return
        handler(packet)
        # The packet shell terminates here: no handler retains it (they
        # copy out payload fields synchronously), so pooled shells go
        # back to the freelist.  Multicast pass-through copies returned
        # above are never recycled -- they may alias a shell still in
        # flight elsewhere.
        Packet.release(packet)
