"""Simplex links with bandwidth, delay, jitter, loss and bit errors.

A link models the four impairments the paper's QoS parameters describe
(section 3.2): throughput (serialisation at ``bandwidth_bps``),
end-to-end delay (propagation + queueing), delay jitter (a pluggable
jitter model), and packet/bit error rates (pluggable loss model and a
BER).  Links have a finite buffer, so congestion produces both loss and
queueing delay, which the transport monitor must detect and report
(Table 2).

Scheduling is strict priority with two bands: CONTROL/RESERVED above
BEST_EFFORT, implementing the guaranteed out-of-band control channels
of paper section 5.
"""

from __future__ import annotations

import random as _random
from collections import deque
from typing import Callable, Deque, Optional

from repro.netsim.packet import Packet, Priority
from repro.obs.registry import MetricsRegistry
from repro.sim.scheduler import Simulator


class LossModel:
    """Decides whether a packet is lost in transit."""

    def is_lost(self, rng: _random.Random) -> bool:
        raise NotImplementedError

    def expected_loss(self) -> float:
        """Long-run loss fraction, used for QoS offer computation."""
        raise NotImplementedError


class NoLoss(LossModel):
    """Lossless link."""

    def is_lost(self, rng: _random.Random) -> bool:
        return False

    def expected_loss(self) -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Independent per-packet loss with probability ``p``."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = p

    def is_lost(self, rng: _random.Random) -> bool:
        return rng.random() < self.p

    def expected_loss(self) -> float:
        return self.p


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert-Elliott).

    The channel alternates between a GOOD state with loss ``p_good`` and
    a BAD state with loss ``p_bad``; transition probabilities are
    evaluated per packet.  This models the 'temporary glitches occuring
    in individual VCs' the paper cites as a drift source (section 3.6).
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.3,
        p_good: float = 0.0,
        p_bad: float = 0.5,
    ):
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self._bad = False

    def is_lost(self, rng: _random.Random) -> bool:
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        return rng.random() < (self.p_bad if self._bad else self.p_good)

    def expected_loss(self) -> float:
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0.0:
            return self.p_bad if self._bad else self.p_good
        stationary_bad = self.p_good_to_bad / denominator
        return stationary_bad * self.p_bad + (1 - stationary_bad) * self.p_good


class JitterModel:
    """Draws an extra per-packet delay (seconds, non-negative)."""

    def sample(self, rng: _random.Random) -> float:
        raise NotImplementedError

    def bound(self) -> float:
        """Upper bound on the extra delay, for QoS offer computation."""
        raise NotImplementedError


class NoJitter(JitterModel):
    def sample(self, rng: _random.Random) -> float:
        return 0.0

    def bound(self) -> float:
        return 0.0


class UniformJitter(JitterModel):
    """Uniform extra delay in ``[0, max_jitter]`` seconds."""

    def __init__(self, max_jitter: float):
        if max_jitter < 0:
            raise ValueError(f"negative jitter bound {max_jitter}")
        self.max_jitter = max_jitter

    def sample(self, rng: _random.Random) -> float:
        return rng.uniform(0.0, self.max_jitter)

    def bound(self) -> float:
        return self.max_jitter


class TruncatedGaussianJitter(JitterModel):
    """Gaussian extra delay truncated at zero and ``cap`` seconds."""

    def __init__(self, mean: float, sigma: float, cap: Optional[float] = None):
        if mean < 0 or sigma < 0:
            raise ValueError("jitter mean and sigma must be non-negative")
        self.mean = mean
        self.sigma = sigma
        self.cap = cap if cap is not None else mean + 4 * sigma

    def sample(self, rng: _random.Random) -> float:
        return min(max(rng.gauss(self.mean, self.sigma), 0.0), self.cap)

    def bound(self) -> float:
        return self.cap


class LinkStats:
    """Per-link counters, held in a :class:`~repro.obs.registry.MetricsRegistry`.

    The registry owns the values (so ``sim.metrics.as_dict()`` sees
    every link); the attribute API the benchmarks read is a thin
    property view over those counters.  Constructed without a registry
    (unit tests) it allocates a private one.
    """

    _FIELDS = (
        "sent_packets", "delivered_packets", "lost_packets",
        "buffer_drops", "corrupted_packets", "sent_bits", "delivered_bits",
    )

    def __init__(self, metrics: Optional["MetricsRegistry"] = None,
                 scope: str = "link") -> None:
        metrics = metrics if metrics is not None else MetricsRegistry()
        for field in self._FIELDS:
            setattr(self, "_" + field, metrics.counter(f"{scope}.{field}"))
        self._total_queue_delay = metrics.gauge(f"{scope}.total_queue_delay")

    @property
    def loss_fraction(self) -> float:
        if self.sent_packets == 0:
            return 0.0
        return (self.lost_packets + self.buffer_drops) / self.sent_packets


def _stats_view(field: str):
    def get(self: LinkStats) -> int:
        return getattr(self, "_" + field).value

    def set_(self: LinkStats, value: int) -> None:
        getattr(self, "_" + field).value = value

    return property(get, set_)


for _field in LinkStats._FIELDS + ("total_queue_delay",):
    setattr(LinkStats, _field, _stats_view(_field))
del _field


class Link:
    """A simplex link between two nodes.

    Packets are serialised one at a time at ``bandwidth_bps``; strict
    priority between the CONTROL/RESERVED band and BEST_EFFORT, FIFO
    within a band.  Delivery order within a band is preserved even under
    jitter (jitter extends a packet's delivery time but never reorders).

    Args:
        sim: the simulator.
        src, dst: node names (routing is by name).
        bandwidth_bps: serialisation rate in bits/second.
        prop_delay: fixed propagation delay in seconds.
        jitter: per-packet extra-delay model.
        loss: packet-loss model.
        ber: independent bit-error probability; a packet of ``n`` bits is
            marked corrupted with probability ``1 - (1-ber)**n``.
        buffer_bytes: transmit buffer size; arrivals beyond it are
            dropped (counted in ``stats.buffer_drops``).
        rng: random stream (defaults to a fresh seeded stream).
    """

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        bandwidth_bps: float,
        prop_delay: float = 0.001,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        rng: Optional[_random.Random] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"negative propagation delay {prop_delay}")
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"BER {ber} outside [0, 1]")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.jitter = jitter or NoJitter()
        self.loss = loss or NoLoss()
        self.ber = ber
        self.buffer_bytes = buffer_bytes
        self.rng = rng or _random.Random(0)
        self.stats = LinkStats(sim.metrics, f"link.{src}->{dst}")
        self.on_deliver: Optional[Callable[[Packet], None]] = None
        self._high: Deque[tuple[Packet, float]] = deque()
        self._low: Deque[tuple[Packet, float]] = deque()
        self._queued_bytes = 0.0
        self._transmitting = False
        # No-reorder clamp per priority band: jitter must not reorder
        # deliveries *within a band*, but the CONTROL/RESERVED band must
        # never be held behind a BEST_EFFORT packet's jittered delivery
        # (the guaranteed out-of-band control channels of section 5).
        self._last_delivery_high = 0.0
        self._last_delivery_low = 0.0

    # -- capacity accounting used by the reservation manager ------------

    @property
    def queued_bytes(self) -> float:
        return self._queued_bytes

    def tx_time(self, size_bits: int) -> float:
        """Serialisation time for a packet of ``size_bits``."""
        return size_bits / self.bandwidth_bps

    # -- data path -------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission."""
        self.stats.sent_packets += 1
        self.stats.sent_bits += packet.size_bits
        if self._queued_bytes + packet.size_bytes > self.buffer_bytes:
            self.stats.buffer_drops += 1
            trace = self.sim.trace
            if trace.packets:
                trace.instant(
                    "drop:buffer", track=f"link:{self.src}->{self.dst}",
                    cat="link", args={"flow": packet.flow_id},
                )
            return
        self._queued_bytes += packet.size_bytes
        entry = (packet, self.sim.now)
        if packet.priority >= Priority.RESERVED:
            self._high.append(entry)
        else:
            self._low.append(entry)
        if not self._transmitting:
            self._start_next()

    def _start_next(self) -> None:
        queue = self._high if self._high else self._low
        if not queue:
            self._transmitting = False
            return
        self._transmitting = True
        packet, enqueued_at = queue.popleft()
        self.stats.total_queue_delay += self.sim.now - enqueued_at
        tx = self.tx_time(packet.size_bits)
        self.sim.call_after(tx, lambda: self._tx_done(packet))

    def _tx_done(self, packet: Packet) -> None:
        self._queued_bytes -= packet.size_bytes
        trace = self.sim.trace
        if trace.packets:
            # Serialisation occupancy: this packet held the link from
            # tx-start to now.
            now = self.sim.now
            trace.complete(
                packet.flow_id or type(packet.payload).__name__,
                now - self.tx_time(packet.size_bits), now,
                track=f"link:{self.src}->{self.dst}", cat="link",
                args={"bits": packet.size_bits,
                      "priority": int(packet.priority)},
            )
        lost = self.loss.is_lost(self.rng)
        if lost:
            self.stats.lost_packets += 1
            if trace.packets:
                trace.instant(
                    "loss", track=f"link:{self.src}->{self.dst}", cat="link",
                    args={"flow": packet.flow_id},
                )
        else:
            if self.ber > 0.0:
                p_corrupt = 1.0 - (1.0 - self.ber) ** packet.size_bits
                if self.rng.random() < p_corrupt:
                    packet.corrupted = True
                    self.stats.corrupted_packets += 1
            arrival = self.sim.now + self.prop_delay + self.jitter.sample(self.rng)
            # Jitter must not reorder packets within a priority band
            # (but may reorder across bands: control traffic is never
            # clamped behind a best-effort delivery).
            if packet.priority >= Priority.RESERVED:
                arrival = max(arrival, self._last_delivery_high)
                self._last_delivery_high = arrival
            else:
                arrival = max(arrival, self._last_delivery_low)
                self._last_delivery_low = arrival
            self.sim.call_at(arrival, lambda: self._deliver(packet))
        self._start_next()

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bits += packet.size_bits
        packet.hops += 1
        if self.on_deliver is not None:
            self.on_deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.src}->{self.dst}, {self.bandwidth_bps/1e6:.1f} Mbit/s, "
            f"{self.prop_delay*1e3:.2f} ms)"
        )
