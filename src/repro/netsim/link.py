"""Simplex links with bandwidth, delay, jitter, loss and bit errors.

A link models the four impairments the paper's QoS parameters describe
(section 3.2): throughput (serialisation at ``bandwidth_bps``),
end-to-end delay (propagation + queueing), delay jitter (a pluggable
jitter model), and packet/bit error rates (pluggable loss model and a
BER).  Links have a finite buffer, so congestion produces both loss and
queueing delay, which the transport monitor must detect and report
(Table 2).

Scheduling is strict priority with two bands: CONTROL/RESERVED above
BEST_EFFORT, implementing the guaranteed out-of-band control channels
of paper section 5.

Links are also the primary target of the fault-injection subsystem
(:mod:`repro.netsim.faults`): :meth:`Link.set_down` /
:meth:`Link.set_up` model a carrier outage and :meth:`Link.set_rate` /
:meth:`Link.scale_rate` a mid-session bandwidth change, with correct
handling of the packet being serialised, packets in propagation, and
the per-band no-reorder clamps.
"""

from __future__ import annotations

import itertools
import random as _random
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.netsim.packet import Packet, Priority
from repro.obs.registry import MetricsRegistry
from repro.sim.scheduler import Simulator, TimerHandle


class LossModel:
    """Decides whether a packet is lost in transit."""

    def is_lost(self, rng: _random.Random) -> bool:
        """Draw the fate of one packet from ``rng``."""
        raise NotImplementedError

    def expected_loss(self) -> float:
        """Long-run loss fraction, used for QoS offer computation."""
        raise NotImplementedError


class NoLoss(LossModel):
    """Lossless link."""

    def is_lost(self, rng: _random.Random) -> bool:
        """Never lose a packet."""
        return False

    def expected_loss(self) -> float:
        """Zero, by construction."""
        return 0.0


class BernoulliLoss(LossModel):
    """Independent per-packet loss with probability ``p``."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = p

    def is_lost(self, rng: _random.Random) -> bool:
        """Lose the packet with probability ``p``, independently."""
        return rng.random() < self.p

    def expected_loss(self) -> float:
        """The Bernoulli parameter ``p`` itself."""
        return self.p


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert-Elliott).

    The channel alternates between a GOOD state with loss ``p_good`` and
    a BAD state with loss ``p_bad``; transition probabilities are
    evaluated per packet.  This models the 'temporary glitches occuring
    in individual VCs' the paper cites as a drift source (section 3.6).
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.3,
        p_good: float = 0.0,
        p_bad: float = 0.5,
    ):
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self._bad = False

    def is_lost(self, rng: _random.Random) -> bool:
        """Advance the two-state chain one packet, then draw the loss.

        The state transition is evaluated *before* the loss draw, so a
        packet that flips the channel into the BAD state is already
        exposed to ``p_bad``.
        """
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        return rng.random() < (self.p_bad if self._bad else self.p_good)

    def expected_loss(self) -> float:
        """Stationary loss fraction of the two-state chain.

        With both transition probabilities zero the chain never leaves
        its current state, so the current state's loss probability is
        returned instead of the (undefined) stationary mixture.
        """
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0.0:
            return self.p_bad if self._bad else self.p_good
        stationary_bad = self.p_good_to_bad / denominator
        return stationary_bad * self.p_bad + (1 - stationary_bad) * self.p_good


class JitterModel:
    """Draws an extra per-packet delay (seconds, non-negative)."""

    def sample(self, rng: _random.Random) -> float:
        """Draw one packet's extra delay from ``rng``."""
        raise NotImplementedError

    def bound(self) -> float:
        """Upper bound on the extra delay, for QoS offer computation."""
        raise NotImplementedError


class NoJitter(JitterModel):
    """Deterministic link: no extra per-packet delay."""

    def sample(self, rng: _random.Random) -> float:
        """Always zero."""
        return 0.0

    def bound(self) -> float:
        """Always zero."""
        return 0.0


class UniformJitter(JitterModel):
    """Uniform extra delay in ``[0, max_jitter]`` seconds."""

    def __init__(self, max_jitter: float):
        if max_jitter < 0:
            raise ValueError(f"negative jitter bound {max_jitter}")
        self.max_jitter = max_jitter

    def sample(self, rng: _random.Random) -> float:
        """Uniform draw in ``[0, max_jitter]``."""
        return rng.uniform(0.0, self.max_jitter)

    def bound(self) -> float:
        """The configured ``max_jitter``."""
        return self.max_jitter


class TruncatedGaussianJitter(JitterModel):
    """Gaussian extra delay truncated at zero and ``cap`` seconds."""

    def __init__(self, mean: float, sigma: float, cap: Optional[float] = None):
        if mean < 0 or sigma < 0:
            raise ValueError("jitter mean and sigma must be non-negative")
        self.mean = mean
        self.sigma = sigma
        self.cap = cap if cap is not None else mean + 4 * sigma

    def sample(self, rng: _random.Random) -> float:
        """Gaussian draw clipped into ``[0, cap]``."""
        return min(max(rng.gauss(self.mean, self.sigma), 0.0), self.cap)

    def bound(self) -> float:
        """The truncation cap."""
        return self.cap


class LinkStats:
    """Per-link counters, held in a :class:`~repro.obs.registry.MetricsRegistry`.

    The registry owns the values (so ``sim.metrics.as_dict()`` sees
    every link); the attribute API the benchmarks read is a thin
    property view over those counters.  Constructed without a registry
    (unit tests) it allocates a private one.
    """

    _FIELDS = (
        "sent_packets", "delivered_packets", "lost_packets",
        "buffer_drops", "corrupted_packets", "sent_bits", "delivered_bits",
    )

    def __init__(self, metrics: Optional["MetricsRegistry"] = None,
                 scope: str = "link") -> None:
        metrics = metrics if metrics is not None else MetricsRegistry()
        for field in self._FIELDS:
            setattr(self, "_" + field, metrics.counter(f"{scope}.{field}"))
        self._total_queue_delay = metrics.gauge(f"{scope}.total_queue_delay")

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent packets lost or dropped at the buffer."""
        if self.sent_packets == 0:
            return 0.0
        return (self.lost_packets + self.buffer_drops) / self.sent_packets


def _stats_view(field: str):
    """Build a property forwarding a LinkStats attribute to its counter."""
    def get(self: LinkStats) -> int:
        return getattr(self, "_" + field).value

    def set_(self: LinkStats, value: int) -> None:
        getattr(self, "_" + field).value = value

    return property(get, set_)


for _field in LinkStats._FIELDS + ("total_queue_delay",):
    setattr(LinkStats, _field, _stats_view(_field))
del _field


class Link:
    """A simplex link between two nodes.

    Packets are serialised one at a time at ``bandwidth_bps``; strict
    priority between the CONTROL/RESERVED band and BEST_EFFORT, FIFO
    within a band.  Delivery order within a band is preserved even under
    jitter (jitter extends a packet's delivery time but never reorders).

    Args:
        sim: the simulator.
        src, dst: node names (routing is by name).
        bandwidth_bps: serialisation rate in bits/second.
        prop_delay: fixed propagation delay in seconds.
        jitter: per-packet extra-delay model.
        loss: packet-loss model.
        ber: independent bit-error probability; a packet of ``n`` bits is
            marked corrupted with probability ``1 - (1-ber)**n``.
        buffer_bytes: transmit buffer size; arrivals beyond it are
            dropped (counted in ``stats.buffer_drops``).
        rng: random stream (defaults to a fresh seeded stream).
    """

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        bandwidth_bps: float,
        prop_delay: float = 0.001,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        rng: Optional[_random.Random] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"negative propagation delay {prop_delay}")
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"BER {ber} outside [0, 1]")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.jitter = jitter or NoJitter()
        self.loss = loss or NoLoss()
        self.ber = ber
        self.buffer_bytes = buffer_bytes
        self.rng = rng or _random.Random(0)
        self.stats = LinkStats(sim.metrics, f"link.{src}->{dst}")
        self.on_deliver: Optional[Callable[[Packet], None]] = None
        self._high: Deque[tuple[Packet, float]] = deque()
        self._low: Deque[tuple[Packet, float]] = deque()
        self._queued_bytes = 0.0
        self._transmitting = False
        self._down = False
        # The packet currently being serialised, its tx-start time and
        # the timer that completes it -- kept so set_down() can abort the
        # transmission and set_rate() can stretch/shrink its remainder.
        self._tx_packet: Optional[Packet] = None
        self._tx_started = 0.0
        self._tx_handle: Optional[TimerHandle] = None
        # Packets past serialisation, in propagation toward dst.  A
        # carrier loss kills these too (they are on the failed medium),
        # so their delivery timers must be cancellable.
        self._flight_ids = itertools.count()
        #: In-propagation deliveries: token -> (timer, packet).  The
        #: packet rides along so an outage can report *which* packets
        #: the severed medium swallowed, not just how many.
        self._propagating: Dict[int, Tuple[TimerHandle, Packet]] = {}
        # No-reorder clamp per priority band: jitter must not reorder
        # deliveries *within a band*, but the CONTROL/RESERVED band must
        # never be held behind a BEST_EFFORT packet's jittered delivery
        # (the guaranteed out-of-band control channels of section 5).
        self._last_delivery_high = 0.0
        self._last_delivery_low = 0.0

    # -- capacity accounting used by the reservation manager ------------

    @property
    def queued_bytes(self) -> float:
        """Bytes currently held in the transmit buffer."""
        return self._queued_bytes

    @property
    def up(self) -> bool:
        """False while the link is administratively/fault down."""
        return not self._down

    def tx_time(self, size_bits: int) -> float:
        """Serialisation time for a packet of ``size_bits``."""
        return size_bits / self.bandwidth_bps

    # -- fault injection -------------------------------------------------

    def set_down(self) -> None:
        """Take the link down (carrier loss), losing everything on it.

        The packet mid-serialisation, every queued packet and every
        packet still in propagation are counted as lost: a severed
        medium delivers nothing.  Cancelling the in-propagation delivery
        timers is load-bearing for ordering correctness -- see
        :meth:`set_up` for the matching clamp reset.  Idempotent.
        """
        if self._down:
            return
        self._down = True
        trace = self.sim.trace
        lost = 0
        lost_ids: list = []
        if self._tx_handle is not None:
            self._tx_handle.cancel()
            self._tx_handle = None
            if self._tx_packet is not None:
                self._queued_bytes -= self._tx_packet.size_bytes
                if trace.packets:
                    lost_ids.append(self._tx_packet.packet_id)
                self._tx_packet = None
                lost += 1
        for queue in (self._high, self._low):
            while queue:
                packet, _enqueued_at = queue.popleft()
                self._queued_bytes -= packet.size_bytes
                if trace.packets:
                    lost_ids.append(packet.packet_id)
                lost += 1
        for handle, packet in self._propagating.values():
            handle.cancel()
            if trace.packets:
                lost_ids.append(packet.packet_id)
            lost += 1
        self._propagating.clear()
        self._transmitting = False
        self.stats.lost_packets += lost
        if trace.enabled:
            args: Dict[str, object] = {
                "lost_in_flight": lost,
                "link": f"{self.src}->{self.dst}",
            }
            if lost_ids:
                # Bounded: enough ids for a causal post-mortem without
                # letting a deep queue bloat the event.
                args["lost_packet_ids"] = lost_ids[:64]
            trace.instant(
                "link.down", track=f"link:{self.src}->{self.dst}", cat="fault",
                args=args,
            )

    def set_up(self) -> None:
        """Restore a downed link.  Idempotent.

        The per-band no-reorder clamps are reset here: they still hold
        the jittered arrival times of pre-outage packets, but every one
        of those deliveries was cancelled by :meth:`set_down`.  Left in
        place, post-outage traffic would be held behind the ghost of
        packets that never arrived; conversely, resetting the clamps
        without having cancelled the pre-outage deliveries would let a
        pre-outage packet arrive *after* a post-outage one.  The
        cancel-then-reset pair keeps per-band FIFO delivery intact
        across a down/up cycle.
        """
        if not self._down:
            return
        self._down = False
        self._last_delivery_high = 0.0
        self._last_delivery_low = 0.0
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "link.up", track=f"link:{self.src}->{self.dst}", cat="fault",
            )

    def set_rate(self, bandwidth_bps: float) -> None:
        """Change the serialisation rate mid-session.

        The packet currently on the wire keeps the bits it has already
        serialised: its completion timer is rescheduled so the
        *remaining* serialisation proceeds at the new rate.  Queued
        packets simply serialise at the new rate when their turn comes.
        """
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        old = self.bandwidth_bps
        if bandwidth_bps == old:
            return
        self.bandwidth_bps = bandwidth_bps
        if self._tx_handle is not None and self._tx_handle.scheduled:
            remaining = self._tx_handle.when - self.sim.now
            if remaining > 0:
                self._tx_handle.reschedule(
                    self.sim.now + remaining * old / bandwidth_bps
                )
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "link.rate", track=f"link:{self.src}->{self.dst}", cat="fault",
                args={"bandwidth_bps": bandwidth_bps, "was_bps": old},
            )

    def scale_rate(self, factor: float) -> float:
        """Scale the serialisation rate by ``factor``; returns the old rate."""
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor}")
        old = self.bandwidth_bps
        self.set_rate(old * factor)
        return old

    # -- data path -------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission."""
        self.stats.sent_packets += 1
        self.stats.sent_bits += packet.size_bits
        if self._down:
            # A downed interface: the packet goes nowhere.
            self.stats.lost_packets += 1
            trace = self.sim.trace
            if trace.packets:
                trace.instant(
                    "drop:down", track=f"link:{self.src}->{self.dst}",
                    cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": f"{self.src}->{self.dst}"},
                )
            return
        if self._queued_bytes + packet.size_bytes > self.buffer_bytes:
            self.stats.buffer_drops += 1
            trace = self.sim.trace
            if trace.packets:
                trace.instant(
                    "drop:buffer", track=f"link:{self.src}->{self.dst}",
                    cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": f"{self.src}->{self.dst}"},
                )
            return
        self._queued_bytes += packet.size_bytes
        entry = (packet, self.sim.now)
        if packet.priority >= Priority.RESERVED:
            self._high.append(entry)
        else:
            self._low.append(entry)
        if not self._transmitting:
            self._start_next()

    def _start_next(self) -> None:
        """Begin serialising the next queued packet, if any."""
        queue = self._high if self._high else self._low
        if not queue:
            self._transmitting = False
            self._tx_packet = None
            self._tx_handle = None
            return
        self._transmitting = True
        packet, enqueued_at = queue.popleft()
        self.stats.total_queue_delay += self.sim.now - enqueued_at
        tx = self.tx_time(packet.size_bits)
        self._tx_packet = packet
        self._tx_started = self.sim.now
        self._tx_handle = self.sim.call_after(tx, lambda: self._tx_done(packet))

    def _tx_done(self, packet: Packet) -> None:
        """Serialisation finished: launch the packet into propagation."""
        self._tx_packet = None
        self._tx_handle = None
        self._queued_bytes -= packet.size_bytes
        trace = self.sim.trace
        if trace.packets:
            # Serialisation occupancy: this packet held the link from
            # tx-start to now.
            now = self.sim.now
            trace.complete(
                packet.flow_id or type(packet.payload).__name__,
                self._tx_started, now,
                track=f"link:{self.src}->{self.dst}", cat="link",
                args={"bits": packet.size_bits,
                      "priority": int(packet.priority),
                      "packet_id": packet.packet_id},
            )
        lost = self.loss.is_lost(self.rng)
        if lost:
            self.stats.lost_packets += 1
            if trace.packets:
                trace.instant(
                    "loss", track=f"link:{self.src}->{self.dst}", cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": f"{self.src}->{self.dst}"},
                )
        else:
            if self.ber > 0.0:
                p_corrupt = 1.0 - (1.0 - self.ber) ** packet.size_bits
                if self.rng.random() < p_corrupt:
                    packet.corrupted = True
                    self.stats.corrupted_packets += 1
            arrival = self.sim.now + self.prop_delay + self.jitter.sample(self.rng)
            # Jitter must not reorder packets within a priority band
            # (but may reorder across bands: control traffic is never
            # clamped behind a best-effort delivery).
            if packet.priority >= Priority.RESERVED:
                arrival = max(arrival, self._last_delivery_high)
                self._last_delivery_high = arrival
            else:
                arrival = max(arrival, self._last_delivery_low)
                self._last_delivery_low = arrival
            token = next(self._flight_ids)
            handle = self.sim.call_at(
                arrival, lambda: self._deliver(packet, token)
            )
            self._propagating[token] = (handle, packet)
        self._start_next()

    def _deliver(self, packet: Packet, token: Optional[int] = None) -> None:
        """Propagation finished: hand the packet to the receiving node."""
        if token is not None:
            self._propagating.pop(token, None)
        self.stats.delivered_packets += 1
        self.stats.delivered_bits += packet.size_bits
        packet.hops += 1
        if self.on_deliver is not None:
            self.on_deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Human-readable summary for debugging."""
        return (
            f"Link({self.src}->{self.dst}, {self.bandwidth_bps/1e6:.1f} Mbit/s, "
            f"{self.prop_delay*1e3:.2f} ms)"
        )
