"""Simplex links with bandwidth, delay, jitter, loss and bit errors.

A link models the four impairments the paper's QoS parameters describe
(section 3.2): throughput (serialisation at ``bandwidth_bps``),
end-to-end delay (propagation + queueing), delay jitter (a pluggable
jitter model), and packet/bit error rates (pluggable loss model and a
BER).  Links have a finite buffer, so congestion produces both loss and
queueing delay, which the transport monitor must detect and report
(Table 2).

Scheduling is strict priority with two bands: CONTROL/RESERVED above
BEST_EFFORT, implementing the guaranteed out-of-band control channels
of paper section 5.

Links are also the primary target of the fault-injection subsystem
(:mod:`repro.netsim.faults`): :meth:`Link.set_down` /
:meth:`Link.set_up` model a carrier outage and :meth:`Link.set_rate` /
:meth:`Link.scale_rate` a mid-session bandwidth change, with correct
handling of the packet being serialised, packets in propagation, and
the per-band no-reorder clamps.
"""

from __future__ import annotations

import random as _random
import sys
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.netsim.packet import Packet, Priority
from repro.obs.registry import MetricsRegistry
from repro.sim.scheduler import Simulator, TimerHandle


class LossModel:
    """Decides whether a packet is lost in transit."""

    def is_lost(self, rng: _random.Random) -> bool:
        """Draw the fate of one packet from ``rng``."""
        raise NotImplementedError

    def expected_loss(self) -> float:
        """Long-run loss fraction, used for QoS offer computation."""
        raise NotImplementedError


class NoLoss(LossModel):
    """Lossless link."""

    def is_lost(self, rng: _random.Random) -> bool:
        """Never lose a packet."""
        return False

    def expected_loss(self) -> float:
        """Zero, by construction."""
        return 0.0


class BernoulliLoss(LossModel):
    """Independent per-packet loss with probability ``p``."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = p

    def is_lost(self, rng: _random.Random) -> bool:
        """Lose the packet with probability ``p``, independently."""
        return rng.random() < self.p

    def expected_loss(self) -> float:
        """The Bernoulli parameter ``p`` itself."""
        return self.p


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert-Elliott).

    The channel alternates between a GOOD state with loss ``p_good`` and
    a BAD state with loss ``p_bad``; transition probabilities are
    evaluated per packet.  This models the 'temporary glitches occuring
    in individual VCs' the paper cites as a drift source (section 3.6).
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.3,
        p_good: float = 0.0,
        p_bad: float = 0.5,
    ):
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("p_good", p_good),
            ("p_bad", p_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.p_good = p_good
        self.p_bad = p_bad
        self._bad = False

    def is_lost(self, rng: _random.Random) -> bool:
        """Advance the two-state chain one packet, then draw the loss.

        The state transition is evaluated *before* the loss draw, so a
        packet that flips the channel into the BAD state is already
        exposed to ``p_bad``.
        """
        if self._bad:
            if rng.random() < self.p_bad_to_good:
                self._bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._bad = True
        return rng.random() < (self.p_bad if self._bad else self.p_good)

    def expected_loss(self) -> float:
        """Stationary loss fraction of the two-state chain.

        With both transition probabilities zero the chain never leaves
        its current state, so the current state's loss probability is
        returned instead of the (undefined) stationary mixture.
        """
        denominator = self.p_good_to_bad + self.p_bad_to_good
        if denominator == 0.0:
            return self.p_bad if self._bad else self.p_good
        stationary_bad = self.p_good_to_bad / denominator
        return stationary_bad * self.p_bad + (1 - stationary_bad) * self.p_good


class JitterModel:
    """Draws an extra per-packet delay (seconds, non-negative)."""

    def sample(self, rng: _random.Random) -> float:
        """Draw one packet's extra delay from ``rng``."""
        raise NotImplementedError

    def bound(self) -> float:
        """Upper bound on the extra delay, for QoS offer computation."""
        raise NotImplementedError


class NoJitter(JitterModel):
    """Deterministic link: no extra per-packet delay."""

    def sample(self, rng: _random.Random) -> float:
        """Always zero."""
        return 0.0

    def bound(self) -> float:
        """Always zero."""
        return 0.0


class UniformJitter(JitterModel):
    """Uniform extra delay in ``[0, max_jitter]`` seconds."""

    def __init__(self, max_jitter: float):
        if max_jitter < 0:
            raise ValueError(f"negative jitter bound {max_jitter}")
        self.max_jitter = max_jitter

    def sample(self, rng: _random.Random) -> float:
        """Uniform draw in ``[0, max_jitter]``."""
        return rng.uniform(0.0, self.max_jitter)

    def bound(self) -> float:
        """The configured ``max_jitter``."""
        return self.max_jitter


class TruncatedGaussianJitter(JitterModel):
    """Gaussian extra delay truncated at zero and ``cap`` seconds."""

    def __init__(self, mean: float, sigma: float, cap: Optional[float] = None):
        if mean < 0 or sigma < 0:
            raise ValueError("jitter mean and sigma must be non-negative")
        self.mean = mean
        self.sigma = sigma
        self.cap = cap if cap is not None else mean + 4 * sigma

    def sample(self, rng: _random.Random) -> float:
        """Gaussian draw clipped into ``[0, cap]``."""
        return min(max(rng.gauss(self.mean, self.sigma), 0.0), self.cap)

    def bound(self) -> float:
        """The truncation cap."""
        return self.cap


class LinkStats:
    """Per-link counters, held in a :class:`~repro.obs.registry.MetricsRegistry`.

    The registry owns the values (so ``sim.metrics.as_dict()`` sees
    every link); the attribute API the benchmarks read is a thin
    property view over those counters.  Constructed without a registry
    (unit tests) it allocates a private one.
    """

    _FIELDS = (
        "sent_packets", "delivered_packets", "lost_packets",
        "buffer_drops", "corrupted_packets", "sent_bits", "delivered_bits",
    )

    def __init__(self, metrics: Optional["MetricsRegistry"] = None,
                 scope: str = "link") -> None:
        metrics = metrics if metrics is not None else MetricsRegistry()
        for field in self._FIELDS:
            setattr(self, "_" + field, metrics.counter(f"{scope}.{field}"))
        self._total_queue_delay = metrics.gauge(f"{scope}.total_queue_delay")

    @property
    def loss_fraction(self) -> float:
        """Fraction of sent packets lost or dropped at the buffer."""
        if self.sent_packets == 0:
            return 0.0
        return (self.lost_packets + self.buffer_drops) / self.sent_packets


def _stats_view(field: str):
    """Build a property forwarding a LinkStats attribute to its counter."""
    def get(self: LinkStats) -> int:
        return getattr(self, "_" + field).value

    def set_(self: LinkStats, value: int) -> None:
        getattr(self, "_" + field).value = value

    return property(get, set_)


for _field in LinkStats._FIELDS + ("total_queue_delay",):
    setattr(LinkStats, _field, _stats_view(_field))
del _field


# Shared default impairment models: a link built without loss/jitter gets
# these singletons, letting the serialisation path skip two virtual calls
# per packet (neither consumes rng draws, so the fast path is
# draw-for-draw identical to calling them).
_NO_LOSS = NoLoss()
_NO_JITTER = NoJitter()
_RESERVED = Priority.RESERVED


class _Flight:
    """One packet in propagation: a reusable delivery timer + its packet.

    Replaces the per-packet ``call_at(..., lambda: deliver(...))``
    idiom: the handle and the flight object itself are recycled through
    the owning link's freelist, so a steady-state flow allocates
    nothing per delivery.
    """

    __slots__ = ("link", "handle", "packet")

    def __init__(self, link: "Link"):
        self.link = link
        self.handle = TimerHandle(link.sim, self._fire)
        self.packet: Optional[Packet] = None

    def _fire(self) -> None:
        # Delivery inlined from Link._deliver: this runs once per packet
        # on the hot path, and the extra frame is measurable.
        link = self.link
        packet = self.packet
        link._propagating.discard(self)
        self.packet = None
        free = link._flight_pool
        if len(free) < 256:
            free.append(self)
        link._c_delivered.value += 1
        link._c_delivered_bits.value += packet.size_bits
        packet.hops += 1
        on_deliver = link.on_deliver
        if on_deliver is not None:
            on_deliver(packet)


class Link:
    """A simplex link between two nodes.

    Packets are serialised one at a time at ``bandwidth_bps``; strict
    priority between the CONTROL/RESERVED band and BEST_EFFORT, FIFO
    within a band.  Delivery order within a band is preserved even under
    jitter (jitter extends a packet's delivery time but never reorders).

    Args:
        sim: the simulator.
        src, dst: node names (routing is by name).
        bandwidth_bps: serialisation rate in bits/second.
        prop_delay: fixed propagation delay in seconds.
        jitter: per-packet extra-delay model.
        loss: packet-loss model.
        ber: independent bit-error probability; a packet of ``n`` bits is
            marked corrupted with probability ``1 - (1-ber)**n``.
        buffer_bytes: transmit buffer size; arrivals beyond it are
            dropped (counted in ``stats.buffer_drops``).
        rng: random stream (defaults to a fresh seeded stream).
    """

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        bandwidth_bps: float,
        prop_delay: float = 0.001,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        rng: Optional[_random.Random] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if prop_delay < 0:
            raise ValueError(f"negative propagation delay {prop_delay}")
        if not 0.0 <= ber <= 1.0:
            raise ValueError(f"BER {ber} outside [0, 1]")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth_bps = bandwidth_bps
        self.prop_delay = prop_delay
        self.jitter = jitter or _NO_JITTER
        self.loss = loss or _NO_LOSS
        self.ber = ber
        self.buffer_bytes = buffer_bytes
        self.rng = rng or _random.Random(0)
        self.stats = LinkStats(sim.metrics, f"link.{src}->{dst}")
        self.on_deliver: Optional[Callable[[Packet], None]] = None
        self._high: Deque[tuple[Packet, float]] = deque()
        self._low: Deque[tuple[Packet, float]] = deque()
        self._queued_bytes = 0.0
        self._transmitting = False
        self._down = False
        # Counters bound once: the LinkStats attribute API is a property
        # view over registry counters, far too indirect for a path that
        # touches five counters per packet.
        stats = self.stats
        self._c_sent = stats._sent_packets
        self._c_sent_bits = stats._sent_bits
        self._c_delivered = stats._delivered_packets
        self._c_delivered_bits = stats._delivered_bits
        self._c_lost = stats._lost_packets
        self._c_buffer_drops = stats._buffer_drops
        self._c_corrupted = stats._corrupted_packets
        self._g_queue_delay = stats._total_queue_delay
        #: Interned tracer track, built once instead of per event.
        self._track = sys.intern(f"link:{src}->{dst}")
        self._name = f"{src}->{dst}"
        # The packet currently being serialised, its tx-start time and
        # the timer that completes it -- kept so set_down() can abort the
        # transmission and set_rate() can stretch/shrink its remainder.
        # The completion timer is one persistent handle re-armed per
        # packet (the link serialises one packet at a time).
        self._tx_packet: Optional[Packet] = None
        self._tx_started = 0.0
        self._tx_timer = TimerHandle(sim, self._tx_done)
        self._tx_handle: Optional[TimerHandle] = None
        # Packets past serialisation, in propagation toward dst.  A
        # carrier loss kills these too (they are on the failed medium),
        # so their delivery timers must be cancellable.
        #: In-propagation deliveries: the set of live flights (each a
        #: reusable delivery timer + packet).  The packet rides along so
        #: an outage can
        #: report *which* packets the severed medium swallowed, not
        #: just how many.
        self._propagating: Set[_Flight] = set()
        self._flight_pool: List[_Flight] = []
        # Idle-wire fast commit (see send()): when a packet arrives on a
        # pristine, untraced, idle link its whole fate -- serialisation
        # span and delivery time -- is already determined, so send()
        # arms the delivery flight directly and skips the per-packet
        # tx-completion event.  ``_free_at`` is the time the serialiser
        # finishes its committed work; ``_wire`` is the one
        # fast-committed packet still on the wire (completion time,
        # buffer bytes, flight), or None.
        self._free_at = 0.0
        self._wire: Optional[tuple] = None
        # No-reorder clamp per priority band: jitter must not reorder
        # deliveries *within a band*, but the CONTROL/RESERVED band must
        # never be held behind a BEST_EFFORT packet's jittered delivery
        # (the guaranteed out-of-band control channels of section 5).
        self._last_delivery_high = 0.0
        self._last_delivery_low = 0.0

    # -- capacity accounting used by the reservation manager ------------

    def _wire_bytes(self) -> float:
        """Buffer contribution of the fast-committed on-wire packet.

        The fast path never touches ``_queued_bytes`` (there is no
        completion event to subtract at), so occupancy readers add this
        lazily-settled term instead: once the wire packet's completion
        time has passed, its contribution is zero and the entry is
        dropped.
        """
        wire = self._wire
        if wire is None:
            return 0.0
        if wire[0] <= self.sim._now:
            self._wire = None
            return 0.0
        return wire[1]

    @property
    def queued_bytes(self) -> float:
        """Bytes currently held in the transmit buffer."""
        return self._queued_bytes + self._wire_bytes()

    @property
    def up(self) -> bool:
        """False while the link is administratively/fault down."""
        return not self._down

    def tx_time(self, size_bits: int) -> float:
        """Serialisation time for a packet of ``size_bits``."""
        return size_bits / self.bandwidth_bps

    # -- fault injection -------------------------------------------------

    def set_down(self) -> None:
        """Take the link down (carrier loss), losing everything on it.

        The packet mid-serialisation, every queued packet and every
        packet still in propagation are counted as lost: a severed
        medium delivers nothing.  Cancelling the in-propagation delivery
        timers is load-bearing for ordering correctness -- see
        :meth:`set_up` for the matching clamp reset.  Idempotent.
        """
        if self._down:
            return
        self._down = True
        trace = self.sim.trace
        lost = 0
        lost_ids: list = []
        if self._tx_handle is not None:
            self._tx_handle.cancel()
            self._tx_handle = None
            if self._tx_packet is not None:
                self._queued_bytes -= self._tx_packet.size_bytes
                if trace.packets:
                    lost_ids.append(self._tx_packet.packet_id)
                self._tx_packet = None
                lost += 1
        for queue in (self._high, self._low):
            while queue:
                packet, _enqueued_at = queue.popleft()
                self._queued_bytes -= packet.size_bytes
                if trace.packets:
                    lost_ids.append(packet.packet_id)
                lost += 1
        for flight in self._propagating:
            flight.handle.cancel()
            if trace.packets:
                lost_ids.append(flight.packet.packet_id)
            flight.packet = None
            if len(self._flight_pool) < 256:
                self._flight_pool.append(flight)
            lost += 1
        self._propagating.clear()
        self._transmitting = False
        # A fast-committed wire packet is counted by the flights loop
        # above (its delivery was already armed); just forget the wire.
        self._wire = None
        self._free_at = 0.0
        self._c_lost.value += lost
        if trace.enabled:
            args: Dict[str, object] = {
                "lost_in_flight": lost,
                "link": self._name,
            }
            if lost_ids:
                # Bounded: enough ids for a causal post-mortem without
                # letting a deep queue bloat the event.
                args["lost_packet_ids"] = lost_ids[:64]
            trace.instant(
                "link.down", track=self._track, cat="fault",
                args=args,
            )

    def set_up(self) -> None:
        """Restore a downed link.  Idempotent.

        The per-band no-reorder clamps are reset here: they still hold
        the jittered arrival times of pre-outage packets, but every one
        of those deliveries was cancelled by :meth:`set_down`.  Left in
        place, post-outage traffic would be held behind the ghost of
        packets that never arrived; conversely, resetting the clamps
        without having cancelled the pre-outage deliveries would let a
        pre-outage packet arrive *after* a post-outage one.  The
        cancel-then-reset pair keeps per-band FIFO delivery intact
        across a down/up cycle.
        """
        if not self._down:
            return
        self._down = False
        self._last_delivery_high = 0.0
        self._last_delivery_low = 0.0
        trace = self.sim.trace
        if trace.enabled:
            trace.instant("link.up", track=self._track, cat="fault")

    def set_rate(self, bandwidth_bps: float) -> None:
        """Change the serialisation rate mid-session.

        The packet currently on the wire keeps the bits it has already
        serialised: its completion timer is rescheduled so the
        *remaining* serialisation proceeds at the new rate.  Queued
        packets simply serialise at the new rate when their turn comes.
        """
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        old = self.bandwidth_bps
        if bandwidth_bps == old:
            return
        self.bandwidth_bps = bandwidth_bps
        now = self.sim.now
        if self._tx_handle is not None and self._tx_handle.scheduled:
            remaining = self._tx_handle.when - now
            if remaining > 0:
                new_when = now + remaining * old / bandwidth_bps
                self._tx_handle.reschedule(new_when)
                if self._tx_packet is None:
                    # The handle is the wire-idle wakeup for a
                    # fast-committed packet; fall through to stretch
                    # that packet's delivery too.
                    self._free_at = new_when
        wire = self._wire
        if wire is not None and wire[0] > now:
            # Stretch/shrink the fast-committed packet's remaining
            # serialisation at the new rate, shifting its delivery.
            complete, wire_bytes, flight = wire
            new_complete = now + (complete - now) * old / bandwidth_bps
            shift = new_complete - complete
            old_arrival = flight.handle.when
            new_arrival = old_arrival + shift
            flight.handle.reschedule(new_arrival)
            # Keep the no-reorder clamps honest: if this delivery was
            # the band's latest, track its move.
            if self._last_delivery_high == old_arrival:
                self._last_delivery_high = new_arrival
            if self._last_delivery_low == old_arrival:
                self._last_delivery_low = new_arrival
            self._wire = (new_complete, wire_bytes, flight)
            if not self._transmitting:
                self._free_at = new_complete
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "link.rate", track=self._track, cat="fault",
                args={"bandwidth_bps": bandwidth_bps, "was_bps": old},
            )

    def scale_rate(self, factor: float) -> float:
        """Scale the serialisation rate by ``factor``; returns the old rate."""
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor}")
        old = self.bandwidth_bps
        self.set_rate(old * factor)
        return old

    # -- data path -------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission.

        Fast path: on a pristine (no loss model, no BER, no jitter)
        idle link the packet's serialisation span and delivery time are
        fully determined right here, so the delivery flight is armed
        directly and the per-packet tx-completion event is skipped (one
        scheduler event per packet instead of two).  Every impaired,
        busy or downed link takes the classic path, which keeps rng
        draw order and counter timing byte-for-byte identical to the
        pre-fast-path behaviour.  The gate must not depend on whether
        anyone is *observing* the run (tracing, auditing): the
        scheduled-event count is part of a run's pinned behaviour, so
        the fast path emits the same serialisation-span trace record
        classic would, just at commit time (the record carries explicit
        start/end timestamps, which are identical either way).
        """
        bits = packet.size_bits
        self._c_sent.value += 1
        self._c_sent_bits.value += bits
        sim = self.sim
        prof = sim.profile
        if prof is not None:
            _t0 = prof.clock()
        now = sim._now
        if (self._free_at <= now
                and not self._transmitting
                and self.loss is _NO_LOSS
                and self.jitter is _NO_JITTER
                and self.ber == 0.0
                and not self._down
                and bits * 0.125 <= self.buffer_bytes):
            # The previous wire entry (if any) matured at _free_at <=
            # now, so settling it is just replacing it (one store, at
            # the end of this block).
            complete = now + bits / self.bandwidth_bps
            self._free_at = complete
            trace = sim.trace
            if trace.packets:
                trace.complete(
                    packet.flow_id or type(packet.payload).__name__,
                    now, complete,
                    track=self._track, cat="link",
                    args={"bits": bits,
                          "priority": int(packet.priority),
                          "packet_id": packet.packet_id},
                )
            arrival = complete + self.prop_delay
            if packet.priority >= _RESERVED:
                if arrival < self._last_delivery_high:
                    arrival = self._last_delivery_high
                self._last_delivery_high = arrival
            else:
                if arrival < self._last_delivery_low:
                    arrival = self._last_delivery_low
                self._last_delivery_low = arrival
            pool = self._flight_pool
            flight = pool.pop() if pool else _Flight(self)
            flight.packet = packet
            sim._push(flight.handle, arrival)
            self._propagating.add(flight)
            self._wire = (complete, bits * 0.125, flight)
            if prof is not None:
                prof.add("link.commit", _t0, prof.clock())
            return
        if self._down:
            # A downed interface: the packet goes nowhere.
            self._c_lost.value += 1
            trace = sim.trace
            if trace.packets:
                trace.instant(
                    "drop:down", track=self._track, cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": self._name},
                )
            if prof is not None:
                prof.add("link.commit", _t0, prof.clock())
            return
        size_bytes = bits * 0.125
        if self._queued_bytes + self._wire_bytes() + size_bytes > self.buffer_bytes:
            self._c_buffer_drops.value += 1
            trace = sim.trace
            if trace.packets:
                trace.instant(
                    "drop:buffer", track=self._track, cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": self._name},
                )
            if prof is not None:
                prof.add("link.commit", _t0, prof.clock())
            return
        self._queued_bytes += size_bytes
        entry = (packet, now)
        if packet.priority >= _RESERVED:
            self._high.append(entry)
        else:
            self._low.append(entry)
        if not self._transmitting:
            if self._free_at > now:
                # A fast-committed packet still owns the wire: wake the
                # serialiser when it frees up instead of starting now.
                self._transmitting = True
                self._tx_handle = self._tx_timer
                sim._push(self._tx_timer, self._free_at)
            else:
                self._start_next()
        if prof is not None:
            prof.add("link.commit", _t0, prof.clock())

    def _start_next(self) -> None:
        """Begin serialising the next queued packet, if any."""
        queue = self._high or self._low
        if not queue:
            self._transmitting = False
            self._tx_packet = None
            self._tx_handle = None
            return
        self._transmitting = True
        packet, enqueued_at = queue.popleft()
        sim = self.sim
        now = sim._now
        self._g_queue_delay.value += now - enqueued_at
        self._tx_packet = packet
        self._tx_started = now
        complete = now + packet.size_bits / self.bandwidth_bps
        self._free_at = complete
        timer = self._tx_timer
        self._tx_handle = timer
        sim._push(timer, complete)

    def _tx_done(self) -> None:
        """Serialisation finished: launch the packet into propagation."""
        packet = self._tx_packet
        if packet is None:
            # Woken at wire-idle after a fast-path commit: nothing to
            # complete, just start serialising the queue.
            self._tx_handle = None
            self._start_next()
            return
        self._tx_packet = None
        self._tx_handle = None
        self._queued_bytes -= packet.size_bits * 0.125
        trace = self.sim.trace
        if trace.packets:
            # Serialisation occupancy: this packet held the link from
            # tx-start to now.
            now = self.sim.now
            trace.complete(
                packet.flow_id or type(packet.payload).__name__,
                self._tx_started, now,
                track=self._track, cat="link",
                args={"bits": packet.size_bits,
                      "priority": int(packet.priority),
                      "packet_id": packet.packet_id},
            )
        loss = self.loss
        if loss is not _NO_LOSS and loss.is_lost(self.rng):
            self._c_lost.value += 1
            if trace.packets:
                trace.instant(
                    "loss", track=self._track, cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": self._name},
                )
        else:
            if self.ber > 0.0:
                p_corrupt = 1.0 - (1.0 - self.ber) ** packet.size_bits
                if self.rng.random() < p_corrupt:
                    packet.corrupted = True
                    self._c_corrupted.value += 1
            jitter = self.jitter
            arrival = self.sim._now + self.prop_delay
            if jitter is not _NO_JITTER:
                arrival += jitter.sample(self.rng)
            # Jitter must not reorder packets within a priority band
            # (but may reorder across bands: control traffic is never
            # clamped behind a best-effort delivery).
            if packet.priority >= _RESERVED:
                if arrival < self._last_delivery_high:
                    arrival = self._last_delivery_high
                self._last_delivery_high = arrival
            else:
                if arrival < self._last_delivery_low:
                    arrival = self._last_delivery_low
                self._last_delivery_low = arrival
            pool = self._flight_pool
            flight = pool.pop() if pool else _Flight(self)
            flight.packet = packet
            self.sim._push(flight.handle, arrival)
            self._propagating.add(flight)
        self._start_next()

    def _deliver(self, packet: Packet) -> None:
        """Propagation finished: hand the packet to the receiving node.

        The in-flight ``_Flight`` already removed itself from
        ``_propagating`` before calling in.
        """
        self._c_delivered.value += 1
        self._c_delivered_bits.value += packet.size_bits
        packet.hops += 1
        if self.on_deliver is not None:
            self.on_deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Human-readable summary for debugging."""
        return (
            f"Link({self.src}->{self.dst}, {self.bandwidth_bps/1e6:.1f} Mbit/s, "
            f"{self.prop_delay*1e3:.2f} ms)"
        )
