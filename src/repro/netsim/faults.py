"""Netsim-level fault mechanisms: the operations fault plans apply.

This module is the *mechanism* half of the fault-injection subsystem:
small, state-capturing operations on a live :class:`~repro.netsim.topology.Network`
-- take a link down, squeeze its rate, swap its loss model, crash a
router.  The *policy* half (which fault happens when) lives in
:mod:`repro.faults`, whose injector schedules these operations on the
simulator.

Two API levels coexist:

- The standalone ``begin_*``/``take_*`` functions capture and restore
  state for *one* episode.  They are correct in isolation but -- as
  chaos plans surfaced -- restoring captured state composes wrongly
  when two episodes overlap on the same target: the earlier episode's
  end puts back *pre-episode* state and silently clobbers the still
  active later episode.
- :class:`FaultLedger` composes.  It tracks, per target, the pristine
  base state plus every active episode (refcounted outages and
  crashes, multiplicative squeeze factors, a loss-model stack), so
  ending any one episode leaves every other active episode in force
  and the base state is restored -- object identity included -- only
  when the last overlapping episode ends.  The injector routes all
  episodes through a ledger.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netsim.link import Link, LossModel
from repro.netsim.node import Router
from repro.netsim.topology import Network


def take_link_down(network: Network, src: str, dst: str) -> Link:
    """Carrier loss on the directed link ``src -> dst``; returns the link."""
    link = network.link_between(src, dst)
    link.set_down()
    return link


def restore_link(network: Network, src: str, dst: str) -> Link:
    """Restore carrier on the directed link ``src -> dst``; returns the link."""
    link = network.link_between(src, dst)
    link.set_up()
    return link


@dataclass
class SqueezeState:
    """Undo record for a bandwidth squeeze: the link and its prior rate."""

    link: Link
    original_bps: float

    def restore(self) -> None:
        """Put the link's serialisation rate back where it was."""
        self.link.set_rate(self.original_bps)


def begin_squeeze(network: Network, src: str, dst: str, factor: float) -> SqueezeState:
    """Scale the rate of ``src -> dst`` by ``factor``; returns the undo record."""
    link = network.link_between(src, dst)
    original = link.scale_rate(factor)
    return SqueezeState(link, original)


@dataclass
class LossBurstState:
    """Undo record for a loss burst: the link and its prior loss model."""

    link: Link
    original_loss: LossModel

    def restore(self) -> None:
        """Reinstall the loss model that was active before the burst."""
        self.link.loss = self.original_loss


def begin_loss_burst(
    network: Network, src: str, dst: str, loss: LossModel
) -> LossBurstState:
    """Swap a harsher loss model onto ``src -> dst``; returns the undo record."""
    link = network.link_between(src, dst)
    state = LossBurstState(link, link.loss)
    link.loss = loss
    return state


def crash_node(network: Network, name: str) -> Router:
    """Fail-stop the router ``name``; returns it.

    Only routers crash in this model: a host crash would take its
    protocol entities with it, which is an application-level scenario
    (the paper's end-systems are assumed to stay up while the *network*
    degrades).
    """
    node = network.nodes[name]
    if not isinstance(node, Router):
        raise TypeError(
            f"node {name!r} is a {type(node).__name__}; only routers crash"
        )
    node.crash()
    return node


def restart_node(network: Network, name: str) -> Router:
    """Restart the crashed router ``name``; returns it."""
    node = network.nodes[name]
    if not isinstance(node, Router):
        raise TypeError(
            f"node {name!r} is a {type(node).__name__}; only routers restart"
        )
    node.restart()
    return node


# ---------------------------------------------------------------------------
# Composing ledger
# ---------------------------------------------------------------------------


@dataclass
class LedgerToken:
    """Handle for one active interval episode in a :class:`FaultLedger`.

    ``restore()`` ends this episode *only*: the ledger recomputes the
    target's state from whatever other episodes remain active, so the
    token slots into the injector's existing undo-state protocol.
    Idempotent -- a second ``restore()`` is a no-op.
    """

    ledger: "FaultLedger"
    kind: str
    link: Link
    token_id: int
    ended: bool = False

    def restore(self) -> None:
        """End this episode and recompose the target's state."""
        if self.ended:
            return
        self.ended = True
        self.ledger._end_token(self)


@dataclass
class _SqueezeLedgerEntry:
    """Active squeeze factors on one link plus its pre-squeeze rate."""

    base_bps: float
    factors: Dict[int, float] = field(default_factory=dict)


@dataclass
class _LossLedgerEntry:
    """Active burst loss models on one link plus its base model.

    The most recently begun still-active burst's model is in force;
    when the stack empties the base model object itself is reinstalled
    (identity, not a copy -- stateful models keep their state).
    """

    base_loss: Optional[LossModel]
    stack: List[Tuple[int, LossModel]] = field(default_factory=list)


class FaultLedger:
    """Per-target composition of overlapping fault episodes.

    One ledger per injector (or per test).  All mutations of a target
    must go through the same ledger for composition to hold; state
    changed behind the ledger's back while episodes are active is
    overwritten on recomposition, exactly like the standalone
    functions.

    Composition rules:

    - **Outages / crashes** refcount: the first ``link_down`` takes the
      carrier away, only the matching last ``link_up`` restores it.  A
      bare ``link_up``/``restart`` with no active episode restores
      directly (plans may use LinkUp as a plain repair action).
    - **Squeezes** multiply: the link runs at ``base * prod(factors)``
      of all active squeezes; when the last ends, the base rate is
      restored exactly (no float drift from repeated division).
    - **Loss bursts** stack: the newest active burst's model is in
      force; ending it reveals the next newest, and the pristine base
      model returns -- same object -- when none remain.
    """

    def __init__(self, network: Network):
        self.network = network
        self._token_ids = itertools.count(1)
        self._down_counts: Dict[Link, int] = {}
        self._squeezes: Dict[Link, _SqueezeLedgerEntry] = {}
        self._losses: Dict[Link, _LossLedgerEntry] = {}
        self._crash_counts: Dict[str, int] = {}

    # -- outages (refcounted) -------------------------------------------

    def link_down(self, src: str, dst: str) -> Link:
        """One more outage on ``src -> dst``; takes carrier on 0 -> 1."""
        link = self.network.link_between(src, dst)
        count = self._down_counts.get(link, 0)
        if count == 0:
            link.set_down()
        self._down_counts[link] = count + 1
        return link

    def link_up(self, src: str, dst: str) -> Link:
        """One outage over on ``src -> dst``; restores carrier on 1 -> 0.

        With no outage active this restores the carrier directly, so a
        plan's bare repair action still works.
        """
        link = self.network.link_between(src, dst)
        count = self._down_counts.get(link, 0)
        if count <= 1:
            self._down_counts.pop(link, None)
            link.set_up()
        else:
            self._down_counts[link] = count - 1
        return link

    def outages_on(self, src: str, dst: str) -> int:
        """Number of currently active outage episodes on ``src -> dst``."""
        link = self.network.link_between(src, dst)
        return self._down_counts.get(link, 0)

    # -- squeezes (multiplicative) --------------------------------------

    def begin_squeeze(self, src: str, dst: str, factor: float) -> LedgerToken:
        """Apply one squeeze factor on top of any already active."""
        link = self.network.link_between(src, dst)
        entry = self._squeezes.get(link)
        if entry is None:
            entry = self._squeezes[link] = _SqueezeLedgerEntry(
                base_bps=link.bandwidth_bps
            )
        token = LedgerToken(self, "squeeze", link, next(self._token_ids))
        entry.factors[token.token_id] = factor
        self._recompose_rate(link, entry)
        return token

    def _recompose_rate(self, link: Link, entry: _SqueezeLedgerEntry) -> None:
        rate = entry.base_bps
        for factor in entry.factors.values():
            rate *= factor
        link.set_rate(rate)

    # -- loss bursts (stacked) ------------------------------------------

    def begin_loss_burst(
        self, src: str, dst: str, loss: LossModel
    ) -> LedgerToken:
        """Put ``loss`` in force on ``src -> dst`` until ended."""
        link = self.network.link_between(src, dst)
        entry = self._losses.get(link)
        if entry is None:
            entry = self._losses[link] = _LossLedgerEntry(base_loss=link.loss)
        token = LedgerToken(self, "loss_burst", link, next(self._token_ids))
        entry.stack.append((token.token_id, loss))
        link.loss = loss
        return token

    # -- crashes (refcounted) -------------------------------------------

    def crash(self, name: str) -> Router:
        """One more crash episode on router ``name``; crashes on 0 -> 1."""
        count = self._crash_counts.get(name, 0)
        node = (
            crash_node(self.network, name)
            if count == 0
            else self.network.nodes[name]
        )
        self._crash_counts[name] = count + 1
        return node

    def restart(self, name: str) -> Router:
        """One crash episode over on ``name``; restarts on 1 -> 0."""
        count = self._crash_counts.get(name, 0)
        if count <= 1:
            self._crash_counts.pop(name, None)
            return restart_node(self.network, name)
        self._crash_counts[name] = count - 1
        return self.network.nodes[name]

    # -- token retirement ------------------------------------------------

    def _end_token(self, token: LedgerToken) -> None:
        """Recompose a target's state after one episode ends."""
        link = token.link
        if token.kind == "squeeze":
            entry = self._squeezes.get(link)
            if entry is None or token.token_id not in entry.factors:
                return
            del entry.factors[token.token_id]
            if entry.factors:
                self._recompose_rate(link, entry)
            else:
                # Last squeeze out: restore the captured base exactly.
                link.set_rate(entry.base_bps)
                del self._squeezes[link]
        elif token.kind == "loss_burst":
            entry = self._losses.get(link)
            if entry is None:
                return
            entry.stack = [
                item for item in entry.stack if item[0] != token.token_id
            ]
            if entry.stack:
                link.loss = entry.stack[-1][1]
            else:
                link.loss = entry.base_loss
                del self._losses[link]
