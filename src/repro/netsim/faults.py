"""Netsim-level fault mechanisms: the operations fault plans apply.

This module is the *mechanism* half of the fault-injection subsystem:
small, state-capturing operations on a live :class:`~repro.netsim.topology.Network`
-- take a link down, squeeze its rate, swap its loss model, crash a
router.  The *policy* half (which fault happens when) lives in
:mod:`repro.faults`, whose injector schedules these operations on the
simulator.

Every ``begin_*`` operation returns the state needed to undo it, so the
injector can restore a link/router exactly -- including when several
episodes overlap on the same target (last writer restores what it saw).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.link import Link, LossModel
from repro.netsim.node import Router
from repro.netsim.topology import Network


def take_link_down(network: Network, src: str, dst: str) -> Link:
    """Carrier loss on the directed link ``src -> dst``; returns the link."""
    link = network.link_between(src, dst)
    link.set_down()
    return link


def restore_link(network: Network, src: str, dst: str) -> Link:
    """Restore carrier on the directed link ``src -> dst``; returns the link."""
    link = network.link_between(src, dst)
    link.set_up()
    return link


@dataclass
class SqueezeState:
    """Undo record for a bandwidth squeeze: the link and its prior rate."""

    link: Link
    original_bps: float

    def restore(self) -> None:
        """Put the link's serialisation rate back where it was."""
        self.link.set_rate(self.original_bps)


def begin_squeeze(network: Network, src: str, dst: str, factor: float) -> SqueezeState:
    """Scale the rate of ``src -> dst`` by ``factor``; returns the undo record."""
    link = network.link_between(src, dst)
    original = link.scale_rate(factor)
    return SqueezeState(link, original)


@dataclass
class LossBurstState:
    """Undo record for a loss burst: the link and its prior loss model."""

    link: Link
    original_loss: LossModel

    def restore(self) -> None:
        """Reinstall the loss model that was active before the burst."""
        self.link.loss = self.original_loss


def begin_loss_burst(
    network: Network, src: str, dst: str, loss: LossModel
) -> LossBurstState:
    """Swap a harsher loss model onto ``src -> dst``; returns the undo record."""
    link = network.link_between(src, dst)
    state = LossBurstState(link, link.loss)
    link.loss = loss
    return state


def crash_node(network: Network, name: str) -> Router:
    """Fail-stop the router ``name``; returns it.

    Only routers crash in this model: a host crash would take its
    protocol entities with it, which is an application-level scenario
    (the paper's end-systems are assumed to stay up while the *network*
    degrades).
    """
    node = network.nodes[name]
    if not isinstance(node, Router):
        raise TypeError(
            f"node {name!r} is a {type(node).__name__}; only routers crash"
        )
    node.crash()
    return node


def restart_node(network: Network, name: str) -> Router:
    """Restart the crashed router ``name``; returns it."""
    node = network.nodes[name]
    if not isinstance(node, Router):
        raise TypeError(
            f"node {name!r} is a {type(node).__name__}; only routers restart"
        )
    node.restart()
    return node
