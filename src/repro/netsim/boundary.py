"""Boundary links: the shard-side stand-in for a cross-shard wire.

A :class:`BoundaryLink` replaces the egress half of a cut link (see
:mod:`repro.netsim.partition`).  It reuses the real
:class:`~repro.netsim.link.Link` serialisation machinery -- counters,
priority bands, buffer accounting, the idle-wire fast commit and the
classic queued path -- but instead of arming an in-process delivery
flight it *exports* each departing packet, stamped with its computed
arrival time, into the shard's :class:`~repro.sim.shard.runner.Outbox`.

The export happens at **serialization-completion (wire-exit) time**,
not at arrival time.  This is the load-bearing choice of the whole
synchronization scheme: a packet exported at wire exit ``c`` arrives at
``c + prop_delay >= c + lookahead``, which is at or beyond the *next*
synchronization barrier -- so the receiving shard always learns about
the packet before executing the window containing its arrival.  (A
delivery-time hook would fire inside a window the receiver has already
run: one window too late.)

Because cut links are pristine by partition rule (no jitter, loss or
bit errors -- enforced again here), the exported arrival times are
bit-identical to what a real pristine ``Link`` would compute, which is
what makes an N-shard run's QoS conformance equal the unsharded
baseline's.  Cut links are consequently not valid fault targets:
:meth:`BoundaryLink.set_down` and friends raise
:class:`~repro.netsim.partition.PartitionError`.
"""

from __future__ import annotations

from repro.netsim.link import _RESERVED, Link
from repro.netsim.packet import Packet
from repro.netsim.partition import CutLink, PartitionError
from repro.netsim.topology import Network
from repro.sim.scheduler import Simulator
from repro.sim.shard.runner import Outbox


class BoundaryLink(Link):
    """Egress half of a cut link: serialises locally, delivers remotely.

    Behaves exactly like a pristine :class:`~repro.netsim.link.Link`
    up to wire exit (same fast-commit gate, same queueing, same
    counters and trace spans, same per-band no-reorder clamps), then
    hands ``(dst_shard, dst_node, arrival, packet)`` to the outbox
    instead of scheduling a local delivery.  Delivered counters and the
    packet hop count are settled at export, since the arrival event
    runs in another process.
    """

    def __init__(self, sim: Simulator, cut: CutLink, outbox: Outbox):
        super().__init__(
            sim, cut.src, cut.dst, cut.bandwidth_bps,
            prop_delay=cut.prop_delay, buffer_bytes=cut.buffer_bytes,
        )
        if cut.prop_delay <= 0:
            raise PartitionError(
                f"boundary link {cut.src}->{cut.dst} needs positive "
                "propagation delay"
            )
        self.cut = cut
        self.dst_shard = cut.dst_shard
        self.outbox = outbox

    # -- fault API: cuts are not valid targets ---------------------------

    def set_down(self) -> None:
        """Refuse: a cut link cannot be a fault target (see module doc)."""
        raise PartitionError(
            f"cut link {self._name} cannot be a fault target: its "
            "latency is the shards' synchronization lookahead"
        )

    def set_up(self) -> None:
        """Refuse, matching :meth:`set_down`."""
        raise PartitionError(
            f"cut link {self._name} cannot be a fault target"
        )

    def set_rate(self, bandwidth_bps: float) -> None:
        """Refuse: mid-run retiming would desynchronize the shards."""
        raise PartitionError(
            f"cut link {self._name} cannot change rate mid-run"
        )

    # -- serialisation path ----------------------------------------------

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet``, exporting it at wire exit.

        Mirrors :meth:`Link.send` with the impairment branches dropped
        (the constructor guarantees a pristine, never-down link): an
        idle wire commits the whole fate here; a busy wire queues into
        the priority bands and :meth:`_tx_done` exports later.
        """
        bits = packet.size_bits
        self._c_sent.value += 1
        self._c_sent_bits.value += bits
        sim = self.sim
        now = sim._now
        if (self._free_at <= now
                and not self._transmitting
                and bits * 0.125 <= self.buffer_bytes):
            complete = now + bits / self.bandwidth_bps
            self._free_at = complete
            trace = sim.trace
            if trace.packets:
                trace.complete(
                    packet.flow_id or type(packet.payload).__name__,
                    now, complete,
                    track=self._track, cat="link",
                    args={"bits": bits,
                          "priority": int(packet.priority),
                          "packet_id": packet.packet_id},
                )
            self._export(packet, complete + self.prop_delay)
            self._wire = (complete, bits * 0.125, None)
            return
        size_bytes = bits * 0.125
        if (self._queued_bytes + self._wire_bytes() + size_bytes
                > self.buffer_bytes):
            self._c_buffer_drops.value += 1
            trace = sim.trace
            if trace.packets:
                trace.instant(
                    "drop:buffer", track=self._track, cat="link",
                    args={"flow": packet.flow_id,
                          "packet_id": packet.packet_id,
                          "link": self._name},
                )
            return
        self._queued_bytes += size_bytes
        entry = (packet, now)
        if packet.priority >= _RESERVED:
            self._high.append(entry)
        else:
            self._low.append(entry)
        if not self._transmitting:
            if self._free_at > now:
                self._transmitting = True
                self._tx_handle = self._tx_timer
                sim._push(self._tx_timer, self._free_at)
            else:
                self._start_next()

    def _tx_done(self) -> None:
        """Serialisation finished: export instead of launching a flight."""
        packet = self._tx_packet
        if packet is None:
            # Woken at wire-idle after a fast commit: start the queue.
            self._tx_handle = None
            self._start_next()
            return
        self._tx_packet = None
        self._tx_handle = None
        self._queued_bytes -= packet.size_bits * 0.125
        sim = self.sim
        trace = sim.trace
        if trace.packets:
            trace.complete(
                packet.flow_id or type(packet.payload).__name__,
                self._tx_started, sim.now,
                track=self._track, cat="link",
                args={"bits": packet.size_bits,
                      "priority": int(packet.priority),
                      "packet_id": packet.packet_id},
            )
        self._export(packet, sim._now + self.prop_delay)
        self._start_next()

    def _export(self, packet: Packet, arrival: float) -> None:
        """Settle delivery accounting and hand off to the outbox.

        The per-band no-reorder clamps are kept for strict parity with
        :meth:`Link._tx_done` even though a pristine wire never needs
        them (arrivals are already monotone per band).
        """
        if packet.priority >= _RESERVED:
            if arrival < self._last_delivery_high:
                arrival = self._last_delivery_high
            self._last_delivery_high = arrival
        else:
            if arrival < self._last_delivery_low:
                arrival = self._last_delivery_low
            self._last_delivery_low = arrival
        self._c_delivered.value += 1
        self._c_delivered_bits.value += packet.size_bits
        packet.hops += 1
        self.outbox.export(self.dst_shard, self.dst, arrival, packet)


def attach_egress(network: Network, cut: CutLink,
                  outbox: Outbox) -> BoundaryLink:
    """Wire a cut's egress half into a shard-local network.

    Builds the :class:`BoundaryLink`, attaches it to the (local) source
    node and records a graph edge to the (remote, ghost) destination
    name so routing treats the cut like any other hop.  Returns the
    link.
    """
    link = BoundaryLink(network.sim, cut, outbox)
    network.nodes[cut.src].attach_link(link)
    network.graph.add_edge(
        cut.src, cut.dst, weight=cut.prop_delay, link=link
    )
    network._routes.clear()
    return link
