"""Network-level packets.

A :class:`Packet` carries an opaque payload between named nodes.  The
transport layer puts its TPDUs in the payload; the network layer only
looks at addressing, size and priority.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


class Priority(enum.IntEnum):
    """Link service priority.

    The orchestrator's out-of-band control VCs "must have guaranteed
    bandwidth to support the necessary real-time communication of
    orchestration primitives" (paper section 5); control and reserved
    traffic is therefore served ahead of best-effort traffic on every
    link.
    """

    BEST_EFFORT = 0
    RESERVED = 1
    CONTROL = 2


_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One network PDU.

    Attributes:
        src: originating node name.
        dst: destination node name.
        payload: opaque upper-layer data (a TPDU, an OPDU, ...).
        size_bits: wire size including headers, used for serialisation
            delay and buffer occupancy.
        priority: link scheduling class.
        flow_id: identifies the flow for per-flow reservation policing;
            transport VCs use their vc-id here.
        corrupted: set by the link bit-error model; the receiving
            protocol entity decides what to do about it (class-of-service
            dependent, paper section 3.4).
        packet_id: unique id for tracing.
        sent_at: simulator time the packet entered the first link.
        hops: number of links traversed so far.
    """

    src: str
    dst: str
    payload: Any
    size_bits: int
    priority: Priority = Priority.BEST_EFFORT
    flow_id: Optional[str] = None
    corrupted: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: Optional[float] = None
    hops: int = 0
    #: For 1:N multicast (paper sections 3.8 and 7): the set of
    #: destination hosts this copy still has to reach.  Routers split
    #: the packet per next hop; ``dst`` holds the group name for
    #: tracing only.
    group_targets: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bits}")

    @property
    def size_bytes(self) -> float:
        """Packet size in bytes (``size_bits / 8``)."""
        return self.size_bits / 8.0
