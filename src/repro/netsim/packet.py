"""Network-level packets.

A :class:`Packet` carries an opaque payload between named nodes.  The
transport layer puts its TPDUs in the payload; the network layer only
looks at addressing, size and priority.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, ClassVar, Optional, Tuple

from repro.sim.pool import Freelist


class Priority(enum.IntEnum):
    """Link service priority.

    The orchestrator's out-of-band control VCs "must have guaranteed
    bandwidth to support the necessary real-time communication of
    orchestration primitives" (paper section 5); control and reserved
    traffic is therefore served ahead of best-effort traffic on every
    link.
    """

    BEST_EFFORT = 0
    RESERVED = 1
    CONTROL = 2


_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One network PDU.

    Hot-path note: packets on the transport data path are recycled
    through a :class:`~repro.sim.pool.Freelist` -- create them with
    :meth:`acquire` and let the destination host release them (see
    :meth:`release` for the exact rules).  The plain constructor stays
    valid everywhere and produces a never-pooled packet.

    Attributes:
        src: originating node name.
        dst: destination node name.
        payload: opaque upper-layer data (a TPDU, an OPDU, ...).
        size_bits: wire size including headers, used for serialisation
            delay and buffer occupancy.
        priority: link scheduling class.
        flow_id: identifies the flow for per-flow reservation policing;
            transport VCs use their vc-id here.
        corrupted: set by the link bit-error model; the receiving
            protocol entity decides what to do about it (class-of-service
            dependent, paper section 3.4).
        packet_id: unique id for tracing.
        sent_at: simulator time the packet entered the first link.
        hops: number of links traversed so far.
    """

    src: str
    dst: str
    payload: Any
    size_bits: int
    priority: Priority = Priority.BEST_EFFORT
    flow_id: Optional[str] = None
    corrupted: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: Optional[float] = None
    hops: int = 0
    #: For 1:N multicast (paper sections 3.8 and 7): the set of
    #: destination hosts this copy still has to reach.  Routers split
    #: the packet per next hop; ``dst`` holds the group name for
    #: tracing only.
    group_targets: Optional[Tuple[str, ...]] = None
    #: True while the packet is owned by the pooled data path; the
    #: destination host returns such packets to the freelist after the
    #: payload handler runs.  Never set this by hand -- use
    #: :meth:`acquire`.
    _pooled: bool = field(default=False, repr=False, compare=False)

    _POOL: ClassVar[Freelist] = Freelist()

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bits}")

    @classmethod
    def acquire(
        cls,
        src: str,
        dst: str,
        payload: Any,
        size_bits: int,
        priority: Priority = Priority.BEST_EFFORT,
        flow_id: Optional[str] = None,
    ) -> "Packet":
        """A fresh-looking packet, recycled from the freelist when possible.

        The result is marked ``_pooled``: when it reaches its
        destination host and the payload handler has run, the host
        returns it to the freelist.  Callers must therefore not retain
        a reference past handing the packet to a link.
        """
        # Freelist access inlined (cls._POOL._free): two calls per
        # packet are measurable at packet/link rates.
        free = cls._POOL._free
        if not free:
            return cls(src, dst, payload, size_bits, priority, flow_id,
                       _pooled=True)
        packet = free.pop()
        packet.src = src
        packet.dst = dst
        packet.payload = payload
        packet.size_bits = size_bits
        packet.priority = priority
        packet.flow_id = flow_id
        packet.corrupted = False
        packet.packet_id = next(_packet_ids)
        packet.sent_at = None
        packet.hops = 0
        packet.group_targets = None
        packet._pooled = True
        return packet

    @classmethod
    def release(cls, packet: "Packet") -> None:
        """Return a pooled packet to the freelist.

        Safe to call on any packet: constructor-made (never pooled)
        packets are ignored, and double release is a no-op because the
        first release clears the flag.  Only the terminal owner -- the
        destination host after dispatching the payload handler, or the
        benchmark acting as one -- may call this.
        """
        if not packet._pooled:
            return
        packet._pooled = False
        packet.payload = None
        free = cls._POOL._free
        if len(free) < cls._POOL.capacity:
            free.append(packet)

    @property
    def size_bytes(self) -> float:
        """Packet size in bytes (``size_bits / 8``)."""
        return self.size_bits / 8.0
