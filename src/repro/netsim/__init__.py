"""Simulated multiservice packet network.

This package stands in for the Lancaster testbed's transputer-based
"real-time high-speed network emulator" (paper section 2.1).  It
provides:

- :class:`Packet` -- the network-level PDU.
- :class:`Link` -- a simplex link with bandwidth, propagation delay,
  jitter, loss and bit-error models, a finite buffer, and two service
  priorities (reserved/control above best-effort).
- :class:`Host` / :class:`Router` -- end-systems and forwarders.
- :class:`Network` -- topology + shortest-path routing + delivery.
- :class:`ReservationManager` -- ST-II-like per-hop resource
  reservation and admission control (paper section 3.3 and 7 assume
  such a protocol, citing ST-II [Topolcic,90] and SRP [Anderson,91]).
- :mod:`repro.netsim.faults` -- fault mechanisms (link down/up, rate
  squeeze, loss burst, router crash) driven by :mod:`repro.faults`
  plans.
- :mod:`repro.netsim.partition` / :mod:`repro.netsim.boundary` --
  topology partitioning and boundary links for sharded multi-process
  runs (see ``docs/SCALING.md``).
"""

from repro.netsim.packet import Packet, Priority
from repro.netsim.link import (
    BernoulliLoss,
    GilbertElliottLoss,
    Link,
    LossModel,
    NoJitter,
    NoLoss,
    TruncatedGaussianJitter,
    UniformJitter,
)
from repro.netsim.node import Host, Node, Router
from repro.netsim.topology import Network
from repro.netsim.boundary import BoundaryLink, attach_egress
from repro.netsim.partition import (
    CutLink,
    LinkSpec,
    PartitionError,
    TopologyPartition,
    partition_topology,
)
from repro.netsim.faults import (
    begin_loss_burst,
    begin_squeeze,
    crash_node,
    restart_node,
    restore_link,
    take_link_down,
)
from repro.netsim.reservation import (
    AdmissionError,
    Reservation,
    ReservationManager,
)

__all__ = [
    "AdmissionError",
    "BernoulliLoss",
    "BoundaryLink",
    "CutLink",
    "GilbertElliottLoss",
    "Host",
    "Link",
    "LinkSpec",
    "LossModel",
    "Network",
    "NoJitter",
    "NoLoss",
    "Node",
    "Packet",
    "PartitionError",
    "Priority",
    "Reservation",
    "ReservationManager",
    "Router",
    "TopologyPartition",
    "TruncatedGaussianJitter",
    "UniformJitter",
    "attach_egress",
    "begin_loss_burst",
    "begin_squeeze",
    "crash_node",
    "partition_topology",
    "restart_node",
    "restore_link",
    "take_link_down",
]
