"""Network topology, routing and packet delivery.

The :class:`Network` holds nodes and links, computes shortest-path
routes (networkx, weighted by link propagation delay) and wires each
link's delivery callback to the receiving node.  Hosts inject packets
with :meth:`Network.send`; routers forward hop by hop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.netsim.link import JitterModel, Link, LossModel
from repro.netsim.node import Host, Node, Router
from repro.netsim.packet import Packet
from repro.sim.clock import NodeClock
from repro.sim.random import RandomStreams
from repro.sim.scheduler import Simulator


class Network:
    """A routed packet network over the simulation kernel."""

    def __init__(self, sim: Simulator, streams: Optional[RandomStreams] = None):
        self.sim = sim
        self.streams = streams or RandomStreams(0)
        self.nodes: Dict[str, Node] = {}
        self.graph = nx.DiGraph()
        self._routes: Dict[Tuple[str, str], List[str]] = {}

    # -- construction ------------------------------------------------------

    def add_host(self, name: str, clock_skew_ppm: float = 0.0) -> Host:
        """Create a host whose local clock drifts at ``clock_skew_ppm``."""
        self._check_new(name)
        host = Host(self.sim, name, NodeClock(self.sim, skew_ppm=clock_skew_ppm))
        self.nodes[name] = host
        self.graph.add_node(name)
        return host

    def add_router(self, name: str) -> Router:
        """Create a store-and-forward router wired to this network's routes."""
        self._check_new(name)
        router = Router(self.sim, name)
        router.forward = lambda dst, _name=name: self.next_hop(_name, dst)
        self.nodes[name] = router
        self.graph.add_node(name)
        return router

    def _check_new(self, name: str) -> None:
        """Reject duplicate node names."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        prop_delay: float = 0.001,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        bidirectional: bool = True,
    ) -> Tuple[Link, Optional[Link]]:
        """Create link(s) between existing nodes ``a`` and ``b``.

        Returns ``(a_to_b, b_to_a)``; the second element is None for a
        simplex link.
        """
        forward = self._make_link(
            a, b, bandwidth_bps, prop_delay, jitter, loss, ber, buffer_bytes
        )
        backward = None
        if bidirectional:
            backward = self._make_link(
                b, a, bandwidth_bps, prop_delay, jitter, loss, ber, buffer_bytes
            )
        self._routes.clear()
        return forward, backward

    def _make_link(
        self,
        src: str,
        dst: str,
        bandwidth_bps: float,
        prop_delay: float,
        jitter: Optional[JitterModel],
        loss: Optional[LossModel],
        ber: float,
        buffer_bytes: int,
    ) -> Link:
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise KeyError(f"unknown node {missing!r}")
        link = Link(
            self.sim,
            src,
            dst,
            bandwidth_bps,
            prop_delay=prop_delay,
            jitter=jitter,
            loss=loss,
            ber=ber,
            buffer_bytes=buffer_bytes,
            rng=self.streams.stream(f"link:{src}->{dst}"),
        )
        self.nodes[src].attach_link(link)
        link.on_deliver = self.nodes[dst].receive
        self.graph.add_edge(src, dst, weight=prop_delay, link=link)
        return link

    # -- routing -----------------------------------------------------------

    def route(self, src: str, dst: str) -> List[str]:
        """Node-name path from ``src`` to ``dst`` (inclusive)."""
        key = (src, dst)
        if key not in self._routes:
            try:
                self._routes[key] = nx.shortest_path(
                    self.graph, src, dst, weight="weight"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise ValueError(f"no route from {src!r} to {dst!r}") from exc
        return self._routes[key]

    def next_hop(self, at: str, dst: str) -> str:
        """The neighbour a packet at ``at`` should be forwarded to."""
        path = self.route(at, dst)
        if len(path) < 2:
            raise ValueError(f"no next hop from {at!r} toward {dst!r}")
        return path[1]

    def link_between(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst``; KeyError when absent.

        Fault plans address links by endpoint names; this is the lookup
        the injector uses to resolve an episode's target.
        """
        try:
            return self.graph.edges[src, dst]["link"]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r}") from None

    def links_on_route(self, src: str, dst: str) -> List[Link]:
        """The Link objects along the route (used for reservation)."""
        path = self.route(src, dst)
        return [
            self.graph.edges[u, v]["link"] for u, v in zip(path, path[1:])
        ]

    def path_propagation_delay(self, src: str, dst: str) -> float:
        """Sum of propagation delays along the route ``src -> dst``."""
        return sum(link.prop_delay for link in self.links_on_route(src, dst))

    # -- sending -----------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Inject ``packet`` at its source node."""
        if packet.src == packet.dst:
            # Local delivery: model a small loopback latency of zero but
            # keep the asynchronous discipline (handler runs from the
            # event loop, never inline).
            self.sim.call_soon(lambda: self.nodes[packet.dst].receive(packet))
            return
        packet.sent_at = self.sim.now
        first_hop = self.next_hop(packet.src, packet.dst)
        self.nodes[packet.src].link_to(first_hop).send(packet)

    def send_multicast(self, packet: Packet, targets: Iterable[str]) -> None:
        """Inject a 1:N multicast packet at its source node.

        Replication follows the source-rooted shortest-path tree: the
        source splits per next hop, and routers split further at branch
        points, so each tree edge carries exactly one copy.
        """
        from dataclasses import replace as dc_replace

        target_set = tuple(sorted(set(targets)))
        packet.sent_at = self.sim.now
        branches: Dict[str, List[str]] = {}
        for target in target_set:
            if target == packet.src:
                copy = dc_replace(packet, group_targets=(target,))
                self.sim.call_soon(
                    lambda c=copy: self.nodes[packet.src].receive(c)
                )
                continue
            branches.setdefault(self.next_hop(packet.src, target), []).append(
                target
            )
        for hop, hop_targets in branches.items():
            copy = dc_replace(packet, group_targets=tuple(hop_targets))
            self.nodes[packet.src].link_to(hop).send(copy)

    def tree_links(self, src: str, targets: Iterable[str]) -> List[Link]:
        """Unique links of the source-rooted tree covering ``targets``."""
        links: List[Link] = []
        seen = set()
        for target in targets:
            if target == src:
                continue
            for link in self.links_on_route(src, target):
                key = (link.src, link.dst)
                if key not in seen:
                    seen.add(key)
                    links.append(link)
        return links

    def host(self, name: str) -> Host:
        """The Host called ``name``; TypeError if it is a router."""
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"node {name!r} is a {type(node).__name__}, not a Host")
        return node

    def hosts(self) -> Iterable[Host]:
        """All Host nodes in the network."""
        return (n for n in self.nodes.values() if isinstance(n, Host))
