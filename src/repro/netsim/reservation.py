"""ST-II-like per-hop resource reservation and admission control.

The paper assumes that "when the protocol is operating in an internet
environment, a network level resource reservation protocol such as ST-II
[Topolcic,90] or SRP [Anderson,91] will need to be used to guarantee
resources in intermediate nodes" (section 7), and that dynamic QoS
control requires "mechanisms ... to alter link-level bandwidths and/or
processing and buffering resources on intermediate nodes" (section 3.3).

:class:`ReservationManager` provides exactly that substrate: bandwidth
and buffer reservations along a route, admission control against each
link's reservable capacity, and in-place modification for QoS
renegotiation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

from repro.netsim.link import Link
from repro.netsim.topology import Network


class AdmissionError(Exception):
    """Raised when a reservation cannot be admitted.

    Attributes:
        link: the first link that refused the request.
        requested_bps: the rate asked for.
        available_bps: what that link could still offer.
    """

    def __init__(self, link: Link, requested_bps: float, available_bps: float):
        super().__init__(
            f"link {link.src}->{link.dst} cannot admit {requested_bps/1e6:.2f} "
            f"Mbit/s (available {available_bps/1e6:.2f} Mbit/s)"
        )
        self.link = link
        self.requested_bps = requested_bps
        self.available_bps = available_bps


_reservation_ids = itertools.count(1)


@dataclass
class Reservation:
    """An admitted end-to-end reservation.

    Attributes:
        reservation_id: unique handle.
        src, dst: end-system names.
        rate_bps: reserved bandwidth on every link of the route.
        buffer_bytes: reserved buffer on every hop.
        links: the links the reservation is pinned to.
    """

    src: str
    dst: str
    rate_bps: float
    buffer_bytes: int
    links: List[Link]
    reservation_id: int = field(default_factory=lambda: next(_reservation_ids))
    released: bool = False


class ReservationManager:
    """Admission control over a :class:`~repro.netsim.topology.Network`.

    Each link may commit at most ``reservable_fraction`` of its raw
    bandwidth to reservations, mirroring real admission controllers that
    keep headroom for control traffic and burst tolerance.
    """

    def __init__(self, network: Network, reservable_fraction: float = 0.9):
        if not 0.0 < reservable_fraction <= 1.0:
            raise ValueError(
                f"reservable fraction {reservable_fraction} outside (0, 1]"
            )
        self.network = network
        self.reservable_fraction = reservable_fraction
        self._committed_bps: Dict[Link, float] = {}
        self._committed_buffer: Dict[Link, int] = {}
        self.reservations: Dict[int, Reservation] = {}
        self.admitted_count = 0
        self.rejected_count = 0

    # -- queries -------------------------------------------------------

    def committed_bps(self, link: Link) -> float:
        """Bandwidth currently committed to reservations on ``link``."""
        return self._committed_bps.get(link, 0.0)

    def available_bps(self, link: Link) -> float:
        """Bandwidth still admittable on ``link`` under the reservable cap."""
        return (
            link.bandwidth_bps * self.reservable_fraction
            - self.committed_bps(link)
        )

    def route_available_bps(self, src: str, dst: str) -> float:
        """Bottleneck reservable bandwidth along the route."""
        links = self.network.links_on_route(src, dst)
        return min(self.available_bps(link) for link in links)

    # -- admission -------------------------------------------------------

    def reserve(
        self,
        src: str,
        dst: str,
        rate_bps: float,
        buffer_bytes: int = 0,
    ) -> Reservation:
        """Admit a reservation along ``src -> dst`` or raise AdmissionError."""
        if rate_bps <= 0:
            raise ValueError(f"reservation rate must be positive, got {rate_bps}")
        links = self.network.links_on_route(src, dst)
        for link in links:
            available = self.available_bps(link)
            if rate_bps > available + 1e-9:
                self.rejected_count += 1
                raise AdmissionError(link, rate_bps, available)
            buffer_left = link.buffer_bytes - self._committed_buffer.get(link, 0)
            if buffer_bytes > buffer_left:
                self.rejected_count += 1
                raise AdmissionError(link, rate_bps, available)
        for link in links:
            self._committed_bps[link] = self.committed_bps(link) + rate_bps
            self._committed_buffer[link] = (
                self._committed_buffer.get(link, 0) + buffer_bytes
            )
        reservation = Reservation(src, dst, rate_bps, buffer_bytes, links)
        self.reservations[reservation.reservation_id] = reservation
        self.admitted_count += 1
        return reservation

    def reserve_multicast(
        self,
        src: str,
        sinks: "List[str]",
        rate_bps: float,
        buffer_bytes: int = 0,
    ) -> Reservation:
        """Admit one reservation over the multicast tree to ``sinks``.

        Each tree edge is reserved exactly once -- the bandwidth
        economy that makes 1:N delivery cheaper than N unicast VCs.
        """
        if rate_bps <= 0:
            raise ValueError(f"reservation rate must be positive, got {rate_bps}")
        links = self.network.tree_links(src, sinks)
        if not links:
            raise ValueError("multicast tree has no links (no remote sinks)")
        for link in links:
            available = self.available_bps(link)
            if rate_bps > available + 1e-9:
                self.rejected_count += 1
                raise AdmissionError(link, rate_bps, available)
        for link in links:
            self._committed_bps[link] = self.committed_bps(link) + rate_bps
            self._committed_buffer[link] = (
                self._committed_buffer.get(link, 0) + buffer_bytes
            )
        reservation = Reservation(
            src, f"group({len(sinks)})", rate_bps, buffer_bytes, links
        )
        self.reservations[reservation.reservation_id] = reservation
        self.admitted_count += 1
        return reservation

    def modify(self, reservation: Reservation, new_rate_bps: float) -> None:
        """Change a reservation's rate in place (QoS renegotiation).

        Decreases always succeed.  Increases are admitted against the
        *remaining* capacity of the same links; on failure the original
        reservation is left untouched, matching the paper's rule that a
        rejected T-Renegotiate leaves the existing VC up (section 4.1.3).
        """
        if reservation.released:
            raise ValueError("cannot modify a released reservation")
        if new_rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {new_rate_bps}")
        delta = new_rate_bps - reservation.rate_bps
        if delta > 0:
            for link in reservation.links:
                available = self.available_bps(link)
                if delta > available + 1e-9:
                    raise AdmissionError(link, new_rate_bps, available)
        for link in reservation.links:
            self._committed_bps[link] = self.committed_bps(link) + delta
        reservation.rate_bps = new_rate_bps

    def release(self, reservation: Reservation) -> None:
        """Return a reservation's resources to its links (idempotent)."""
        if reservation.released:
            return
        for link in reservation.links:
            self._committed_bps[link] = self.committed_bps(link) - reservation.rate_bps
            self._committed_buffer[link] = (
                self._committed_buffer.get(link, 0) - reservation.buffer_bytes
            )
        reservation.released = True
        self.reservations.pop(reservation.reservation_id, None)
