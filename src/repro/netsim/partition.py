"""Topology partitioning for sharded (multi-process) simulation runs.

A sharded run splits one logical :class:`~repro.netsim.topology.Network`
into per-process *virtual-time domains* (see ``docs/SCALING.md``).  This
module holds the declarative side of that split: node→shard assignments,
per-shard local link sets, and the *cut links* that cross shard
boundaries.  Cut links are the synchronization contract of the whole
scheme -- a shard may safely advance its clock by the minimum inbound
cut-link propagation delay (classic conservative lookahead), so every
cut must satisfy the partitioning rules enforced here:

- positive propagation delay (zero-latency cuts would force a
  zero-width synchronization window -- deadlock);
- pristine transmission models (no jitter, no loss, no bit errors):
  the boundary link replays the pristine
  :class:`~repro.netsim.link.Link` fast path exactly, which is what
  makes an N-shard run's conformance equal the unsharded baseline;
- cut endpoints live on *different* shards.

The partition is pure data (picklable, simulator-free); the runtime
side -- exporting departures into a shard outbox -- lives in
:mod:`repro.netsim.boundary`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple


class PartitionError(ValueError):
    """A topology split violates the sharding rules."""


@dataclass(frozen=True)
class LinkSpec:
    """Declarative description of one simplex link, pre-construction.

    Mirrors the :class:`~repro.netsim.link.Link` constructor arguments
    that matter for partitioning.  ``jitter`` and ``loss`` are kept as
    opaque model objects (or ``None``); the partitioner only checks
    that cut links carry none.
    """

    src: str
    dst: str
    bandwidth_bps: float
    prop_delay: float = 0.001
    buffer_bytes: int = 256 * 1024
    jitter: Optional[object] = None
    loss: Optional[object] = None
    ber: float = 0.0


@dataclass(frozen=True)
class CutLink:
    """A link whose endpoints live on different shards.

    Carries everything the egress shard needs to build the
    :class:`~repro.netsim.boundary.BoundaryLink` standing in for the
    wire, plus the routing fact (``dst_shard``) the coordinator uses to
    deliver exported packets.
    """

    src: str
    dst: str
    src_shard: int
    dst_shard: int
    bandwidth_bps: float
    prop_delay: float
    buffer_bytes: int = 256 * 1024


@dataclass(frozen=True)
class TopologyPartition:
    """A validated split of one topology into shard-local pieces.

    ``local[k]`` holds the links fully inside shard ``k``; ``cuts``
    holds every cross-shard link.  ``lookahead`` is the global
    synchronization window: the minimum cut propagation delay, or
    ``inf`` when no link crosses a boundary (shards are then fully
    independent and run in a single window).
    """

    shards: int
    assignment: Mapping[str, int]
    local: Tuple[Tuple[LinkSpec, ...], ...]
    cuts: Tuple[CutLink, ...] = field(default=())

    @property
    def lookahead(self) -> float:
        """Minimum inbound cut latency -- the safe clock advance."""
        if not self.cuts:
            return math.inf
        return min(cut.prop_delay for cut in self.cuts)

    def egress(self, shard: int) -> Tuple[CutLink, ...]:
        """Cut links leaving ``shard`` (it owns their source node)."""
        return tuple(c for c in self.cuts if c.src_shard == shard)

    def ingress(self, shard: int) -> Tuple[CutLink, ...]:
        """Cut links entering ``shard`` (it owns their destination)."""
        return tuple(c for c in self.cuts if c.dst_shard == shard)

    def nodes(self, shard: int) -> Tuple[str, ...]:
        """Node names assigned to ``shard``, in insertion order."""
        return tuple(n for n, s in self.assignment.items() if s == shard)


def partition_topology(
    assignment: Mapping[str, int],
    links: Iterable[LinkSpec],
    shards: Optional[int] = None,
) -> TopologyPartition:
    """Split a declarative topology along a node→shard assignment.

    Validates the sharding rules (see the module docstring) and returns
    the :class:`TopologyPartition`.  ``shards`` defaults to
    ``max(assignment.values()) + 1``; every shard index in range must
    own at least one node.

    Raises :class:`PartitionError` on: an unassigned link endpoint, an
    empty shard, a cut link with zero propagation delay, or a cut link
    carrying a jitter/loss model or a nonzero bit-error rate.
    """
    if not assignment:
        raise PartitionError("empty node assignment")
    count = (max(assignment.values()) + 1) if shards is None else shards
    if count < 1:
        raise PartitionError(f"need at least one shard, got {count}")
    populated: Dict[int, int] = {}
    for node, shard in assignment.items():
        if not 0 <= shard < count:
            raise PartitionError(
                f"node {node!r} assigned to shard {shard}, "
                f"outside [0, {count})"
            )
        populated[shard] = populated.get(shard, 0) + 1
    for shard in range(count):
        if shard not in populated:
            raise PartitionError(f"shard {shard} owns no nodes")

    local: Tuple[list, ...] = tuple([] for _ in range(count))
    cuts = []
    for spec in links:
        for endpoint in (spec.src, spec.dst):
            if endpoint not in assignment:
                raise PartitionError(
                    f"link {spec.src}->{spec.dst} endpoint {endpoint!r} "
                    "has no shard assignment"
                )
        s, d = assignment[spec.src], assignment[spec.dst]
        if s == d:
            local[s].append(spec)
            continue
        if spec.prop_delay <= 0:
            raise PartitionError(
                f"cut link {spec.src}->{spec.dst} needs positive "
                f"propagation delay (got {spec.prop_delay}); zero "
                "lookahead cannot synchronize"
            )
        if spec.jitter is not None or spec.loss is not None or spec.ber:
            raise PartitionError(
                f"cut link {spec.src}->{spec.dst} must be pristine "
                "(no jitter/loss model, zero BER)"
            )
        cuts.append(CutLink(
            src=spec.src, dst=spec.dst, src_shard=s, dst_shard=d,
            bandwidth_bps=spec.bandwidth_bps,
            prop_delay=spec.prop_delay,
            buffer_bytes=spec.buffer_bytes,
        ))
    return TopologyPartition(
        shards=count,
        assignment=dict(assignment),
        local=tuple(tuple(specs) for specs in local),
        cuts=tuple(cuts),
    )
