"""The video disc jockey console (paper section 2.2).

"several other test applications have been implemented including an
audiovisual telephone and a video disc jockey console."

A VDJ mixes material from several stored video servers into one
orchestrated play-out: a persistent *programme* audio bed plus a video
"deck" that the operator cuts between live.  Deck switching uses
Orch.Add / Orch.Remove (section 6.2.4): the outgoing deck's VC is
removed from the group (it keeps flowing, unregulated, like a preview
monitor) and the incoming deck's VC is added under regulation, joining
at the programme's current media position.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.transport.addresses import TransportAddress
from repro.ansa.stream import AudioQoS, Stream, VideoQoS
from repro.media.encodings import audio_pcm, video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.orchestration.hlo import OrchestrationSession
from repro.orchestration.policy import OrchestrationPolicy
from repro.apps.testbed import Testbed


class Deck:
    """One video source a VDJ can cut to."""

    def __init__(self, name: str, stream: Stream,
                 source: StoredMediaSource, sink: PlayoutSink):
        self.name = name
        self.stream = stream
        self.source = source
        self.sink = sink
        self.on_air = False


class VideoDiscJockey:
    """A mixing console over orchestrated streams."""

    def __init__(
        self,
        bed: Testbed,
        console: str,
        audio_server: str,
        deck_servers: List[str],
        video: Optional[VideoQoS] = None,
        audio: Optional[AudioQoS] = None,
        base_tsap: int = 50,
    ):
        if not deck_servers:
            raise ValueError("a VDJ needs at least one deck")
        self.bed = bed
        self.console = console
        self.audio_server = audio_server
        self.deck_servers = deck_servers
        self.video_qos = video or VideoQoS.of(fps=25.0, compression_ratio=80.0)
        self.audio_qos = audio or AudioQoS.telephone()
        self.base_tsap = base_tsap
        self.decks: Dict[str, Deck] = {}
        self.audio_sink: Optional[PlayoutSink] = None
        self.session: Optional[OrchestrationSession] = None
        self.live_deck: Optional[str] = None
        self.cut_log: List[tuple] = []

    def setup(self, policy: Optional[OrchestrationPolicy] = None) -> Generator:
        """Coroutine: connect the audio bed and every deck; orchestrate
        the bed plus the first deck."""
        clock = self.bed.clock(self.console)
        audio_stream = yield from self.bed.factory.create(
            TransportAddress(self.audio_server, self.base_tsap),
            TransportAddress(self.console, self.base_tsap),
            self.audio_qos,
        )
        self.audio_stream = audio_stream
        self.audio_source = StoredMediaSource(
            self.bed.sim, audio_stream.send_endpoint, audio_pcm(8000.0, 1, 32)
        )
        self.audio_sink = PlayoutSink(
            self.bed.sim, audio_stream.recv_endpoint, 250.0, clock
        )
        for i, server in enumerate(self.deck_servers):
            tsap = self.base_tsap + 1 + i
            stream = yield from self.bed.factory.create(
                TransportAddress(server, tsap),
                TransportAddress(self.console, tsap),
                self.video_qos,
            )
            encoding = video_cbr(
                fps=self.video_qos.osdu_rate,
                frame_bytes=self.video_qos.osdu_bytes,
            )
            source = StoredMediaSource(
                self.bed.sim, stream.send_endpoint, encoding
            )
            sink = PlayoutSink(
                self.bed.sim, stream.recv_endpoint,
                self.video_qos.osdu_rate, clock,
            )
            self.decks[f"deck{i}"] = Deck(f"deck{i}", stream, source, sink)
        first = self.decks["deck0"]
        self.session = yield from self.bed.hlo.orchestrate(
            [
                self.audio_stream.spec(max_drop_per_interval=0),
                first.stream.spec(),
            ],
            policy or OrchestrationPolicy(interval_length=0.2),
        )
        first.on_air = True
        self.live_deck = "deck0"
        return self.session

    def go_live(self) -> Generator:
        """Coroutine: primed, simultaneous start of bed + first deck."""
        reply = yield from self.session.prime()
        if not reply.accept:
            return reply
        return (yield from self.session.start())

    def cut_to(self, deck_name: str) -> Generator:
        """Coroutine: cut the programme to another deck.

        The outgoing deck is Orch.Removed (it keeps flowing -- the
        operator's preview); the incoming deck is Orch.Added and joins
        regulation at the programme's current position.
        """
        if deck_name not in self.decks:
            raise ValueError(f"unknown deck {deck_name!r}")
        if deck_name == self.live_deck:
            return None
        incoming = self.decks[deck_name]
        outgoing = self.decks[self.live_deck]
        reply = yield from self.session.remove(outgoing.stream.vc_id)
        if not reply.accept:
            return reply
        outgoing.on_air = False
        reply = yield from self.session.add(incoming.stream.spec())
        if reply.accept:
            incoming.on_air = True
            self.live_deck = deck_name
            self.cut_log.append(
                (self.bed.sim.now, outgoing.name, incoming.name)
            )
        return reply

    def programme_position(self) -> float:
        """The audio bed's presented media time (the house clock)."""
        return self.audio_sink.last_media_time() if self.audio_sink else 0.0
