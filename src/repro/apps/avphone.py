"""The audiovisual telephone (paper section 2.2).

Two workstations, each sending live voice (and optionally video) to
the other.  Full duplex is deliberately built as **two simplex VCs**
-- the paper's argument in section 3.1: directions can carry different
QoS, and resources are reserved per direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.transport.addresses import TransportAddress
from repro.ansa.stream import AudioQoS, Stream, VideoQoS
from repro.media.encodings import audio_pcm, video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import LiveSource
from repro.apps.testbed import Testbed


@dataclass
class _Leg:
    """One simplex direction of the call."""

    stream: Stream
    source: LiveSource
    sink: PlayoutSink


class AVPhoneCall:
    """A two-party call built from simplex streams."""

    def __init__(
        self,
        bed: Testbed,
        party_a: str,
        party_b: str,
        audio: Optional[AudioQoS] = None,
        video: Optional[VideoQoS] = None,
        base_tsap: int = 40,
    ):
        self.bed = bed
        self.party_a = party_a
        self.party_b = party_b
        self.audio_qos = audio or AudioQoS.telephone()
        self.video_qos = video
        self.base_tsap = base_tsap
        self.legs: List[_Leg] = []
        self.connected = False

    def setup(self) -> Generator:
        """Coroutine: establish all simplex legs and start capture."""
        tsap = self.base_tsap
        directions = [(self.party_a, self.party_b), (self.party_b, self.party_a)]
        media = [("audio", self.audio_qos)]
        if self.video_qos is not None:
            media.append(("video", self.video_qos))
        for kind, qos in media:
            for caller, callee in directions:
                stream = yield from self.bed.factory.create(
                    TransportAddress(caller, tsap),
                    TransportAddress(callee, tsap + 1),
                    qos,
                )
                tsap += 2
                if kind == "audio":
                    encoding = audio_pcm(
                        sample_rate=qos.sample_rate,
                        bytes_per_sample=qos.bytes_per_sample,
                        samples_per_osdu=int(qos.osdu_bytes / qos.bytes_per_sample),
                    )
                else:
                    encoding = video_cbr(
                        fps=qos.osdu_rate, frame_bytes=qos.osdu_bytes
                    )
                source = LiveSource(
                    self.bed.sim,
                    stream.send_endpoint,
                    encoding,
                    clock=self.bed.clock(caller),
                    rng=self.bed.rng.stream(f"avphone:{stream.vc_id}"),
                )
                sink = PlayoutSink(
                    self.bed.sim,
                    stream.recv_endpoint,
                    osdu_rate=qos.osdu_rate,
                    clock=self.bed.clock(callee),
                    mode="gated",
                )
                source.switch_on()
                self.legs.append(_Leg(stream, source, sink))
        self.connected = True
        return True

    def hang_up(self) -> None:
        for leg in self.legs:
            leg.source.switch_off()
            leg.stream.close()
        self.connected = False

    def mouth_to_ear_delays(self) -> List[float]:
        """Per-leg mean delay from capture to presentation, seconds.

        Interactive voice wants this under ~150 ms (the paper's
        "stringent delay constraints derived from human perceptual
        thresholds", section 3.2).
        """
        delays = []
        for leg in self.legs:
            samples = [
                record.delivered_at - record.created_at
                for record in leg.sink.records
                if record.created_at is not None
            ]
            if samples:
                delays.append(sum(samples) / len(samples))
        return delays
