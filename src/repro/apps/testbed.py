"""One-stop construction of the full Lancaster-style stack.

Mirrors Figure 1: network emulator at the bottom, transport entities
above it, LLO instances beside the transport, the HLO and the
object-based platform (trader + REX) on top.

The construction logic now lives in :mod:`repro.core.runtime`;
``Testbed`` is the historical name kept for existing call sites and is
simply the :class:`~repro.core.runtime.Stack` builder.
"""

from __future__ import annotations

from repro.core.runtime import HostBuilder, Runtime, Stack


class Testbed(Stack):
    """Builder and container for a complete experiment environment.

    Usage::

        bed = Testbed(seed=1)
        bed.host("server", clock_skew_ppm=120)
        bed.host("client")
        bed.link("server", "client", bandwidth_bps=10e6, prop_delay=0.004)
        bed.up()                      # instantiate all layers
        ... bed.sim, bed.entities, bed.hlo, bed.factory ...
    """

    #: Not a pytest test class despite the name.
    __test__ = False


__all__ = ["HostBuilder", "Runtime", "Stack", "Testbed"]
