"""One-stop construction of the full Lancaster-style stack.

Mirrors Figure 1: network emulator at the bottom, transport entities
above it, LLO instances beside the transport, the HLO and the
object-based platform (trader + REX) on top.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.random import RandomStreams
from repro.sim.scheduler import Simulator
from repro.netsim.link import JitterModel, Link, LossModel
from repro.netsim.reservation import ReservationManager
from repro.netsim.topology import Network
from repro.transport.entity import TransportEntity
from repro.transport.service import build_transport
from repro.orchestration.hlo import HighLevelOrchestrator
from repro.orchestration.llo import LLOInstance, build_llos
from repro.ansa.rex import RexRPC
from repro.ansa.stream import StreamFactory
from repro.ansa.trader import Trader


class Testbed:
    """Builder and container for a complete experiment environment.

    Usage::

        bed = Testbed(seed=1)
        bed.host("server", clock_skew_ppm=120)
        bed.host("client")
        bed.link("server", "client", bandwidth_bps=10e6, prop_delay=0.004)
        bed.up()                      # instantiate all layers
        ... bed.sim, bed.entities, bed.hlo, bed.factory ...
    """

    #: Not a pytest test class despite the name.
    __test__ = False

    def __init__(self, seed: int = 0, sample_period: float = 1.0,
                 gap_timeout: float = 0.05, reservable_fraction: float = 0.9):
        self.sim = Simulator()
        self.rng = RandomStreams(seed)
        self.network = Network(self.sim, self.rng)
        self.sample_period = sample_period
        self.gap_timeout = gap_timeout
        self.reservable_fraction = reservable_fraction
        self.reservations: Optional[ReservationManager] = None
        self.entities: Dict[str, TransportEntity] = {}
        self.llos: Dict[str, LLOInstance] = {}
        self.hlo: Optional[HighLevelOrchestrator] = None
        self.trader: Optional[Trader] = None
        self.rpc: Optional[RexRPC] = None
        self.factory: Optional[StreamFactory] = None
        self._up = False

    # -- topology ----------------------------------------------------------

    def host(self, name: str, clock_skew_ppm: float = 0.0):
        """Add an end-system before :meth:`up`."""
        self._check_down()
        return self.network.add_host(name, clock_skew_ppm=clock_skew_ppm)

    def router(self, name: str):
        self._check_down()
        return self.network.add_router(name)

    def link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = 10e6,
        prop_delay: float = 0.002,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        bidirectional: bool = True,
    ) -> Tuple[Link, Optional[Link]]:
        self._check_down()
        return self.network.add_link(
            a, b, bandwidth_bps, prop_delay=prop_delay, jitter=jitter,
            loss=loss, ber=ber, buffer_bytes=buffer_bytes,
            bidirectional=bidirectional,
        )

    def _check_down(self) -> None:
        if self._up:
            raise RuntimeError("topology is frozen once the stack is up")

    # -- stack -----------------------------------------------------------------

    def up(self, max_orch_sessions: int = 8) -> "Testbed":
        """Instantiate transport, orchestration and platform layers."""
        if self._up:
            return self
        self._up = True
        self.reservations = ReservationManager(
            self.network, reservable_fraction=self.reservable_fraction
        )
        self.entities = build_transport(
            self.sim,
            self.network,
            self.reservations,
            sample_period=self.sample_period,
            gap_timeout=self.gap_timeout,
        )
        self.llos = build_llos(
            self.sim, self.network, self.entities,
            max_sessions=max_orch_sessions,
        )
        self.hlo = HighLevelOrchestrator(self.sim, self.llos)
        self.trader = Trader()
        self.rpc = RexRPC(self.sim, self.network, self.trader)
        self.factory = StreamFactory(self.sim, self.entities)
        return self

    # -- conveniences ------------------------------------------------------------

    def run(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def spawn(self, gen, name: Optional[str] = None):
        return self.sim.spawn(gen, name=name)

    @staticmethod
    def star(
        seed: int = 0,
        leaves: int = 3,
        bandwidth_bps: float = 20e6,
        prop_delay: float = 0.003,
        jitter: Optional[JitterModel] = None,
        clock_skew_ppm: float = 100.0,
        centre_name: str = "hub",
    ) -> "Testbed":
        """A hub-and-spoke topology: ``leaf0..leafN`` around a router.

        Leaf clocks drift at alternating ±``clock_skew_ppm`` so that
        drift experiments have genuine divergence out of the box.
        """
        bed = Testbed(seed=seed)
        bed.router(centre_name)
        for i in range(leaves):
            skew = clock_skew_ppm if i % 2 == 0 else -clock_skew_ppm
            bed.host(f"leaf{i}", clock_skew_ppm=skew * (1 + i / 10))
            bed.link(
                f"leaf{i}", centre_name, bandwidth_bps,
                prop_delay=prop_delay, jitter=jitter,
            )
        return bed
