"""Caption/video association (paper section 3.6).

"Another example arises where it is required to associate captions
from a text file with an on-going video play-out."  Two mechanisms
from the paper are combined:

- *continuous synchronisation*: the caption stream is orchestrated
  with the video at its (much lower) nominal rate;
- *event-driven synchronisation* (section 6.3.4): scene-change events
  are stamped into the video OSDUs' event fields by the source and
  surfaced through ``Orch.Event`` without the application having to
  examine every frame.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.transport.addresses import TransportAddress
from repro.ansa.stream import Stream, TextQoS, VideoQoS
from repro.media.encodings import CBREncoding, video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.orchestration.hlo import OrchestrationSession
from repro.orchestration.policy import OrchestrationPolicy
from repro.orchestration.primitives import OrchEventIndication
from repro.apps.testbed import Testbed

#: Event field value stamped on scene-change frames.
SCENE_CHANGE_EVENT = 0xC0DE


class CaptionedPlayout:
    """Video from one server plus timed captions from another."""

    def __init__(
        self,
        bed: Testbed,
        video_server: str,
        caption_server: str,
        viewer: str,
        video: Optional[VideoQoS] = None,
        captions: Optional[TextQoS] = None,
        scene_changes: Optional[List[int]] = None,
        film_seconds: float = 600.0,
        base_tsap: int = 30,
    ):
        self.bed = bed
        self.video_server = video_server
        self.caption_server = caption_server
        self.viewer = viewer
        self.video_qos = video or VideoQoS.of(fps=25.0)
        self.caption_qos = captions or TextQoS.captions()
        self.scene_changes = scene_changes or []
        self.film_seconds = film_seconds
        self.base_tsap = base_tsap
        self.video_stream: Optional[Stream] = None
        self.caption_stream: Optional[Stream] = None
        self.video_sink: Optional[PlayoutSink] = None
        self.caption_sink: Optional[PlayoutSink] = None
        self.session: Optional[OrchestrationSession] = None
        self.scene_events: List[Tuple[float, int]] = []

    def setup(self, policy: Optional[OrchestrationPolicy] = None) -> Generator:
        """Coroutine: connect both streams and orchestrate at the viewer."""
        self.video_stream = yield from self.bed.factory.create(
            TransportAddress(self.video_server, self.base_tsap),
            TransportAddress(self.viewer, self.base_tsap),
            self.video_qos,
        )
        self.caption_stream = yield from self.bed.factory.create(
            TransportAddress(self.caption_server, self.base_tsap + 1),
            TransportAddress(self.viewer, self.base_tsap + 1),
            self.caption_qos,
        )
        video_encoding = video_cbr(
            fps=self.video_qos.osdu_rate, frame_bytes=self.video_qos.osdu_bytes
        )
        caption_encoding = CBREncoding(
            "captions", self.caption_qos.osdu_rate, self.caption_qos.osdu_bytes
        )
        event_marks: Dict[int, int] = {
            frame: SCENE_CHANGE_EVENT for frame in self.scene_changes
        }
        self.video_source = StoredMediaSource(
            self.bed.sim,
            self.video_stream.send_endpoint,
            video_encoding,
            total_osdus=int(self.film_seconds * video_encoding.osdu_rate),
            event_marks=event_marks,
        )
        self.caption_source = StoredMediaSource(
            self.bed.sim,
            self.caption_stream.send_endpoint,
            caption_encoding,
            total_osdus=int(self.film_seconds * caption_encoding.osdu_rate),
        )
        self.video_sink = PlayoutSink(
            self.bed.sim,
            self.video_stream.recv_endpoint,
            osdu_rate=video_encoding.osdu_rate,
            clock=self.bed.clock(self.viewer),
        )
        self.caption_sink = PlayoutSink(
            self.bed.sim,
            self.caption_stream.recv_endpoint,
            osdu_rate=caption_encoding.osdu_rate,
            clock=self.bed.clock(self.viewer),
        )
        specs = [
            self.video_stream.spec(),
            self.caption_stream.spec(max_drop_per_interval=0),  # no caption loss
        ]
        self.session = yield from self.bed.hlo.orchestrate(
            specs, policy or OrchestrationPolicy(interval_length=0.2)
        )
        self.session.register_event(
            self.video_stream.vc_id, SCENE_CHANGE_EVENT, self._on_scene_change
        )
        return self.session

    def _on_scene_change(self, indication: OrchEventIndication) -> None:
        self.scene_events.append((indication.matched_at, indication.osdu_seq))

    def play(self) -> Generator:
        reply = yield from self.session.prime()
        if not reply.accept:
            return reply
        return (yield from self.session.start())

    def caption_alignment_error(self) -> float:
        """Worst observed caption-vs-video media-time misalignment."""
        if not self.video_sink.records or not self.caption_sink.records:
            return float("inf")
        worst = 0.0
        for record in self.caption_sink.records:
            video_pos = self.video_sink.media_position_at(record.delivered_at)
            worst = max(worst, abs(video_pos - record.media_time))
        return worst
