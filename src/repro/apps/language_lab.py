"""The language laboratory scenario (paper section 3.6).

"Separate audio tracks in different languages are stored on a single
server but are to be distributed to different workstations in a
real-time interactive language lesson."

All VCs share the *server* as their common node, so the HLO selects it
as the orchestrating node -- the source-common case of Figure 5 (the
lip-sync film case is sink-common).  The lesson requires every
workstation to hear the same sentence at the same moment, i.e. bounded
skew across sinks on *different* machines.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.transport.addresses import TransportAddress
from repro.ansa.stream import AudioQoS, Stream
from repro.media.encodings import audio_pcm
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.orchestration.hlo import OrchestrationSession
from repro.orchestration.policy import OrchestrationPolicy
from repro.apps.testbed import Testbed


class LanguageLab:
    """One lesson: N stored audio tracks fanned out to N workstations."""

    def __init__(
        self,
        bed: Testbed,
        server: str,
        workstations: List[str],
        audio: Optional[AudioQoS] = None,
        lesson_seconds: float = 600.0,
        base_tsap: int = 20,
    ):
        if not workstations:
            raise ValueError("a lesson needs at least one workstation")
        self.bed = bed
        self.server = server
        self.workstations = workstations
        self.audio_qos = audio or AudioQoS.telephone()
        self.lesson_seconds = lesson_seconds
        self.base_tsap = base_tsap
        self.streams: List[Stream] = []
        self.sources: List[StoredMediaSource] = []
        self.sinks: List[PlayoutSink] = []
        self.session: Optional[OrchestrationSession] = None

    def setup(self, policy: Optional[OrchestrationPolicy] = None) -> Generator:
        """Coroutine: connect every track, orchestrate at the server."""
        encoding = audio_pcm(
            sample_rate=self.audio_qos.sample_rate,
            bytes_per_sample=self.audio_qos.bytes_per_sample,
            samples_per_osdu=int(
                self.audio_qos.osdu_bytes / self.audio_qos.bytes_per_sample
            ),
        )
        total = int(self.lesson_seconds * encoding.osdu_rate)
        for i, workstation in enumerate(self.workstations):
            stream = yield from self.bed.factory.create(
                TransportAddress(self.server, self.base_tsap + i),
                TransportAddress(workstation, self.base_tsap),
                self.audio_qos,
            )
            self.streams.append(stream)
            self.sources.append(
                StoredMediaSource(
                    self.bed.sim, stream.send_endpoint, encoding,
                    total_osdus=total,
                    rng=self.bed.rng.stream(f"lab-track-{i}"),
                )
            )
            self.sinks.append(
                PlayoutSink(
                    self.bed.sim,
                    stream.recv_endpoint,
                    osdu_rate=encoding.osdu_rate,
                    clock=self.bed.clock(workstation),
                    mode="gated",
                )
            )
        # Voice is loss-intolerant: drop budget 0 on every track.
        specs = [s.spec(max_drop_per_interval=0) for s in self.streams]
        self.session = yield from self.bed.hlo.orchestrate(
            specs, policy or OrchestrationPolicy(interval_length=0.25)
        )
        return self.session

    def begin_lesson(self) -> Generator:
        """Coroutine: primed, simultaneous start of all tracks."""
        reply = yield from self.session.prime()
        if not reply.accept:
            return reply
        return (yield from self.session.start())

    def pause_lesson(self) -> Generator:
        return (yield from self.session.stop())

    def seek_all(self, media_time: float) -> None:
        """Move every track to ``media_time`` (used while paused)."""
        for source in self.sources:
            source.seek(media_time)

    def resume_from(self, media_time: float) -> Generator:
        """Coroutine: the stop/seek/re-prime/start sequence of §6.2.1."""
        yield from self.pause_lesson()
        self.seek_all(media_time)
        reply = yield from self.session.prime()
        if not reply.accept:
            return reply
        return (yield from self.session.start())

    def first_presented_after(self, t: float) -> List[float]:
        """Per-workstation time of first unit presented after ``t``."""
        firsts = []
        for sink in self.sinks:
            times = [r.delivered_at for r in sink.records if r.delivered_at >= t]
            firsts.append(min(times) if times else float("inf"))
        return firsts
