"""Demonstration applications (paper section 2.2).

"We have built a number of applications which run on this platform.
The largest is a microscope controller ... In addition ... an
audiovisual telephone and a video disc jockey console."  Plus the two
motivating orchestration scenarios of section 3.6: the language
laboratory and caption/video association.

:class:`Testbed` assembles the full stack (simulator, network,
transport entities, LLOs, HLO, trader, RPC, stream factory) and is the
entry point examples, tests and benchmarks share.
"""

from repro.apps.testbed import Testbed
from repro.apps.microscope import MicroscopeClient, MicroscopeServer
from repro.apps.avphone import AVPhoneCall
from repro.apps.language_lab import LanguageLab
from repro.apps.captions import CaptionedPlayout
from repro.apps.vdj import VideoDiscJockey

__all__ = [
    "AVPhoneCall",
    "CaptionedPlayout",
    "LanguageLab",
    "MicroscopeClient",
    "MicroscopeServer",
    "Testbed",
    "VideoDiscJockey",
]
