"""The microscope controller application (paper section 2.2).

"This provides groups of scientists with remote access to any one of a
number of electron or optical microscopes located on a network.  Each
microscope can send its video output to a number of user
workstations."

Control is by invocation on the microscope's ADT interface; video is a
live-source Stream.  Attaching a viewer uses the transport's *remote
connect* facility (section 3.5): the client (initiator) asks for a VC
between the microscope's camera TSAP (source) and the viewer
workstation's display TSAP (sink) -- three distinct addresses, exactly
Figure 2.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.transport.addresses import TransportAddress
from repro.transport.primitives import (
    TConnectConfirm,
    TConnectIndication,
    TConnectRequest,
    TConnectResponse,
    TDisconnectIndication,
)
from repro.transport.profiles import ClassOfService, ProtocolProfile
from repro.ansa.interface import ServiceInterface
from repro.ansa.stream import VideoQoS
from repro.media.encodings import video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import LiveSource
from repro.apps.testbed import Testbed

#: TSAP the microscope's camera listens on.
CAMERA_TSAP = 70


class MicroscopeServer:
    """One microscope: an ADT control interface plus a camera source."""

    def __init__(self, bed: Testbed, node: str, name: str = "microscope",
                 video: Optional[VideoQoS] = None):
        self.bed = bed
        self.node = node
        self.name = name
        self.video_qos = video or VideoQoS.of(fps=25.0)
        self.magnification = 100
        self.specimen = "none"
        self.lamp_on = False
        self.sources: Dict[str, LiveSource] = {}
        # Control interface.
        self.interface = ServiceInterface(node, "Microscope")
        self.interface.export("set_magnification", self._set_magnification)
        self.interface.export("select_specimen", self._select_specimen)
        self.interface.export("lamp", self._lamp)
        self.interface.export("status", self._status)
        bed.trader.export(name, self.interface)
        # Camera transport attachment: accept viewer connects and start
        # a live capture per accepted VC.
        entity = bed.entities[node]
        self.binding = entity.bind(CAMERA_TSAP)
        bed.sim.spawn(self._camera_acceptor(), name=f"microscope:{name}")

    # -- control operations --------------------------------------------------

    def _set_magnification(self, value: int) -> int:
        if value <= 0:
            raise ValueError("magnification must be positive")
        self.magnification = value
        return self.magnification

    def _select_specimen(self, specimen: str) -> str:
        self.specimen = specimen
        return self.specimen

    def _lamp(self, on: bool) -> bool:
        self.lamp_on = on
        return self.lamp_on

    def _status(self) -> dict:
        return {
            "magnification": self.magnification,
            "specimen": self.specimen,
            "lamp": self.lamp_on,
            "viewers": len(self.sources),
        }

    # -- camera side ------------------------------------------------------------

    def _camera_acceptor(self):
        entity = self.bed.entities[self.node]
        while True:
            primitive = yield self.binding.next_primitive()
            if isinstance(primitive, TConnectIndication):
                entity.request(
                    TConnectResponse(
                        initiator=primitive.initiator,
                        src=primitive.src,
                        dst=primitive.dst,
                        protocol=primitive.protocol,
                        class_of_service=primitive.class_of_service,
                        qos=primitive.qos,
                        vc_id=primitive.vc_id,
                    )
                )
            elif isinstance(primitive, TConnectConfirm):
                endpoint = self.binding.endpoints.get(primitive.vc_id)
                if endpoint is None:
                    continue
                encoding = video_cbr(
                    fps=self.video_qos.osdu_rate,
                    frame_bytes=self.video_qos.osdu_bytes,
                )
                source = LiveSource(
                    self.bed.sim,
                    endpoint,
                    encoding,
                    clock=self.bed.clock(self.node),
                    rng=self.bed.rng.stream(f"camera:{primitive.vc_id}"),
                )
                source.switch_on()
                self.sources[primitive.vc_id] = source
            elif isinstance(primitive, TDisconnectIndication):
                source = self.sources.pop(primitive.vc_id, None)
                if source is not None:
                    source.switch_off()


class MicroscopeClient:
    """A scientist's workstation: control invocations + a video viewer."""

    def __init__(self, bed: Testbed, node: str, display_tsap: int = 80):
        self.bed = bed
        self.node = node
        self.display_tsap = display_tsap
        self.sink: Optional[PlayoutSink] = None
        self.vc_id: Optional[str] = None
        entity = bed.entities[node]
        self.control_binding = entity.bind(display_tsap + 100)
        self.display_binding = entity.bind(display_tsap)

    def invoke(self, microscope: str, operation: str, *args,
               deadline: float = 0.5) -> Generator:
        """Coroutine: delay-bounded control invocation."""
        ref = self.bed.trader.import_(microscope)
        return (
            yield from self.bed.rpc.invoke(
                self.node, ref, operation, *args, deadline=deadline
            )
        )

    def attach_viewer(self, server: MicroscopeServer) -> Generator:
        """Coroutine: remote-connect the camera to this display.

        The client is the *initiator*; the microscope's camera TSAP is
        the *source*; this workstation's display TSAP is the *sink* --
        three distinct addresses (Figure 2).
        """
        entity = self.bed.entities[self.node]
        vc_id = entity.new_vc_id()
        request = TConnectRequest(
            initiator=self.control_binding.address,
            src=TransportAddress(server.node, CAMERA_TSAP),
            dst=TransportAddress(self.node, self.display_tsap),
            protocol=ProtocolProfile.CM_RATE_BASED,
            class_of_service=ClassOfService.detect_and_indicate(),
            qos=server.video_qos.to_transport_qos(),
            vc_id=vc_id,
        )
        # Auto-accept at the display TSAP.
        self.bed.sim.spawn(
            self._display_acceptor(), name=f"viewer:{self.node}"
        )
        entity.request(request)
        while True:
            primitive = yield self.control_binding.next_primitive()
            if isinstance(primitive, TConnectConfirm) and primitive.vc_id == vc_id:
                self.vc_id = vc_id
                recv_endpoint = self.bed.entities[self.node].endpoint_for(vc_id)
                self.sink = PlayoutSink(
                    self.bed.sim,
                    recv_endpoint,
                    osdu_rate=server.video_qos.osdu_rate,
                    clock=self.bed.clock(self.node),
                    mode="gated",
                )
                return True
            if (
                isinstance(primitive, TDisconnectIndication)
                and primitive.vc_id == vc_id
            ):
                return False

    def _display_acceptor(self):
        entity = self.bed.entities[self.node]
        while True:
            primitive = yield self.display_binding.next_primitive()
            if isinstance(primitive, TConnectIndication):
                entity.request(
                    TConnectResponse(
                        initiator=primitive.initiator,
                        src=primitive.src,
                        dst=primitive.dst,
                        protocol=primitive.protocol,
                        class_of_service=primitive.class_of_service,
                        qos=primitive.qos,
                        vc_id=primitive.vc_id,
                    )
                )

    def frames_received(self) -> int:
        return self.sink.presented if self.sink is not None else 0
