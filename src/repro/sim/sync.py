"""Process synchronisation primitives with blocking-time accounting.

The paper's data-transfer interface (section 3.7) is built on shared
circular buffers guarded by semaphores, and makes a point of the fact
that *"the time spent blocking by both the application and the transport
entity can be measured by monitoring the state of the synchronisation
semaphores"*; those statistics feed the Orch.Regulate.indication report
(section 6.3.1.2).  :class:`TimedSemaphore` implements exactly that:
every acquire is tagged with a role label and the total time each role
spent blocked is accumulated.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.obs.registry import SpanAccumulator
from repro.sim.scheduler import Event, SimulationError, Simulator, Waitable


class Semaphore:
    """A counting semaphore for simulation processes.

    ``yield sem.acquire()`` blocks until a unit is available;
    :meth:`release` wakes the longest-waiting acquirer (FIFO).
    """

    def __init__(self, sim: Simulator, value: int = 1):
        if value < 0:
            raise SimulationError(f"negative semaphore value {value}")
        self.sim = sim
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Waitable:
        """Return a waitable that fires when a unit has been granted."""
        ev = Event(self.sim)
        if self._value > 0 and not self._waiters:
            self._value -= 1
            ev.set(None)
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True when a unit was taken."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().set(None)
        else:
            self._value += 1


class TimedSemaphore(Semaphore):
    """Semaphore that accumulates per-role blocking time.

    The orchestration service reads :meth:`blocked_time` to attribute
    regulation failures to the application or the protocol (paper
    section 6.3.1.2).  Roles are arbitrary strings, conventionally
    ``"application"`` and ``"protocol"``.
    """

    def __init__(self, sim: Simulator, value: int = 1):
        super().__init__(sim, value)
        # All per-role accounting lives in one windowed accumulator
        # (repro.obs): open waits are re-based by reset_stats() and
        # in-progress time is included in blocked_time(), exactly the
        # sampling semantics section 6.3.1.2 needs.
        self._waits = SpanAccumulator("semaphore.blocked", self._now)

    def _now(self) -> float:
        return self.sim.now

    def acquire(self, role: str = "unknown") -> Waitable:  # type: ignore[override]
        token = self._waits.begin(role)
        inner = super().acquire()
        outer = Event(self.sim)

        def on_grant(_value: Any) -> None:
            self._waits.end(token)
            outer.set(None)

        inner._await(on_grant)
        return outer

    def blocked_time(self, role: str) -> float:
        """Total virtual seconds ``role`` has spent blocked so far.

        Includes waits still in progress -- the orchestrator samples at
        interval boundaries while threads may be parked.
        """
        return self._waits.total(role)

    def acquire_count(self, role: str) -> int:
        return self._waits.count(role)

    def reset_stats(self) -> None:
        """Zero the accumulated statistics (used at interval boundaries).

        In-progress waits restart their accounting from now.
        """
        self._waits.reset()


class QueueFull(Exception):
    """Raised by :meth:`Queue.put_nowait` on a full bounded queue."""


class Queue:
    """A FIFO queue between simulation processes.

    ``capacity=None`` makes the queue unbounded.  ``yield q.get()``
    blocks until an item is available; ``yield q.put(item)`` blocks while
    the queue is full.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"queue capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Waitable:
        """Waitable put; fires once the item is enqueued."""
        ev = Event(self.sim)
        if not self.full:
            self._enqueue(item)
            ev.set(None)
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: Any) -> None:
        if self.full:
            raise QueueFull()
        self._enqueue(item)

    def _enqueue(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().set(item)
        else:
            self._items.append(item)

    def get(self) -> Waitable:
        """Waitable get; fires with the dequeued item."""
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            ev.set(item)
        else:
            self._getters.append(ev)
        return ev

    def get_nowait(self) -> Any:
        if not self._items:
            raise IndexError("get_nowait on empty queue")
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and not self.full:
            ev, item = self._putters.popleft()
            self._enqueue(item)
            ev.set(None)

    def clear(self) -> int:
        """Discard all queued items; returns how many were dropped."""
        dropped = len(self._items)
        self._items.clear()
        while self._putters and not self.full:
            self._admit_putter()
        return dropped
