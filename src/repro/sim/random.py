"""Named, independently seeded random streams.

Every stochastic element of the simulation (link jitter, packet loss,
bit errors, VBR frame sizes, ...) draws from its own named stream so
that changing one element's consumption pattern does not perturb the
others.  This is the standard variance-reduction discipline for
simulation studies and is what makes the benchmark sweeps comparable
across configurations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of deterministic :class:`random.Random` streams.

    Streams are identified by name; the same ``(seed, name)`` pair always
    yields the same sequence, independent of creation order.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive an independent child factory (for sub-components)."""
        digest = hashlib.sha256(f"{self.seed}/fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
