"""Per-node clocks with rate skew and offset.

Section 3.6 of the paper argues that orchestrated connections *"will
eventually drift out of synchronisation ... due to the inevitable
discrepancies between remote clock rates"*.  Reproducing that argument
needs node clocks that genuinely diverge from the (omniscient) simulator
clock.  :class:`NodeClock` maps virtual time to a node-local time with a
constant rate error expressed in parts per million, matching the quartz
oscillator tolerances of real workstations (typically 1-100 ppm).
"""

from __future__ import annotations

from repro.sim.scheduler import SimulationError, Simulator


class NodeClock:
    """A drifting local clock for one end-system.

    ``local_time = offset + (1 + skew_ppm * 1e-6) * sim_time``

    The orchestrating node's clock is the datum for continuous
    synchronisation (paper section 5, footnote); other nodes read their
    own drifting clocks, so targets expressed in the datum's timescale
    accumulate error exactly as the paper describes.
    """

    def __init__(self, sim: Simulator, skew_ppm: float = 0.0, offset: float = 0.0):
        self.sim = sim
        self.skew_ppm = skew_ppm
        self.offset = offset

    @property
    def rate(self) -> float:
        """Local seconds per simulator second."""
        return 1.0 + self.skew_ppm * 1e-6

    def now(self) -> float:
        """Current node-local time."""
        return self.offset + self.rate * self.sim.now

    def to_local(self, sim_time: float) -> float:
        """Convert a simulator timestamp to this node's local time."""
        return self.offset + self.rate * sim_time

    def to_sim(self, local_time: float) -> float:
        """Convert a node-local timestamp to simulator time."""
        return (local_time - self.offset) / self.rate

    def local_duration(self, sim_duration: float) -> float:
        """How long ``sim_duration`` real seconds appear on this clock."""
        return self.rate * sim_duration

    def sim_duration(self, local_duration: float) -> float:
        """Real (simulator) seconds for a local-clock duration."""
        return local_duration / self.rate

    def adjust(self, offset_delta: float) -> None:
        """Step the clock by ``offset_delta`` local seconds.

        Used by the clock-synchronisation protocols to slew a slave clock
        toward the orchestrating node's datum.
        """
        self.offset += offset_delta

    def set_skew_ppm(self, skew_ppm: float) -> None:
        """Change the rate error, preserving continuity of local time.

        The offset is recomputed so ``now()`` is unchanged at the instant
        of adjustment; only the future rate differs.
        """
        current_local = self.now()
        self.skew_ppm = skew_ppm
        self.offset = current_local - self.rate * self.sim.now

    def offset_from(self, other: "NodeClock") -> float:
        """Instantaneous difference ``self.now() - other.now()``."""
        if other.sim is not self.sim:
            raise SimulationError("clocks belong to different simulators")
        return self.now() - other.now()
