"""Object freelists for the per-event hot path.

A 30 Mbit/s continuous-media session pushes thousands of packets and
TPDUs per simulated second; allocating (and garbage-collecting) a fresh
dataclass instance for each one dominates the profile once the timer
wheel has taken scheduling off the critical path.  A :class:`Freelist`
recycles instances instead: ``get()`` pops a previously released object
(or returns None, telling the caller to construct one), ``put()``
parks an object for reuse.

Lifecycle discipline (see DESIGN.md for the full rules):

- Only the *owner* of an object may release it, and only once it can
  prove no other component retains a reference.  For packets that point
  is the destination :class:`~repro.netsim.node.Host` after the payload
  handler returns; for TPDUs it is the receiving transport entity after
  the protocol machine consumed the fields it keeps (never the TPDU
  object itself).
- Objects that *are* retained -- a DataTPDU parked in the sender's
  retransmit cache, a multicast copy -- are simply never pooled; their
  ``_pooled`` flag stays False and every release point ignores them.
- ``put()`` drops objects beyond ``capacity`` on the floor (the garbage
  collector handles bursts), so a freelist can never become a leak.
"""

from __future__ import annotations

from typing import Any, List

#: Default freelist depth: deep enough for every in-flight object of a
#: busy multi-VC run, small enough to be irrelevant memory-wise.
DEFAULT_CAPACITY = 4096


class Freelist:
    """A bounded LIFO free list of recyclable objects."""

    __slots__ = ("_free", "capacity")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._free: List[Any] = []
        self.capacity = capacity

    def get(self) -> Any:
        """Pop a recycled object, or None when the list is empty."""
        free = self._free
        return free.pop() if free else None

    def put(self, obj: Any) -> bool:
        """Park ``obj`` for reuse; False when dropped (list full)."""
        free = self._free
        if len(free) >= self.capacity:
            return False
        free.append(obj)
        return True

    def clear(self) -> None:
        """Discard every parked object."""
        self._free.clear()

    def __len__(self) -> int:
        return len(self._free)
