"""Event scheduler and process model for the virtual-time kernel.

The core is a **timer wheel** (calendar queue) with an overflow heap,
driven through cancellable/reschedulable handles, with generator
coroutines on top -- written from scratch so the reproduction has no
runtime dependencies beyond the standard library.

Event storage is split three ways by temporal distance:

- the **current bucket** (``_cur``): a sorted run holding the events
  of the bucket being drained, ordered by the full
  ``(when, priority, seq)`` key and consumed through an index pointer
  (``_cur_i``) -- one ``list.sort()`` per bucket load, O(1) pops, and
  same-bucket inserts from callbacks via ``bisect.insort`` over the
  unconsumed suffix.  Same-instant bursts (a cascade of co-timed
  packet arrivals) live here together and are dispatched in one batch
  without touching the rest of the structure.
- the **wheel** (``_slots``): 2048 buckets of 2**-9 s (~1.95 ms), a
  4 s horizon.  Near-future inserts and cancels are O(1): an append
  to an unsorted slot list, a bitmap bit.  This is the common case for
  continuous-media traffic (serialisation timers, propagation timers,
  pacing slots, NACK deadlines).
- the **overflow heap** (``_heap``): everything at or beyond the
  horizon, kept in a classic lazy-compacted binary heap.  As the
  cursor advances, maturing overflow events migrate into the wheel in
  amortised O(log n) -- the invariant is that every overflow entry's
  bucket is >= ``_cursor + 2048``.

The bucket width is a **power of two** so ``when * 2**9`` is exact
float arithmetic: the bucket index is a monotone function of ``when``
and bucket boundaries are exact lower bounds, which is what makes the
wheel's firing order *identical* (not just equivalent) to a global
heap ordered by ``(when, priority, seq)``.

A :class:`Process` wraps a generator.  The generator ``yield``\\ s
*waitables*; the process resumes when the waitable fires and receives the
waitable's value as the result of the ``yield`` expression::

    def sender(sim):
        yield Timeout(sim, 0.02)          # sleep 20 ms of virtual time
        value = yield some_event          # wait for an Event
        done = yield AnyOf(sim, [a, b])   # first of several

Hot paths (per-OSDU pacing, NACK deadlines, sample periods) should not
allocate a fresh :class:`Timeout` per event.  The kernel provides two
reusable primitives instead:

- :class:`Timer` -- a re-armable one-shot waitable.  A protocol loop
  owns one and yields ``timer.after(delay)`` each iteration; the single
  underlying :class:`TimerHandle` is rescheduled in place.
- :class:`PeriodicTimer` -- fires a callback every ``period`` seconds,
  re-arming one handle per tick.

Every scheduling call returns a :class:`TimerHandle` with O(1)
``cancel()`` and ``reschedule()``.  Cancelled or superseded entries are
reclaimed lazily: they are skipped when they surface, and each region
(wheel, overflow heap) is compacted in one sweep whenever more than
half of it is dead.

Reentrancy contract: callbacks run from ``run()``/``step()`` may
schedule, cancel and reschedule freely -- including operations that
trigger a compaction sweep -- and never observe a half-compacted
structure.  Two invariants make this safe: the current-bucket run
object (``_cur``) is mutated only in place, never replaced, so the
dispatch loop's alias stays valid across any callback (inserts land at
or after the index pointer, so consumed positions never shift); and
sweeps of the wheel and the overflow heap filter their containers in
place (slice assignment) and only run from scheduling calls, never
while the dispatch loop is iterating them.

Time is a float in **seconds** throughout the code base.
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort as _insort
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Region size below which dead entries are never swept: rebuilding a
#: tiny structure costs more than skipping its corpses on pop.
_COMPACT_MIN_HEAP = 128

#: Timer-wheel geometry.  The bucket width is 2**-9 s (~1.95 ms) so the
#: bucket index ``int(when * _INV_TICK)`` is exact, monotone float
#: arithmetic (multiplying by a power of two never rounds); 2048 slots
#: give a 4 s horizon that covers serialisation, propagation, pacing,
#: recovery and sample-period timers.  The width is a batching knob,
#: not a correctness knob: each bucket is drained through the
#: current-bucket heap in full ``(when, priority, seq)`` order, so
#: coarser buckets only mean more events amortise one cursor advance.
_WHEEL_BITS = 11
_SLOTS = 1 << _WHEEL_BITS
_MASK = _SLOTS - 1
_TICK = 2.0 ** -9
_INV_TICK = 2.0 ** 9
#: Per-slot occupancy masks for the big-int bitmap (set / clear).
_BIT = tuple(1 << i for i in range(_SLOTS))
_CLEAR = tuple(~(1 << i) for i in range(_SLOTS))


class TimerHandle:
    """Cancellable, reschedulable handle for one scheduled callback.

    A handle owns its callback for life and can be re-armed any number
    of times (:meth:`reschedule`), which is what makes zero-allocation
    periodic work possible.  Heap entries carry the generation counter
    at push time; cancelling or rescheduling bumps the live generation,
    so superseded entries are recognised and discarded when they
    surface at the top of the heap.
    """

    __slots__ = ("sim", "priority", "when", "_fn", "_gen", "_live", "_cancelled")

    def __init__(self, sim: "Simulator", fn: Callable[[], None], priority: int = 0):
        self.sim = sim
        self.priority = priority
        #: Absolute virtual time of the pending (or most recent) firing.
        self.when: Optional[float] = None
        self._fn = fn
        self._gen = 0
        self._live = False
        self._cancelled = False

    @property
    def scheduled(self) -> bool:
        """True while a firing is pending on the heap."""
        return self._live

    @property
    def cancelled(self) -> bool:
        """True after :meth:`cancel` (cleared by a later reschedule)."""
        return self._cancelled

    def cancel(self) -> None:
        """Retract the pending firing, if any.  O(1); idempotent."""
        self._cancelled = True
        if self._live:
            self._live = False
            self.sim._note_dead(self.when)

    def reschedule(self, when: float) -> "TimerHandle":
        """(Re-)arm the handle at absolute time ``when``.  O(log n).

        Works on idle, pending, cancelled and already-fired handles; a
        pending firing is superseded in place.
        """
        self.sim._push(self, when)
        return self

    def reschedule_after(self, delay: float) -> "TimerHandle":
        """(Re-)arm the handle ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.reschedule(self.sim._now + delay)


#: Backwards-compatible name: the pre-handle kernel called these
#: ScheduledCall; the API (cancel/cancelled) is a subset of TimerHandle.
ScheduledCall = TimerHandle


class Simulator:
    """A discrete-event simulator with a virtual clock.

    Events are ``(time, priority, seq, gen, handle)`` tuples; the
    ``seq`` counter makes ordering of simultaneous events deterministic
    (FIFO within equal time and priority, including reschedules:
    re-arming for the same instant re-enqueues behind its
    contemporaries).  Storage is a timer wheel with an overflow heap
    (see the module docstring); the total order dispatched is exactly
    the one a single global heap over the same tuples would produce.
    """

    def __init__(self) -> None:
        #: Overflow heap: events at or beyond the wheel horizon.  The
        #: name is part of the informal introspection surface (tests
        #: assert mass cancellation compacts it).
        self._heap: list[tuple[float, int, int, int, TimerHandle]] = []
        self._seq = itertools.count()
        # Bound method of the seq counter: _push runs for every event,
        # and the global next() lookup is measurable there.
        self._next_seq = self._seq.__next__
        self._now = 0.0
        self._running = False
        # Wheel state.  ``_cursor`` is the absolute bucket index being
        # drained; the wheel window is [_cursor, _wheel_end).  ``_cur``
        # holds the current bucket's events as a sorted run consumed
        # through ``_cur_i``; its list identity is stable for the life
        # of the simulator (reentrancy contract -- the dispatch loop
        # aliases it).
        self._slots: list[list] = [[] for _ in range(_SLOTS)]
        self._occ = 0
        self._cursor = 0
        self._wheel_end = _SLOTS
        self._cur: list[tuple[float, int, int, int, TimerHandle]] = []
        self._cur_i = 0
        # Entry accounting: ``pending_events`` is _count - _dead.  The
        # per-region dead counts drive the region compaction sweeps.
        self._count = 0
        self._dead = 0
        self._wheel_count = 0
        self._wheel_dead = 0
        self._heap_dead = 0
        self.process_count = 0
        #: Observability hooks.  ``trace`` is the no-op tracer until a
        #: runtime installs a real one (see ``Runtime.enable_tracing``);
        #: instrumented call sites throughout the stack guard with
        #: ``if sim.trace.enabled:`` so the disabled path costs one
        #: attribute load and branch.  The metrics registry is always
        #: live (counters are plain attribute adds).
        self.trace = NULL_TRACER
        self.metrics = MetricsRegistry(self._clock)
        #: QoS conformance auditor; None until a runtime installs one
        #: (see ``Runtime.enable_audit``).  Call sites guard with
        #: ``if sim.auditor is not None:`` -- the auditor, like the
        #: tracer, only records in memory and never schedules events.
        self.auditor = None
        #: Wall-clock span profiler; None until a runtime installs one
        #: (see ``Runtime.enable_profiling``).  Guarded the same way at
        #: each instrumented site, so disabled it costs one attribute
        #: load and a branch -- never an extra Python call.
        self.profile = None

    def _clock(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def call_at(
        self, when: float, fn: Callable[[], None], priority: int = 0
    ) -> TimerHandle:
        """Schedule ``fn()`` at absolute virtual time ``when``."""
        handle = TimerHandle(self, fn, priority)
        self._push(handle, when)
        return handle

    def call_after(
        self, delay: float, fn: Callable[[], None], priority: int = 0
    ) -> TimerHandle:
        """Schedule ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def call_soon(self, fn: Callable[[], None], priority: int = 0) -> TimerHandle:
        """Schedule ``fn()`` at the current time (after pending events)."""
        return self.call_at(self._now, fn, priority)

    def _push(self, handle: TimerHandle, when: float) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when:.9f}, now is {self._now:.9f}"
            )
        if handle._live:
            # Supersede the pending entry in place.
            handle._live = False
            self._note_dead(handle.when)
        handle._gen += 1
        handle._live = True
        handle._cancelled = False
        handle.when = when
        entry = (when, handle.priority, self._next_seq(), handle._gen, handle)
        self._count += 1
        bucket = int(when * _INV_TICK)
        if bucket <= self._cursor:
            # Current (or already-passed) bucket: sorted insert into the
            # unconsumed suffix of the run the dispatch loop is
            # draining.  ``lo=_cur_i`` keeps consumed positions stable;
            # an entry ordered before the whole suffix lands exactly at
            # the pointer, i.e. it fires next -- the same position a
            # heap push would have given it.
            _insort(self._cur, entry, self._cur_i)
        elif bucket < self._wheel_end:
            # Within the horizon: O(1) slot append + occupancy bit.
            slot_index = bucket & _MASK
            slot = self._slots[slot_index]
            if not slot:
                self._occ |= _BIT[slot_index]
            slot.append(entry)
            self._wheel_count += 1
        else:
            heap = self._heap
            _heappush(heap, entry)
            # Compaction check inlined: far-future mass scheduling
            # (ballast, long retry ladders) must keep the overflow
            # heap at most half dead.
            if self._heap_dead * 2 > len(heap) >= _COMPACT_MIN_HEAP:
                self._compact()

    # -- dead-entry reclamation --------------------------------------------

    def _note_dead(self, when: float) -> None:
        """Account one cancelled/superseded entry scheduled at ``when``.

        The entry's region is identified by its bucket: at or behind the
        cursor means the current-bucket heap (reclaimed as the dispatch
        loop drains it), inside the window means a wheel slot, beyond
        the window means the overflow heap.  The region sweeps below
        keep every region at most half dead.
        """
        self._dead += 1
        bucket = int(when * _INV_TICK)
        if bucket <= self._cursor:
            return
        if bucket < self._wheel_end:
            self._wheel_dead += 1
            if (self._wheel_dead * 2 > self._wheel_count
                    >= _COMPACT_MIN_HEAP):
                self._sweep_wheel()
        else:
            self._heap_dead += 1
            if self._heap_dead * 2 > len(self._heap) >= _COMPACT_MIN_HEAP:
                self._compact()

    def _maybe_compact(self) -> None:
        if self._heap_dead * 2 > len(self._heap) >= _COMPACT_MIN_HEAP:
            self._compact()

    def _compact(self) -> None:
        """Sweep the overflow heap's dead entries in one O(n) pass.

        In place (slice assignment): a callback running under ``run()``
        may trigger this, and nothing that iterates ``_heap`` (the
        migration loop in :meth:`_advance`) ever runs user code, so a
        half-built replacement list is never observable.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [
            entry for entry in heap
            if entry[4]._live and entry[3] == entry[4]._gen
        ]
        heapq.heapify(heap)
        removed = before - len(heap)
        self._count -= removed
        self._dead -= removed
        self._heap_dead = 0

    def _sweep_wheel(self) -> None:
        """Sweep dead entries out of every occupied wheel slot, O(window)."""
        removed = 0
        occ = self._occ
        while occ:
            slot_index = (occ & -occ).bit_length() - 1
            occ &= occ - 1
            slot = self._slots[slot_index]
            before = len(slot)
            slot[:] = [
                entry for entry in slot
                if entry[4]._live and entry[3] == entry[4]._gen
            ]
            removed += before - len(slot)
            if not slot:
                self._occ &= _CLEAR[slot_index]
        self._wheel_count -= removed
        self._count -= removed
        self._dead -= removed
        self._wheel_dead = 0

    # -- cursor advance ----------------------------------------------------

    def _advance(self, until: Optional[float]) -> bool:
        """Move the cursor to the next occupied bucket and load it.

        Returns False when there is nothing left to run, or the next
        bucket starts after ``until`` (bucket starts are exact lower
        bounds for their events, so stopping here can never skip an
        event with ``when <= until``).  Runs no user code.
        """
        cursor = self._cursor
        occ = self._occ
        target = None
        if occ:
            cursor_slot = cursor & _MASK
            m = occ >> cursor_slot
            if m:
                target = cursor + ((m & -m).bit_length() - 1)
            else:
                # Wrapped: lowest set bit is below the cursor's slot.
                lsb = (occ & -occ).bit_length() - 1
                target = cursor - cursor_slot + _SLOTS + lsb
        heap = self._heap
        if heap and (target is None or heap[0][0] < target * _TICK):
            target = int(heap[0][0] * _INV_TICK)
        if target is None:
            return False
        if until is not None and target * _TICK > until:
            return False
        self._cursor = target
        self._wheel_end = wheel_end = target + _SLOTS
        # Migrate matured overflow entries into the window.  Dead ones
        # are dropped here instead of being copied.
        if heap:
            horizon = wheel_end * _TICK
            slots = self._slots
            while heap and heap[0][0] < horizon:
                entry = _heappop(heap)
                handle = entry[4]
                if handle._live and entry[3] == handle._gen:
                    bucket = int(entry[0] * _INV_TICK)
                    slot_index = bucket & _MASK
                    slot = slots[slot_index]
                    if not slot:
                        self._occ |= _BIT[slot_index]
                    slot.append(entry)
                    self._wheel_count += 1
                else:
                    self._count -= 1
                    self._dead -= 1
                    self._heap_dead -= 1
        # Load the target bucket into the current-bucket run (fully
        # consumed by now -- _advance only runs when the dispatch loop
        # exhausted it), filtering dead entries while counting them out
        # of the wheel.  One sort per bucket replaces per-event heap
        # maintenance.
        cur = self._cur
        if cur:
            cur.clear()
        self._cur_i = 0
        slot_index = target & _MASK
        slot = self._slots[slot_index]
        if slot:
            self._occ &= _CLEAR[slot_index]
            self._wheel_count -= len(slot)
            removed = 0
            for entry in slot:
                handle = entry[4]
                if handle._live and entry[3] == handle._gen:
                    cur.append(entry)
                else:
                    removed += 1
            slot.clear()
            if removed:
                self._count -= removed
                self._dead -= removed
                self._wheel_dead -= removed
            cur.sort()
        return True

    # -- execution ---------------------------------------------------------

    def spawn(
        self, gen: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> "Process":
        """Start a new process running generator ``gen``."""
        return Process(self, gen, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until none remain or ``until`` is reached.

        Returns the virtual time at which the run stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fires earlier, so repeated ``run(until=...)`` calls
        observe a monotonic clock.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        # ``cur`` stays valid across callbacks: _advance and the sweeps
        # mutate the list in place, never rebind self._cur.  The index
        # pointer is re-read every iteration because callbacks may
        # insert into the unconsumed suffix (never before it).
        cur = self._cur
        # Hoisted: enabling profiling mid-run takes effect on the next
        # run() call; the unprofiled loop stays branch-identical.
        prof = self.profile
        try:
            while True:
                i = self._cur_i
                if i < len(cur):
                    entry = cur[i]
                    handle = entry[4]
                    if handle._live and entry[3] == handle._gen:
                        when = entry[0]
                        if until is not None and when > until:
                            break
                        self._cur_i = i + 1
                        self._count -= 1
                        self._now = when
                        handle._live = False
                        if prof is None:
                            handle._fn()
                        else:
                            _t0 = prof.clock()
                            handle._fn()
                            prof.add(
                                "scheduler.dispatch", _t0, prof.clock()
                            )
                    else:
                        self._cur_i = i + 1
                        self._count -= 1
                        self._dead -= 1
                    continue
                if not self._advance(until):
                    break
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns False when none remain."""
        cur = self._cur
        while True:
            i = self._cur_i
            if i < len(cur):
                when, _prio, _seq, gen, handle = cur[i]
                self._cur_i = i + 1
                self._count -= 1
                if not handle._live or gen != handle._gen:
                    self._dead -= 1
                    continue
                self._now = when
                handle._live = False
                handle._fn()
                return True
            if not self._advance(None):
                return False

    @property
    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events.  O(1)."""
        return self._count - self._dead

    def next_event_time(self) -> Optional[float]:
        """Conservative lower bound on the next event's fire time.

        Read-only: scans the unconsumed dispatch run, the occupancy
        bitmap and the overflow heap without mutating any of them, so it
        is safe to call between ``run(until=...)`` windows (the shard
        coordinator uses it to pick the next synchronization horizon).

        The bound is conservative in the safe direction: dead (cancelled)
        entries and bucket starts may make it *earlier* than the first
        event that actually fires, never later.  Returns ``None`` when
        nothing is scheduled.
        """
        cur = self._cur
        i = self._cur_i
        if i < len(cur):
            return cur[i][0]
        occ = self._occ
        target = None
        if occ:
            cursor_slot = self._cursor & _MASK
            m = occ >> cursor_slot
            if m:
                target = self._cursor + ((m & -m).bit_length() - 1)
            else:
                lsb = (occ & -occ).bit_length() - 1
                target = self._cursor - cursor_slot + _SLOTS + lsb
        t = target * _TICK if target is not None else None
        heap = self._heap
        if heap and (t is None or heap[0][0] < t):
            t = heap[0][0]
        return t


class Waitable:
    """Base class for things a process generator may ``yield``."""

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Arrange for ``callback(value)`` when this waitable fires.

        Returns a detach function used to cancel interest (needed by
        :class:`AnyOf` and process interruption).
        """
        raise NotImplementedError


def _noop_detach() -> None:
    return None


class Timeout(Waitable):
    """Fires once, ``delay`` seconds after creation.

    The underlying :class:`TimerHandle` is retained: when the last
    waiter detaches before the deadline (an :class:`AnyOf` losing
    branch, a process interrupt) the heap entry is reclaimed instead of
    lingering until it fires into the void.
    """

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.sim = sim
        self.delay = delay
        self.value = value
        self._fired = False
        self._callbacks: list[Callable[[Any], None]] = []
        self._when = sim.now + delay
        self._handle = sim.call_at(self._when, self._fire)

    def _fire(self) -> None:
        self._fired = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self.value)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._fired:
            self.sim.call_soon(lambda: callback(self.value))
            return _noop_detach
        if not self._handle.scheduled:
            # All previous waiters detached and the timer was reclaimed;
            # a new waiter re-arms it at the original deadline.
            self._handle.reschedule(max(self._when, self.sim.now))
        self._callbacks.append(callback)
        return lambda: self._discard(callback)

    def _discard(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            return
        if not self._callbacks and not self._fired:
            self._handle.cancel()


class Timer(Waitable):
    """A reusable one-shot timer waitable for hot loops.

    Allocate one per protocol machine and re-arm it per event::

        pace = Timer(sim)
        while True:
            yield pace.after(slot_delay)      # no allocation per slot

    At most one waiter may be attached at a time (re-yielding from the
    same process, or membership in one :class:`AnyOf`, both satisfy
    this).  Detaching -- an AnyOf loss, a process interrupt -- cancels
    the underlying handle, so no orphaned firing stays on the heap.
    """

    __slots__ = ("sim", "value", "_handle", "_callback")

    def __init__(self, sim: Simulator, priority: int = 0):
        self.sim = sim
        self.value: Any = None
        self._callback: Optional[Callable[[Any], None]] = None
        self._handle = TimerHandle(sim, self._fire, priority)

    @property
    def scheduled(self) -> bool:
        return self._handle.scheduled

    def after(self, delay: float, value: Any = None) -> "Timer":
        """Arm (or re-arm) to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        return self.at(self.sim.now + delay, value)

    def at(self, when: float, value: Any = None) -> "Timer":
        """Arm (or re-arm) to fire at absolute time ``when``."""
        self.value = value
        self._handle.reschedule(when)
        return self

    def cancel(self) -> None:
        self._handle.cancel()

    def _fire(self) -> None:
        callback, self._callback = self._callback, None
        if callback is not None:
            callback(self.value)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._callback is not None:
            raise SimulationError("Timer already has a waiter")
        if not self._handle.scheduled:
            raise SimulationError("Timer must be armed (after/at) before waiting")
        self._callback = callback
        return self._detach

    def _detach(self) -> None:
        self._callback = None
        self._handle.cancel()


class PeriodicTimer:
    """Calls ``fn`` every ``period`` seconds without per-tick allocation.

    The workhorse for rate pacing, QoS sample periods and regulation
    intervals: one :class:`TimerHandle` is re-armed per tick, replacing
    the Timeout-plus-closures-per-event idiom.  Tick times accumulate
    exactly (``start + k * period``), so boundaries do not drift.

    ``fn`` runs after the next tick is armed and may call :meth:`stop`
    or :meth:`set_period` (the latter takes effect from the following
    tick).
    """

    __slots__ = ("sim", "_period", "_fn", "_handle", "_next", "_running")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], None],
        priority: int = 0,
    ):
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self.sim = sim
        self._period = period
        self._fn = fn
        self._handle = TimerHandle(sim, self._tick, priority)
        self._next: Optional[float] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def period(self) -> float:
        return self._period

    def start(self, first_delay: Optional[float] = None) -> "PeriodicTimer":
        """Begin ticking; the first tick is ``first_delay`` (default:
        one period) from now.  No-op when already running."""
        if self._running:
            return self
        delay = self._period if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._running = True
        self._next = self.sim.now + delay
        self._handle.reschedule(self._next)
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._handle.cancel()

    def set_period(self, period: float) -> None:
        """Change the period; applies from the next re-arm."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._period = period

    def _tick(self) -> None:
        # Re-arm before running fn (so fn may stop()); goes straight to
        # the simulator's push to keep the per-tick call chain short.
        sim = self.sim
        when = self._next = self._next + self._period
        now = sim._now
        sim._push(self._handle, when if when > now else now)
        self._fn()


class Event(Waitable):
    """A one-shot level-triggered event carrying a value.

    Once :meth:`set` is called the event stays set; late waiters resume
    immediately with the same value.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._value: Any = None
        self._is_set = False
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def is_set(self) -> bool:
        return self._is_set

    @property
    def value(self) -> Any:
        if not self._is_set:
            raise SimulationError("event value read before set")
        return self._value

    def set(self, value: Any = None) -> None:
        if self._is_set:
            raise SimulationError("event set twice")
        self._is_set = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(lambda cb=cb: cb(value))

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._is_set:
            self.sim.call_soon(lambda: callback(self._value))
            return _noop_detach
        self._callbacks.append(callback)
        return lambda: self._discard(callback)

    def _discard(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass


class AnyOf(Waitable):
    """Fires when the *first* of several waitables fires.

    The resume value is ``(index, value)`` of the winner.  Losing
    branches are detached, which reclaims their timers (see
    :class:`Timeout` and :class:`Timer`).
    """

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]):
        self.sim = sim
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf of no waitables")

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        detachers: list[Callable[[], None]] = []
        done = [False]

        def detach_all() -> None:
            for detach in detachers:
                detach()

        def make_cb(index: int):
            def on_fire(value: Any) -> None:
                if done[0]:
                    return
                done[0] = True
                detach_all()
                callback((index, value))

            return on_fire

        for i, w in enumerate(self.waitables):
            detachers.append(w._await(make_cb(i)))
        return detach_all


class AllOf(Waitable):
    """Fires when *all* waitables have fired; value is the list of values."""

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]):
        self.sim = sim
        self.waitables = list(waitables)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        total = len(self.waitables)
        if total == 0:
            self.sim.call_soon(lambda: callback([]))
            return _noop_detach
        values: list[Any] = [None] * total
        remaining = [total]
        detachers: list[Callable[[], None]] = []
        cancelled = [False]

        def make_cb(index: int):
            def on_fire(value: Any) -> None:
                if cancelled[0]:
                    return
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(list(values))

            return on_fire

        for i, w in enumerate(self.waitables):
            detachers.append(w._await(make_cb(i)))

        def detach_all() -> None:
            cancelled[0] = True
            for detach in detachers:
                detach()

        return detach_all


class Process(Waitable):
    """A cooperative process driving a generator of waitables.

    A process is itself a waitable: yielding a process waits for its
    completion and resumes with the generator's return value.
    """

    def __init__(
        self, sim: Simulator, gen: Generator[Any, Any, Any], name: Optional[str] = None
    ):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = Event(sim)
        self._detach: Optional[Callable[[], None]] = None
        self._alive = True
        sim.process_count += 1
        if sim.trace.enabled:
            sim.trace.instant(
                f"spawn:{self.name}", track="sim", cat="process"
            )
        sim.call_soon(lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        return self._alive

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._detach = None
        try:
            waitable = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(waitable)

    def _throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        self._detach = None
        try:
            waitable = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it dies quietly.
            self._finish(None)
            return
        self._wait_on(waitable)

    def _wait_on(self, waitable: Any) -> None:
        if not isinstance(waitable, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {waitable!r}"
            )
        self._detach = waitable._await(self._resume)

    def _finish(self, value: Any) -> None:
        self._alive = False
        if self.sim.trace.enabled:
            self.sim.trace.instant(
                f"finish:{self.name}", track="sim", cat="process"
            )
        self.finished.set(value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self._alive:
            return
        if self._detach is not None:
            self._detach()
            self._detach = None
        self.sim.call_soon(lambda: self._throw(Interrupt(cause)))

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        return self.finished._await(callback)
