"""Event scheduler and process model for the virtual-time kernel.

The design is a handle-based event-heap simulator with generator
coroutines, written from scratch so the reproduction has no runtime
dependencies beyond the standard library.

A :class:`Process` wraps a generator.  The generator ``yield``\\ s
*waitables*; the process resumes when the waitable fires and receives the
waitable's value as the result of the ``yield`` expression::

    def sender(sim):
        yield Timeout(sim, 0.02)          # sleep 20 ms of virtual time
        value = yield some_event          # wait for an Event
        done = yield AnyOf(sim, [a, b])   # first of several

Hot paths (per-OSDU pacing, NACK deadlines, sample periods) should not
allocate a fresh :class:`Timeout` per event.  The kernel provides two
reusable primitives instead:

- :class:`Timer` -- a re-armable one-shot waitable.  A protocol loop
  owns one and yields ``timer.after(delay)`` each iteration; the single
  underlying :class:`TimerHandle` is rescheduled in place.
- :class:`PeriodicTimer` -- fires a callback every ``period`` seconds,
  re-arming one handle per tick.

Every scheduling call returns a :class:`TimerHandle` with O(1)
``cancel()`` and ``reschedule()``.  Cancelled or superseded heap entries
are reclaimed lazily: they are skipped on pop, and the heap is compacted
in one sweep whenever more than half of it is dead.

Time is a float in **seconds** throughout the code base.
"""

from __future__ import annotations

import heapq
import itertools
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Heap size below which dead entries are never swept: rebuilding a tiny
#: heap costs more than skipping its corpses on pop.
_COMPACT_MIN_HEAP = 128


class TimerHandle:
    """Cancellable, reschedulable handle for one scheduled callback.

    A handle owns its callback for life and can be re-armed any number
    of times (:meth:`reschedule`), which is what makes zero-allocation
    periodic work possible.  Heap entries carry the generation counter
    at push time; cancelling or rescheduling bumps the live generation,
    so superseded entries are recognised and discarded when they
    surface at the top of the heap.
    """

    __slots__ = ("sim", "priority", "when", "_fn", "_gen", "_live", "_cancelled")

    def __init__(self, sim: "Simulator", fn: Callable[[], None], priority: int = 0):
        self.sim = sim
        self.priority = priority
        #: Absolute virtual time of the pending (or most recent) firing.
        self.when: Optional[float] = None
        self._fn = fn
        self._gen = 0
        self._live = False
        self._cancelled = False

    @property
    def scheduled(self) -> bool:
        """True while a firing is pending on the heap."""
        return self._live

    @property
    def cancelled(self) -> bool:
        """True after :meth:`cancel` (cleared by a later reschedule)."""
        return self._cancelled

    def cancel(self) -> None:
        """Retract the pending firing, if any.  O(1); idempotent."""
        self._cancelled = True
        if self._live:
            self._live = False
            self.sim._note_dead()

    def reschedule(self, when: float) -> "TimerHandle":
        """(Re-)arm the handle at absolute time ``when``.  O(log n).

        Works on idle, pending, cancelled and already-fired handles; a
        pending firing is superseded in place.
        """
        self.sim._push(self, when)
        return self

    def reschedule_after(self, delay: float) -> "TimerHandle":
        """(Re-)arm the handle ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.reschedule(self.sim._now + delay)


#: Backwards-compatible name: the pre-handle kernel called these
#: ScheduledCall; the API (cancel/cancelled) is a subset of TimerHandle.
ScheduledCall = TimerHandle


class Simulator:
    """A discrete-event simulator with a virtual clock.

    Events are ``(time, priority, seq, gen, handle)`` tuples on a heap;
    the ``seq`` counter makes ordering of simultaneous events
    deterministic (FIFO within equal time and priority, including
    reschedules: re-arming for the same instant re-enqueues behind its
    contemporaries).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, int, TimerHandle]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._dead = 0
        self.process_count = 0
        #: Observability hooks.  ``trace`` is the no-op tracer until a
        #: runtime installs a real one (see ``Runtime.enable_tracing``);
        #: instrumented call sites throughout the stack guard with
        #: ``if sim.trace.enabled:`` so the disabled path costs one
        #: attribute load and branch.  The metrics registry is always
        #: live (counters are plain attribute adds).
        self.trace = NULL_TRACER
        self.metrics = MetricsRegistry(self._clock)
        #: QoS conformance auditor; None until a runtime installs one
        #: (see ``Runtime.enable_audit``).  Call sites guard with
        #: ``if sim.auditor is not None:`` -- the auditor, like the
        #: tracer, only records in memory and never schedules events.
        self.auditor = None

    def _clock(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def call_at(
        self, when: float, fn: Callable[[], None], priority: int = 0
    ) -> TimerHandle:
        """Schedule ``fn()`` at absolute virtual time ``when``."""
        handle = TimerHandle(self, fn, priority)
        self._push(handle, when)
        return handle

    def call_after(
        self, delay: float, fn: Callable[[], None], priority: int = 0
    ) -> TimerHandle:
        """Schedule ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def call_soon(self, fn: Callable[[], None], priority: int = 0) -> TimerHandle:
        """Schedule ``fn()`` at the current time (after pending events)."""
        return self.call_at(self._now, fn, priority)

    def _push(self, handle: TimerHandle, when: float) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when:.9f}, now is {self._now:.9f}"
            )
        if handle._live:
            # Supersede the pending entry in place.
            handle._live = False
            self._dead += 1
        handle._gen += 1
        handle._live = True
        handle._cancelled = False
        handle.when = when
        heap = self._heap
        _heappush(
            heap, (when, handle.priority, next(self._seq), handle._gen, handle)
        )
        # Compaction check inlined: this is the hottest call in the kernel.
        if self._dead * 2 > len(heap) >= _COMPACT_MIN_HEAP:
            self._compact()

    # -- dead-entry reclamation --------------------------------------------

    def _note_dead(self) -> None:
        self._dead += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if self._dead * 2 > len(self._heap) >= _COMPACT_MIN_HEAP:
            self._compact()

    def _compact(self) -> None:
        """Sweep dead entries and rebuild the heap in one O(n) pass.

        In place (slice assignment), because ``run()`` may hold an alias
        of the heap list while callbacks trigger a compaction.
        """
        self._heap[:] = [
            entry for entry in self._heap
            if entry[4]._live and entry[3] == entry[4]._gen
        ]
        heapq.heapify(self._heap)
        self._dead = 0

    # -- execution ---------------------------------------------------------

    def spawn(
        self, gen: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> "Process":
        """Start a new process running generator ``gen``."""
        return Process(self, gen, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap is empty or ``until`` is reached.

        Returns the virtual time at which the run stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fires earlier, so repeated ``run(until=...)`` calls
        observe a monotonic clock.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        heap = self._heap
        try:
            while heap:
                entry = heap[0]
                handle = entry[4]
                if not handle._live or entry[3] != handle._gen:
                    _heappop(heap)
                    self._dead -= 1
                    continue
                when = entry[0]
                if until is not None and when > until:
                    break
                _heappop(heap)
                self._now = when
                handle._live = False
                handle._fn()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns False when none remain."""
        while self._heap:
            when, _prio, _seq, gen, handle = _heappop(self._heap)
            if not handle._live or gen != handle._gen:
                self._dead -= 1
                continue
            self._now = when
            handle._live = False
            handle._fn()
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events.  O(1)."""
        return len(self._heap) - self._dead


class Waitable:
    """Base class for things a process generator may ``yield``."""

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Arrange for ``callback(value)`` when this waitable fires.

        Returns a detach function used to cancel interest (needed by
        :class:`AnyOf` and process interruption).
        """
        raise NotImplementedError


def _noop_detach() -> None:
    return None


class Timeout(Waitable):
    """Fires once, ``delay`` seconds after creation.

    The underlying :class:`TimerHandle` is retained: when the last
    waiter detaches before the deadline (an :class:`AnyOf` losing
    branch, a process interrupt) the heap entry is reclaimed instead of
    lingering until it fires into the void.
    """

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.sim = sim
        self.delay = delay
        self.value = value
        self._fired = False
        self._callbacks: list[Callable[[Any], None]] = []
        self._when = sim.now + delay
        self._handle = sim.call_at(self._when, self._fire)

    def _fire(self) -> None:
        self._fired = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self.value)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._fired:
            self.sim.call_soon(lambda: callback(self.value))
            return _noop_detach
        if not self._handle.scheduled:
            # All previous waiters detached and the timer was reclaimed;
            # a new waiter re-arms it at the original deadline.
            self._handle.reschedule(max(self._when, self.sim.now))
        self._callbacks.append(callback)
        return lambda: self._discard(callback)

    def _discard(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            return
        if not self._callbacks and not self._fired:
            self._handle.cancel()


class Timer(Waitable):
    """A reusable one-shot timer waitable for hot loops.

    Allocate one per protocol machine and re-arm it per event::

        pace = Timer(sim)
        while True:
            yield pace.after(slot_delay)      # no allocation per slot

    At most one waiter may be attached at a time (re-yielding from the
    same process, or membership in one :class:`AnyOf`, both satisfy
    this).  Detaching -- an AnyOf loss, a process interrupt -- cancels
    the underlying handle, so no orphaned firing stays on the heap.
    """

    __slots__ = ("sim", "value", "_handle", "_callback")

    def __init__(self, sim: Simulator, priority: int = 0):
        self.sim = sim
        self.value: Any = None
        self._callback: Optional[Callable[[Any], None]] = None
        self._handle = TimerHandle(sim, self._fire, priority)

    @property
    def scheduled(self) -> bool:
        return self._handle.scheduled

    def after(self, delay: float, value: Any = None) -> "Timer":
        """Arm (or re-arm) to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        return self.at(self.sim.now + delay, value)

    def at(self, when: float, value: Any = None) -> "Timer":
        """Arm (or re-arm) to fire at absolute time ``when``."""
        self.value = value
        self._handle.reschedule(when)
        return self

    def cancel(self) -> None:
        self._handle.cancel()

    def _fire(self) -> None:
        callback, self._callback = self._callback, None
        if callback is not None:
            callback(self.value)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._callback is not None:
            raise SimulationError("Timer already has a waiter")
        if not self._handle.scheduled:
            raise SimulationError("Timer must be armed (after/at) before waiting")
        self._callback = callback
        return self._detach

    def _detach(self) -> None:
        self._callback = None
        self._handle.cancel()


class PeriodicTimer:
    """Calls ``fn`` every ``period`` seconds without per-tick allocation.

    The workhorse for rate pacing, QoS sample periods and regulation
    intervals: one :class:`TimerHandle` is re-armed per tick, replacing
    the Timeout-plus-closures-per-event idiom.  Tick times accumulate
    exactly (``start + k * period``), so boundaries do not drift.

    ``fn`` runs after the next tick is armed and may call :meth:`stop`
    or :meth:`set_period` (the latter takes effect from the following
    tick).
    """

    __slots__ = ("sim", "_period", "_fn", "_handle", "_next", "_running")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], None],
        priority: int = 0,
    ):
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self.sim = sim
        self._period = period
        self._fn = fn
        self._handle = TimerHandle(sim, self._tick, priority)
        self._next: Optional[float] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    @property
    def period(self) -> float:
        return self._period

    def start(self, first_delay: Optional[float] = None) -> "PeriodicTimer":
        """Begin ticking; the first tick is ``first_delay`` (default:
        one period) from now.  No-op when already running."""
        if self._running:
            return self
        delay = self._period if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._running = True
        self._next = self.sim.now + delay
        self._handle.reschedule(self._next)
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._handle.cancel()

    def set_period(self, period: float) -> None:
        """Change the period; applies from the next re-arm."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._period = period

    def _tick(self) -> None:
        # Re-arm before running fn (so fn may stop()); goes straight to
        # the simulator's push to keep the per-tick call chain short.
        sim = self.sim
        when = self._next = self._next + self._period
        now = sim._now
        sim._push(self._handle, when if when > now else now)
        self._fn()


class Event(Waitable):
    """A one-shot level-triggered event carrying a value.

    Once :meth:`set` is called the event stays set; late waiters resume
    immediately with the same value.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._value: Any = None
        self._is_set = False
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def is_set(self) -> bool:
        return self._is_set

    @property
    def value(self) -> Any:
        if not self._is_set:
            raise SimulationError("event value read before set")
        return self._value

    def set(self, value: Any = None) -> None:
        if self._is_set:
            raise SimulationError("event set twice")
        self._is_set = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(lambda cb=cb: cb(value))

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._is_set:
            self.sim.call_soon(lambda: callback(self._value))
            return _noop_detach
        self._callbacks.append(callback)
        return lambda: self._discard(callback)

    def _discard(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass


class AnyOf(Waitable):
    """Fires when the *first* of several waitables fires.

    The resume value is ``(index, value)`` of the winner.  Losing
    branches are detached, which reclaims their timers (see
    :class:`Timeout` and :class:`Timer`).
    """

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]):
        self.sim = sim
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf of no waitables")

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        detachers: list[Callable[[], None]] = []
        done = [False]

        def detach_all() -> None:
            for detach in detachers:
                detach()

        def make_cb(index: int):
            def on_fire(value: Any) -> None:
                if done[0]:
                    return
                done[0] = True
                detach_all()
                callback((index, value))

            return on_fire

        for i, w in enumerate(self.waitables):
            detachers.append(w._await(make_cb(i)))
        return detach_all


class AllOf(Waitable):
    """Fires when *all* waitables have fired; value is the list of values."""

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]):
        self.sim = sim
        self.waitables = list(waitables)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        total = len(self.waitables)
        if total == 0:
            self.sim.call_soon(lambda: callback([]))
            return _noop_detach
        values: list[Any] = [None] * total
        remaining = [total]
        detachers: list[Callable[[], None]] = []
        cancelled = [False]

        def make_cb(index: int):
            def on_fire(value: Any) -> None:
                if cancelled[0]:
                    return
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(list(values))

            return on_fire

        for i, w in enumerate(self.waitables):
            detachers.append(w._await(make_cb(i)))

        def detach_all() -> None:
            cancelled[0] = True
            for detach in detachers:
                detach()

        return detach_all


class Process(Waitable):
    """A cooperative process driving a generator of waitables.

    A process is itself a waitable: yielding a process waits for its
    completion and resumes with the generator's return value.
    """

    def __init__(
        self, sim: Simulator, gen: Generator[Any, Any, Any], name: Optional[str] = None
    ):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = Event(sim)
        self._detach: Optional[Callable[[], None]] = None
        self._alive = True
        sim.process_count += 1
        if sim.trace.enabled:
            sim.trace.instant(
                f"spawn:{self.name}", track="sim", cat="process"
            )
        sim.call_soon(lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        return self._alive

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._detach = None
        try:
            waitable = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(waitable)

    def _throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        self._detach = None
        try:
            waitable = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it dies quietly.
            self._finish(None)
            return
        self._wait_on(waitable)

    def _wait_on(self, waitable: Any) -> None:
        if not isinstance(waitable, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {waitable!r}"
            )
        self._detach = waitable._await(self._resume)

    def _finish(self, value: Any) -> None:
        self._alive = False
        if self.sim.trace.enabled:
            self.sim.trace.instant(
                f"finish:{self.name}", track="sim", cat="process"
            )
        self.finished.set(value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self._alive:
            return
        if self._detach is not None:
            self._detach()
            self._detach = None
        self.sim.call_soon(lambda: self._throw(Interrupt(cause)))

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        return self.finished._await(callback)
