"""Event scheduler and process model for the virtual-time kernel.

The design is a conventional event-heap simulator with generator
coroutines, written from scratch so the reproduction has no runtime
dependencies beyond the standard library.

A :class:`Process` wraps a generator.  The generator ``yield``\\ s
*waitables*; the process resumes when the waitable fires and receives the
waitable's value as the result of the ``yield`` expression::

    def sender(sim):
        yield Timeout(sim, 0.02)          # sleep 20 ms of virtual time
        value = yield some_event          # wait for an Event
        done = yield AnyOf(sim, [a, b])   # first of several

Time is a float in **seconds** throughout the code base.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Simulator:
    """A discrete-event simulator with a virtual clock.

    Events are ``(time, priority, seq, callback)`` tuples on a heap; the
    ``seq`` counter makes ordering of simultaneous events deterministic
    (FIFO within equal time and priority).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self.process_count = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def call_at(
        self, when: float, fn: Callable[[], None], priority: int = 0
    ) -> "ScheduledCall":
        """Schedule ``fn()`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when:.9f}, now is {self._now:.9f}"
            )
        handle = ScheduledCall(when, priority, next(self._seq), fn)
        heapq.heappush(self._heap, handle._entry())
        return handle

    def call_after(
        self, delay: float, fn: Callable[[], None], priority: int = 0
    ) -> "ScheduledCall":
        """Schedule ``fn()`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, priority)

    def call_soon(self, fn: Callable[[], None], priority: int = 0) -> "ScheduledCall":
        """Schedule ``fn()`` at the current time (after pending events)."""
        return self.call_at(self._now, fn, priority)

    def spawn(
        self, gen: Generator[Any, Any, Any], name: Optional[str] = None
    ) -> "Process":
        """Start a new process running generator ``gen``."""
        return Process(self, gen, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the heap is empty or ``until`` is reached.

        Returns the virtual time at which the run stopped.  When ``until``
        is given the clock is advanced to exactly ``until`` even if the
        last event fires earlier, so repeated ``run(until=...)`` calls
        observe a monotonic clock.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while self._heap:
                when, _prio, _seq, fn = self._heap[0]
                if fn is None:  # cancelled
                    heapq.heappop(self._heap)
                    continue
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                self._now = when
                fn()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute a single event.  Returns False when none remain."""
        while self._heap:
            when, _prio, _seq, fn = heapq.heappop(self._heap)
            if fn is None:
                continue
            self._now = when
            fn()
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events."""
        return sum(
            1
            for entry in self._heap
            if entry[3] is not None and not getattr(
                entry[3], "__self__", None
            ).cancelled
        )


class ScheduledCall:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("when", "priority", "seq", "_fn", "_cancelled")

    def __init__(self, when: float, priority: int, seq: int, fn: Callable[[], None]):
        self.when = when
        self.priority = priority
        self.seq = seq
        self._fn = fn
        self._cancelled = False

    def _entry(self):
        return (self.when, self.priority, self.seq, self._run)

    def _run(self) -> None:
        if not self._cancelled:
            self._fn()

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Waitable:
    """Base class for things a process generator may ``yield``."""

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Arrange for ``callback(value)`` when this waitable fires.

        Returns a detach function used to cancel interest (needed by
        :class:`AnyOf` and process interruption).
        """
        raise NotImplementedError


class Timeout(Waitable):
    """Fires once, ``delay`` seconds after creation."""

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.sim = sim
        self.delay = delay
        self.value = value
        self._fired = False
        self._callbacks: list[Callable[[Any], None]] = []
        sim.call_after(delay, self._fire)

    def _fire(self) -> None:
        self._fired = True
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self.value)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._fired:
            self.sim.call_soon(lambda: callback(self.value))
            return lambda: None
        self._callbacks.append(callback)
        return lambda: self._discard(callback)

    def _discard(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass


class Event(Waitable):
    """A one-shot level-triggered event carrying a value.

    Once :meth:`set` is called the event stays set; late waiters resume
    immediately with the same value.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._value: Any = None
        self._is_set = False
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def is_set(self) -> bool:
        return self._is_set

    @property
    def value(self) -> Any:
        if not self._is_set:
            raise SimulationError("event value read before set")
        return self._value

    def set(self, value: Any = None) -> None:
        if self._is_set:
            raise SimulationError("event set twice")
        self._is_set = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.call_soon(lambda cb=cb: cb(value))

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        if self._is_set:
            self.sim.call_soon(lambda: callback(self._value))
            return lambda: None
        self._callbacks.append(callback)
        return lambda: self._discard(callback)

    def _discard(self, callback) -> None:
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass


class AnyOf(Waitable):
    """Fires when the *first* of several waitables fires.

    The resume value is ``(index, value)`` of the winner.
    """

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]):
        self.sim = sim
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf of no waitables")

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        detachers: list[Callable[[], None]] = []
        done = [False]

        def detach_all() -> None:
            for detach in detachers:
                detach()

        def make_cb(index: int):
            def on_fire(value: Any) -> None:
                if done[0]:
                    return
                done[0] = True
                detach_all()
                callback((index, value))

            return on_fire

        for i, w in enumerate(self.waitables):
            detachers.append(w._await(make_cb(i)))
        return detach_all


class AllOf(Waitable):
    """Fires when *all* waitables have fired; value is the list of values."""

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]):
        self.sim = sim
        self.waitables = list(waitables)

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        total = len(self.waitables)
        if total == 0:
            self.sim.call_soon(lambda: callback([]))
            return lambda: None
        values: list[Any] = [None] * total
        remaining = [total]
        detachers: list[Callable[[], None]] = []
        cancelled = [False]

        def make_cb(index: int):
            def on_fire(value: Any) -> None:
                if cancelled[0]:
                    return
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(list(values))

            return on_fire

        for i, w in enumerate(self.waitables):
            detachers.append(w._await(make_cb(i)))

        def detach_all() -> None:
            cancelled[0] = True
            for detach in detachers:
                detach()

        return detach_all


class Process(Waitable):
    """A cooperative process driving a generator of waitables.

    A process is itself a waitable: yielding a process waits for its
    completion and resumes with the generator's return value.
    """

    def __init__(
        self, sim: Simulator, gen: Generator[Any, Any, Any], name: Optional[str] = None
    ):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = Event(sim)
        self._detach: Optional[Callable[[], None]] = None
        self._alive = True
        sim.process_count += 1
        sim.call_soon(lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        return self._alive

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._detach = None
        try:
            waitable = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(waitable)

    def _throw(self, exc: BaseException) -> None:
        if not self._alive:
            return
        self._detach = None
        try:
            waitable = self.gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: it dies quietly.
            self._finish(None)
            return
        self._wait_on(waitable)

    def _wait_on(self, waitable: Any) -> None:
        if not isinstance(waitable, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded non-waitable {waitable!r}"
            )
        self._detach = waitable._await(self._resume)

    def _finish(self, value: Any) -> None:
        self._alive = False
        self.finished.set(value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self._alive:
            return
        if self._detach is not None:
            self._detach()
            self._detach = None
        self.sim.call_soon(lambda: self._throw(Interrupt(cause)))

    def _await(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        return self.finished._await(callback)
