"""Discrete-event simulation kernel.

The paper's system ran on transputer hardware with hard real-time
guarantees; CPython cannot provide isochronous deadlines, so the entire
reproduction runs in *virtual time* on this kernel.  All timing behaviour
(delay, jitter, clock drift, interval-based regulation) is expressed as
relative event ordering on the simulator clock, which makes every
experiment deterministic and seedable.

Public surface:

- :class:`Simulator` -- the event loop and virtual clock.
- :class:`Process` -- generator-based cooperative processes.
- Waitables yielded from process generators: :class:`Timeout`,
  :class:`Event`, :class:`AnyOf`, :class:`AllOf`.
- :class:`Semaphore`, :class:`TimedSemaphore`, :class:`Queue` -- process
  synchronisation; the timed variants record blocking time, which the
  orchestration service uses for fault attribution (paper section 3.7).
- :class:`NodeClock` -- per-node clock with rate skew and offset, used to
  model the inter-machine clock drift that motivates continuous
  orchestration (paper section 3.6).
- :class:`RandomStreams` -- named, independently seeded random streams.
- :mod:`repro.sim.shard` -- parallel per-process virtual-time domains
  synchronized with conservative lookahead (``docs/SCALING.md``).
"""

from repro.sim.scheduler import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.sync import Queue, QueueFull, Semaphore, TimedSemaphore
from repro.sim.clock import NodeClock
from repro.sim.random import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "NodeClock",
    "Process",
    "Queue",
    "QueueFull",
    "RandomStreams",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "TimedSemaphore",
    "Timeout",
]
