"""Sharded simulation: parallel per-process virtual-time domains.

One logical simulation is split into *shards*, each owning a
:class:`~repro.sim.scheduler.Simulator` plus a slice of the topology,
running in its own worker process.  Shards synchronize with classic
conservative lookahead: every cut link has a positive propagation
delay, so a shard may safely execute a whole *window* of virtual time
-- up to the minimum cut latency past the global floor -- before it can
possibly be affected by a packet it has not yet seen.  Cross-shard
packets are serialized at the cut by a
:class:`~repro.netsim.boundary.BoundaryLink`, collected in a per-shard
:class:`Outbox`, and routed between windows by the coordinator over
``multiprocessing`` pipes.

See ``docs/SCALING.md`` for the full design: partitioning rules, the
window protocol, determinism guarantees, and the result-merge pipeline.
"""

from repro.sim.shard.coordinator import ShardedRun, run_sharded
from repro.sim.shard.runner import Outbox, reset_process_state

__all__ = [
    "Outbox",
    "ShardedRun",
    "reset_process_state",
    "run_sharded",
]
