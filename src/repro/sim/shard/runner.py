"""Worker side of a sharded run: outbox, process state, window loop.

A worker process owns one shard: a simulator, the shard's slice of the
topology, and an :class:`Outbox` that boundary links fill with departing
cross-shard packets.  The coordinator drives it through a tiny message
protocol over a ``multiprocessing`` pipe (one round trip per
synchronization window):

========================  =============================================
coordinator → worker       worker → coordinator
========================  =============================================
``("advance", t_end,       ``("window", shard, outbox_items, peek,
msgs)``                    delta)`` after running virtual time up to
                           ``t_end``
``("finish",)``            ``("results", shard, payload)`` and exit
========================  =============================================

plus an initial ``("ready", shard, peek)`` after the scenario factory
builds, and ``("error", shard, traceback)`` on any crash.  ``peek`` is
:meth:`~repro.sim.scheduler.Simulator.next_event_time` -- the
conservative bound the coordinator uses to jump idle stretches.

The *scenario factory* is any picklable callable
``factory(shard_index, *args, **kwargs)`` returning a shard context:
an object with a ``sim`` attribute (the shard's simulator), an
``outbox`` attribute (an :class:`Outbox`), an
``inject(dst_node, arrival, packet)`` method scheduling a cross-shard
arrival, and a ``collect()`` method returning the shard's picklable
results (snapshots, counters) once the run finishes.

``delta`` streams telemetry: a context exposing a ``delta_stream``
attribute (a :class:`repro.obs.stream.DeltaEncoder`) ships what changed
since the previous barrier inside the window message the worker sends
anyway -- zero extra round trips -- and ``None`` when idle or when the
context doesn't stream.  The *final* delta travels inside the
``collect()`` payload (streaming contexts put it under ``"delta"``),
not in a window message.
"""

from __future__ import annotations

import itertools
import traceback
from typing import Any, List, Tuple

#: One exported cross-shard departure:
#: ``(arrival_time, seq, dst_shard, dst_node, packet)``.
OutboxItem = Tuple[float, int, int, str, Any]

#: One delivery handed to a worker:
#: ``(arrival_time, src_shard, seq, dst_node, packet)``.
InboundItem = Tuple[float, int, int, str, Any]


class Outbox:
    """Collects cross-shard departures during one window.

    Boundary links call :meth:`export` at *serialization-completion*
    time (wire exit), stamping each packet with its future arrival time
    at the far node; the worker drains the buffer at the window barrier
    and ships it to the coordinator.  The per-export sequence number
    keeps same-instant arrivals in wire order after the network hop.
    """

    def __init__(self) -> None:
        self._items: List[OutboxItem] = []
        self._seq = itertools.count(1)
        #: Lifetime export count (kept across drains, for stats).
        self.exported = 0

    def export(self, dst_shard: int, dst_node: str, arrival: float,
               packet: Any) -> None:
        """Buffer one departing packet for delivery on ``dst_shard``."""
        self.exported += 1
        self._items.append(
            (arrival, next(self._seq), dst_shard, dst_node, packet)
        )

    def drain(self) -> List[OutboxItem]:
        """Take and clear everything buffered this window."""
        items = self._items
        self._items = []
        return items


def reset_process_state() -> None:
    """Reset process-global simulation state to a pristine start.

    Id counters (packets, anonymous orchestration sessions,
    reservations, ANSA interfaces) and slab freelists are module-level
    state shared by every simulator in a process.  Spawned shard
    workers start clean, but the in-process baseline a sharded run is
    compared against (and any run following another in one test
    process) would see leaked ids and warm pools.  Calling this first
    makes every generated id -- packet ids appear in audit drill-downs,
    session ids in orchestration group audits -- and pool hit patterns
    identical to a fresh process, which is what the bit-identity
    guarantee is stated over.  (VC ids need no reset: they are numbered
    per transport entity, a pure function of the host name.)
    """
    import repro.ansa.interface as interface_mod
    import repro.netsim.packet as packet_mod
    import repro.netsim.reservation as reservation_mod
    import repro.orchestration.hlo as hlo_mod
    from repro.transport import tpdu

    packet_mod._packet_ids = itertools.count(1)
    hlo_mod._session_ids = itertools.count(1)
    reservation_mod._reservation_ids = itertools.count(1)
    interface_mod._interface_ids = itertools.count(1)
    packet_mod.Packet._POOL.clear()
    tpdu.DataTPDU._POOL.clear()
    tpdu.CreditTPDU._POOL.clear()
    tpdu.AckTPDU._POOL.clear()


def _inbound_key(item: InboundItem) -> Tuple[float, int, int]:
    """Deterministic delivery order: arrival, then source shard, seq."""
    return (item[0], item[1], item[2])


def shard_worker(conn, factory, shard_index: int,
                 factory_args: tuple, factory_kwargs: dict) -> None:
    """Worker-process entry point: build the shard, serve windows.

    Runs until a ``("finish",)`` message, then sends the context's
    ``collect()`` payload back.  Any exception (including during the
    build) is reported as ``("error", shard, traceback_text)`` so the
    coordinator can fail fast instead of deadlocking on a closed pipe.
    """
    try:
        reset_process_state()
        ctx = factory(shard_index, *factory_args, **factory_kwargs)
        sim = ctx.sim
        outbox = ctx.outbox
        stream = getattr(ctx, "delta_stream", None)
        conn.send(("ready", shard_index, sim.next_event_time()))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "advance":
                _, t_end, inbound = msg
                if inbound:
                    inbound.sort(key=_inbound_key)
                    for arrival, _src, _seq, dst_node, packet in inbound:
                        ctx.inject(dst_node, arrival, packet)
                sim.run(until=t_end)
                conn.send((
                    "window", shard_index, outbox.drain(),
                    sim.next_event_time(),
                    stream.delta() if stream is not None else None,
                ))
            elif kind == "finish":
                conn.send(("results", shard_index, ctx.collect()))
                return
            else:  # pragma: no cover - protocol misuse guard
                raise RuntimeError(f"unknown coordinator message {kind!r}")
    except BaseException:
        try:
            conn.send(("error", shard_index, traceback.format_exc()))
        except OSError:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()
