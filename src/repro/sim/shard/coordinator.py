"""Coordinator side of a sharded run: the conservative window protocol.

The coordinator owns wall-clock concerns only -- worker processes, pipes
and message routing; all virtual-time safety lives in one formula.  With
``W`` the lookahead (minimum cut-link propagation delay) and ``t_next``
the earliest pending event across the fleet (worker peeks plus buffered
cross-shard arrivals), the next barrier is::

    t_end = min(until, max(T + W, t_next + W))

Every packet exported during a window departs no earlier than the
window's start and arrives at least ``W`` later, so arrivals always land
at or beyond the *next* barrier -- injecting the previous window's
exports before running the next window can never deliver into a shard's
past.  ``W > 0`` is enforced at partition time, so every round advances
the clock and the protocol cannot deadlock; the ``t_next + W`` term
lets an idle fleet jump sparse stretches instead of spinning empty
windows.  With no cuts at all ``W = inf`` and the whole run is a single
window per shard, which is what makes 1-shard mode bit-identical to an
unsharded run.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.sim.shard.runner import shard_worker


class ShardError(RuntimeError):
    """A worker process failed; carries the remote traceback."""


@dataclass
class ShardedRun:
    """Outcome of :func:`run_sharded`.

    ``results[k]`` is shard ``k``'s ``collect()`` payload.  ``windows``
    counts synchronization barriers, ``messages`` cross-shard packets
    routed, ``wall_s`` the end-to-end wall-clock time including worker
    start-up and result collection.
    """

    shards: int
    until: float
    lookahead: float
    results: List[Any] = field(default_factory=list)
    windows: int = 0
    messages: int = 0
    wall_s: float = 0.0


def _recv(conn, proc, shard: int):
    """Receive one message, failing fast if the worker died."""
    while not conn.poll(0.2):
        if not proc.is_alive():
            raise ShardError(
                f"shard {shard} worker died without a message "
                f"(exit code {proc.exitcode})"
            )
    return conn.recv()


def _expect(msg, kind: str, shard: int):
    """Unwrap a worker message, surfacing remote errors."""
    if msg[0] == "error":
        raise ShardError(f"shard {msg[1]} failed:\n{msg[2]}")
    if msg[0] != kind:  # pragma: no cover - protocol guard
        raise ShardError(
            f"shard {shard}: expected {kind!r}, got {msg[0]!r}"
        )
    return msg


def run_sharded(
    factory: Callable,
    shards: int,
    *,
    until: float,
    lookahead: float,
    args: tuple = (),
    kwargs: Optional[dict] = None,
    window: Optional[float] = None,
    mp_context: str = "spawn",
    progress: Optional[Callable[[float, int], None]] = None,
    on_delta: Optional[Callable[[int, float, Any], None]] = None,
) -> ShardedRun:
    """Run ``factory(shard_index, *args, **kwargs)`` on every shard.

    ``factory`` must be picklable (a module-level callable) and return
    a shard context as described in :mod:`repro.sim.shard.runner`.
    ``lookahead`` is the partition's minimum cut latency (``inf`` when
    nothing crosses a boundary); ``window`` optionally caps the window
    width below the lookahead -- a smaller window is always safe and
    useful for exercising the protocol in tests.  ``progress``, when
    given, is called after every barrier with ``(t_end, windows)``.
    ``on_delta`` receives ``(shard, t_end, delta)`` for every non-empty
    telemetry delta a streaming context ships with its window message
    (before ``progress`` fires for the barrier); see
    :mod:`repro.obs.stream`.

    Raises :class:`ShardError` with the remote traceback if any worker
    fails, and :class:`ValueError` for a non-positive effective window.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    eff = lookahead if window is None else min(lookahead, window)
    if not eff > 0:  # also rejects NaN
        raise ValueError(f"effective window must be positive, got {eff}")

    started = time.perf_counter()
    ctx = mp.get_context(mp_context)
    conns = []
    procs = []
    run = ShardedRun(shards=shards, until=until, lookahead=lookahead)
    try:
        for k in range(shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker,
                args=(child, factory, k, args, kwargs or {}),
                name=f"repro-shard-{k}",
            )
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)

        peeks: List[Optional[float]] = [None] * shards
        for k in range(shards):
            msg = _expect(_recv(conns[k], procs[k], k), "ready", k)
            peeks[k] = msg[2]

        pending: List[list] = [[] for _ in range(shards)]
        t = 0.0
        while t < until:
            bounds = [p for p in peeks if p is not None]
            bounds.extend(item[0] for batch in pending for item in batch)
            t_next = min(bounds) if bounds else None
            if math.isinf(eff) or t_next is None:
                t_end = until
            else:
                t_end = min(until, max(t + eff, t_next + eff))
            for k in range(shards):
                conns[k].send(("advance", t_end, pending[k]))
            pending = [[] for _ in range(shards)]
            for k in range(shards):
                msg = _expect(_recv(conns[k], procs[k], k), "window", k)
                _, _, outbound, peek, delta = msg
                peeks[k] = peek
                if on_delta is not None and delta is not None:
                    on_delta(k, t_end, delta)
                for arrival, seq, dst_shard, dst_node, packet in outbound:
                    pending[dst_shard].append(
                        (arrival, k, seq, dst_node, packet)
                    )
                    run.messages += 1
            t = t_end
            run.windows += 1
            if progress is not None:
                progress(t_end, run.windows)

        for k in range(shards):
            conns[k].send(("finish",))
        results: List[Any] = [None] * shards
        for k in range(shards):
            msg = _expect(_recv(conns[k], procs[k], k), "results", k)
            results[k] = msg[2]
        run.results = results
        for proc in procs:
            proc.join(timeout=30)
        run.wall_s = time.perf_counter() - started
        return run
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
