"""Frame-size trace replay: real GoP burst structure as an encoding.

The synthetic :class:`~repro.media.encodings.VBREncoding` approximates
an I-frame cycle with a square wave; a :class:`FrameTrace` replays a
*recorded* per-frame byte sequence instead -- I/P/B frames, GoP
periodicity, scene-change bursts and all.  Traces are checked-in text
files under ``repro/media/traces/`` so every run, on every machine,
replays the exact same byte sequence (the regression tests pin the
first frames of each shipped trace).

File format (one frame per line, display order)::

    # repro GoP frame-size trace
    # name=news fps=25 gop=12
    I 8598
    B 1085
    ...

:class:`TraceEncoding` adapts a trace to the
:class:`~repro.media.encodings.Encoding` protocol: ``osdu_size(index)``
is the trace entry at ``index`` (wrapping around at the end, so a
source can play longer than the recording), and no randomness is ever
consumed -- trace replay is bit-deterministic by construction.
"""

from __future__ import annotations

import os
import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.media.encodings import Encoding

#: Directory holding the checked-in ``*.trace`` files.
TRACE_DIR = os.path.join(os.path.dirname(__file__), "traces")

_cache: Dict[str, "FrameTrace"] = {}


@dataclass(frozen=True)
class FrameTrace:
    """One recorded frame-size sequence (sizes in bytes, display order)."""

    name: str
    fps: float
    gop: int
    sizes: Tuple[int, ...]
    kinds: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError(f"trace {self.name!r} has no frames")
        if len(self.sizes) != len(self.kinds):
            raise ValueError("sizes and kinds must be parallel")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    def __len__(self) -> int:
        return len(self.sizes)

    def size(self, index: int) -> int:
        """Frame size at ``index``, wrapping past the end of the trace."""
        return self.sizes[index % len(self.sizes)]

    def kind(self, index: int) -> str:
        """Frame type (``I``/``P``/``B``) at ``index``, wrapping."""
        return self.kinds[index % len(self.kinds)]

    @property
    def max_bytes(self) -> int:
        """Largest frame in the trace."""
        return max(self.sizes)

    @property
    def mean_bytes(self) -> float:
        """Mean frame size over the whole trace."""
        return sum(self.sizes) / len(self.sizes)

    @property
    def duration(self) -> float:
        """Media seconds covered by one full pass of the trace."""
        return len(self.sizes) / self.fps


def parse_trace(text: str, name: str = "?") -> FrameTrace:
    """Parse the trace file format into a :class:`FrameTrace`."""
    fps, gop = 25.0, 12
    sizes: List[int] = []
    kinds: List[str] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                key, _, value = token.partition("=")
                if not value:
                    continue
                if key == "name":
                    name = value
                elif key == "fps":
                    fps = float(value)
                elif key == "gop":
                    gop = int(value)
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in ("I", "P", "B"):
            raise ValueError(f"trace {name!r} line {lineno}: bad frame {raw!r}")
        kinds.append(parts[0])
        sizes.append(int(parts[1]))
    return FrameTrace(name=name, fps=fps, gop=gop,
                      sizes=tuple(sizes), kinds=tuple(kinds))


def available_traces() -> List[str]:
    """Names of the checked-in traces, sorted."""
    return sorted(
        fname[: -len(".trace")]
        for fname in os.listdir(TRACE_DIR)
        if fname.endswith(".trace")
    )


def load_trace(name: str) -> FrameTrace:
    """Load (and cache) the checked-in trace called ``name``."""
    trace = _cache.get(name)
    if trace is None:
        path = os.path.join(TRACE_DIR, f"{name}.trace")
        if not os.path.exists(path):
            raise ValueError(
                f"unknown trace {name!r}; available: {available_traces()}"
            )
        with open(path) as handle:
            trace = parse_trace(handle.read(), name=name)
        _cache[name] = trace
    return trace


@dataclass(frozen=True)
class TraceEncoding(Encoding):
    """An :class:`Encoding` that replays a :class:`FrameTrace`.

    ``osdu_size(index)`` ignores the RNG entirely: replay is exact.  A
    source playing past the end of the recording wraps around, so the
    trace behaves like looped stored media.
    """

    trace: FrameTrace = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.trace is None:
            raise ValueError("TraceEncoding needs a trace")

    def osdu_size(self, index: int,
                  rng: Optional[_random.Random] = None) -> int:
        return self.trace.size(index)

    @property
    def nominal_bps(self) -> float:
        return self.osdu_rate * self.trace.mean_bytes * 8


def trace_encoding(name: str) -> TraceEncoding:
    """The checked-in trace ``name`` as a ready-to-use encoding."""
    trace = load_trace(name)
    return TraceEncoding(
        name=f"trace-{trace.name}",
        osdu_rate=trace.fps,
        max_osdu_bytes=trace.max_bytes,
        trace=trace,
    )
