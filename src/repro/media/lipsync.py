"""Inter-stream synchronisation measurement.

Given the delivery logs of two (or more) playout sinks, compute the
*skew* -- the difference in presented media time -- as a function of
real (simulator) time.  The conventional perceptual threshold for lip
synchronisation is 80 ms; :func:`fraction_within` reports how much of
a run stays inside any given bound.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.media.sink import DeliveryRecord, PlayoutSink

#: The canonical lip-sync perceptual threshold, seconds.
LIP_SYNC_THRESHOLD = 0.080


def _position_series(records: Sequence[DeliveryRecord]):
    """Return a step function t -> presented media time."""
    times = [r.delivered_at for r in records]
    positions = [r.media_time for r in records]

    def at(t: float) -> float:
        # Binary search for the last record delivered at or before t.
        lo, hi = 0, len(times)
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        return positions[lo - 1] if lo > 0 else 0.0

    return at


def interstream_skew_series(
    sinks: Sequence[PlayoutSink],
    t_start: float,
    t_end: float,
    dt: float = 0.05,
) -> List[Tuple[float, float]]:
    """Sampled max-minus-min presented media time across ``sinks``.

    Only the window ``[t_start, t_end]`` is evaluated; sample spacing
    is ``dt`` seconds.
    """
    if len(sinks) < 2:
        raise ValueError("need at least two sinks to measure skew")
    if t_end < t_start:
        raise ValueError("t_end before t_start")
    series = [_position_series(s.records) for s in sinks]
    samples: List[Tuple[float, float]] = []
    steps = max(int((t_end - t_start) / dt), 1)
    for i in range(steps + 1):
        t = t_start + i * dt
        positions = [f(t) for f in series]
        samples.append((t, max(positions) - min(positions)))
    return samples


def skew_summary(series: Iterable[Tuple[float, float]]) -> Dict[str, float]:
    """Mean / max / RMS of a skew series."""
    values = [abs(s) for _t, s in series]
    if not values:
        return {"mean": 0.0, "max": 0.0, "rms": 0.0}
    return {
        "mean": sum(values) / len(values),
        "max": max(values),
        "rms": math.sqrt(sum(v * v for v in values) / len(values)),
    }


def fraction_within(
    series: Iterable[Tuple[float, float]], threshold: float = LIP_SYNC_THRESHOLD
) -> float:
    """Fraction of samples with |skew| <= threshold."""
    values = [abs(s) for _t, s in series]
    if not values:
        return 1.0
    return sum(1 for v in values if v <= threshold) / len(values)
