"""Continuous-media sources, sinks and measurement.

Stands in for the Lancaster testbed's audio/video capture and playout
hardware (paper section 2.1).  Stored sources are seekable and
generate as fast as the transport admits (pacing comes from the
protocol's rate control); live sources are tied to their node's
drifting local clock and cannot be paused -- the distinction paper
section 3.6 draws ("with live media, there is no control over when the
information flow starts ... and no possibility of altering the speed
of a live media flow").
"""

from repro.media.encodings import (
    CBREncoding,
    Encoding,
    VBREncoding,
    audio_pcm,
    video_cbr,
    video_vbr,
)
from repro.media.source import LiveSource, StoredMediaSource
from repro.media.sink import DeliveryRecord, PlayoutSink
from repro.media.lipsync import (
    fraction_within,
    interstream_skew_series,
    skew_summary,
)

__all__ = [
    "CBREncoding",
    "DeliveryRecord",
    "Encoding",
    "LiveSource",
    "PlayoutSink",
    "StoredMediaSource",
    "VBREncoding",
    "audio_pcm",
    "fraction_within",
    "interstream_skew_series",
    "skew_summary",
    "video_cbr",
    "video_vbr",
]
