"""Adaptive-bitrate ladder switching driven by ``T-QoS.indication``.

The paper's monitoring function (section 4.1.2, Table 2) reports
contract violations to the initiating transport user as
``T-QoS.indication`` primitives -- but the paper leaves what the user
*does* with them open.  This module closes the loop the way a modern
streaming stack would: an :class:`AbrLadder` of encodings ordered from
highest to lowest bitrate, and an :class:`AbrController` that watches
the initiator's TSAP binding, switches the feeding
:class:`~repro.media.source.StoredMediaSource` one rung **down** on
every violation indication, and climbs one rung back **up** after a
configurable number of consecutive indication-free sample periods.

Switching changes only the *size* of subsequently generated OSDUs --
the unit rate is sacred (the logical-data-unit principle of section
3.7), so a rung change never perturbs orchestration timing, only the
bits pushed through the contract.

The scenario fleet (:mod:`repro.soak.fleet`) implements the same
ladder policy at pump level, driven by per-period auditor verdicts --
the fleet-scale analog of the indication stream modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.media.encodings import Encoding
from repro.sim.scheduler import PeriodicTimer, Simulator
from repro.transport.primitives import TQoSIndication


class AbrLadder:
    """An ordered set of encoding rungs, highest bitrate first."""

    def __init__(self, rungs: Sequence[Encoding]):
        if not rungs:
            raise ValueError("a ladder needs at least one rung")
        rates = [rung.nominal_bps for rung in rungs]
        if rates != sorted(rates, reverse=True):
            raise ValueError(
                "ladder rungs must be ordered highest bitrate first"
            )
        self.rungs: List[Encoding] = list(rungs)

    def __len__(self) -> int:
        return len(self.rungs)

    def __getitem__(self, index: int) -> Encoding:
        return self.rungs[index]

    def clamp(self, index: int) -> int:
        """The nearest valid rung index."""
        return max(0, min(index, len(self.rungs) - 1))


@dataclass(frozen=True)
class AbrSwitch:
    """One recorded rung change."""

    at: float
    from_rung: int
    to_rung: int
    reason: str  # "qos-indication" or "recovered"
    violations: tuple = ()


class AbrController:
    """Closes the T-QoS.indication -> encoding-rung feedback loop.

    Watches ``binding`` (the *initiator's* TSAP binding -- that is
    where the monitor delivers indications, locally or relayed via
    QoS-report TPDUs) and retargets ``source.encoding``:

    - every :class:`TQoSIndication` for ``source``'s VC steps one rung
      down (unless already at the bottom);
    - every ``upswitch_after`` consecutive indication-free sample
      periods step one rung up (unless already at the top).

    The controller polls on the monitor's own ``sample_period`` cadence
    so "indication-free period" aligns with the contract's verdict
    clock.  All switches are recorded in :attr:`switches`.
    """

    def __init__(
        self,
        sim: Simulator,
        binding,
        source,
        ladder: AbrLadder,
        sample_period: float = 1.0,
        upswitch_after: int = 3,
        start_rung: int = 0,
    ):
        if sample_period <= 0:
            raise ValueError("sample_period must be positive")
        if upswitch_after < 1:
            raise ValueError("upswitch_after must be at least 1")
        self.sim = sim
        self.binding = binding
        self.source = source
        self.ladder = ladder
        self.upswitch_after = upswitch_after
        self.rung = ladder.clamp(start_rung)
        self.switches: List[AbrSwitch] = []
        self._clean_periods = 0
        self._indicated = False
        source.encoding = ladder[self.rung]
        self._watcher = sim.spawn(
            self._watch_loop(), name=f"abr:{source.endpoint.vc_id}"
        )
        self._timer = PeriodicTimer(sim, sample_period, self._on_period)
        self._timer.start(first_delay=sample_period)

    @property
    def encoding(self) -> Encoding:
        """The currently selected rung's encoding."""
        return self.ladder[self.rung]

    def stop(self) -> None:
        """Stop the period clock (the watcher dies with the simulator)."""
        self._timer.stop()

    # -- internals ---------------------------------------------------------

    def _watch_loop(self):
        vc_id = self.source.endpoint.vc_id
        while True:
            primitive = yield self.binding.next_primitive()
            if (isinstance(primitive, TQoSIndication)
                    and primitive.vc_id == vc_id):
                self._indicated = True
                self._step(
                    +1, "qos-indication",
                    tuple(v.parameter for v in primitive.violations),
                )

    def _on_period(self) -> None:
        if self._indicated:
            self._indicated = False
            self._clean_periods = 0
            return
        self._clean_periods += 1
        if self._clean_periods >= self.upswitch_after:
            self._clean_periods = 0
            self._step(-1, "recovered")

    def _step(self, delta: int, reason: str, violations: tuple = ()) -> None:
        target = self.ladder.clamp(self.rung + delta)
        if target == self.rung:
            return
        switch = AbrSwitch(
            at=self.sim.now, from_rung=self.rung, to_rung=target,
            reason=reason, violations=violations,
        )
        self.switches.append(switch)
        self.rung = target
        self.source.encoding = self.ladder[target]
        metrics = getattr(self.sim, "metrics", None)
        if metrics is not None:
            metrics.counter("abr.switches").inc()
            metrics.counter(
                "abr.down" if delta > 0 else "abr.up"
            ).inc()


#: Default byte-size multipliers for :func:`ladder_from_encoding`.
DEFAULT_RUNG_SCALES = (1.0, 0.7, 0.5, 0.35)


@dataclass(frozen=True)
class _ScaledEncoding(Encoding):
    """An encoding rung: ``base`` with every unit scaled by ``scale``."""

    base: Encoding = field(default=None)  # type: ignore[assignment]
    scale: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base is None:
            raise ValueError("_ScaledEncoding needs a base encoding")
        if not 0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")

    def osdu_size(self, index, rng=None) -> int:
        return max(1, int(self.base.osdu_size(index, rng) * self.scale))

    @property
    def nominal_bps(self) -> float:
        return self.base.nominal_bps * self.scale


def ladder_from_encoding(
    base: Encoding, scales: Sequence[float] = DEFAULT_RUNG_SCALES,
    name: Optional[str] = None,
) -> AbrLadder:
    """Build a ladder by scaling ``base``'s unit sizes by ``scales``.

    ``scales`` must be strictly decreasing with the top rung first;
    scale ``1.0`` reuses ``base`` itself so the top rung is
    bit-identical to the unadapted encoding.
    """
    if list(scales) != sorted(set(scales), reverse=True):
        raise ValueError("scales must be strictly decreasing")
    rungs: List[Encoding] = []
    for scale in scales:
        if scale == 1.0:
            rungs.append(base)
        else:
            rungs.append(_ScaledEncoding(
                name=f"{name or base.name}@{scale:g}",
                osdu_rate=base.osdu_rate,
                max_osdu_bytes=max(1, int(base.max_osdu_bytes * scale)),
                base=base,
                scale=scale,
            ))
    return AbrLadder(rungs)
