"""Media encodings: OSDU sizes and rates.

The transport's logical-data-unit principle (paper section 3.7) says
"at each time period there will always be something to transmit (i.e.
one logical unit) even when CM data is variable bit rate encoded" --
so a VBR encoding varies the *size* of each unit, never its rate.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Encoding:
    """Base encoding: one OSDU per ``1/osdu_rate`` media seconds."""

    name: str
    osdu_rate: float
    max_osdu_bytes: int

    def __post_init__(self) -> None:
        if self.osdu_rate <= 0:
            raise ValueError("osdu_rate must be positive")
        if self.max_osdu_bytes <= 0:
            raise ValueError("max_osdu_bytes must be positive")

    def osdu_size(self, index: int, rng: Optional[_random.Random] = None) -> int:
        raise NotImplementedError

    @property
    def nominal_bps(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class CBREncoding(Encoding):
    """Constant bit rate: every unit is ``max_osdu_bytes``."""

    def osdu_size(self, index: int, rng: Optional[_random.Random] = None) -> int:
        return self.max_osdu_bytes

    @property
    def nominal_bps(self) -> float:
        return self.osdu_rate * self.max_osdu_bytes * 8


@dataclass(frozen=True)
class VBREncoding(Encoding):
    """Variable bit rate with a periodic large unit (I-frame pattern).

    Every ``gop`` units is a full-size unit; the rest are
    ``p_fraction`` of the maximum, plus uniform noise of amplitude
    ``noise`` (fractions of the mean), clamped to
    ``[1, max_osdu_bytes]``.
    """

    gop: int = 12
    p_fraction: float = 0.35
    noise: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gop < 1:
            raise ValueError("gop must be at least 1")
        if not 0.0 < self.p_fraction <= 1.0:
            raise ValueError("p_fraction must be in (0, 1]")

    def osdu_size(self, index: int, rng: Optional[_random.Random] = None) -> int:
        if index % self.gop == 0:
            base = float(self.max_osdu_bytes)
        else:
            base = self.max_osdu_bytes * self.p_fraction
        if rng is not None and self.noise > 0:
            base *= 1.0 + rng.uniform(-self.noise, self.noise)
        return max(1, min(int(base), self.max_osdu_bytes))

    @property
    def mean_osdu_bytes(self) -> float:
        i_frames = 1.0
        p_frames = (self.gop - 1) * self.p_fraction
        return self.max_osdu_bytes * (i_frames + p_frames) / self.gop

    @property
    def nominal_bps(self) -> float:
        return self.osdu_rate * self.mean_osdu_bytes * 8


def video_cbr(fps: float = 25.0, frame_bytes: int = 4096) -> CBREncoding:
    """Simple CBR video, one frame per OSDU."""
    return CBREncoding(f"video-cbr-{fps:g}fps", fps, frame_bytes)


def video_vbr(fps: float = 25.0, max_frame_bytes: int = 8192,
              gop: int = 12) -> VBREncoding:
    """VBR video with a GOP structure."""
    return VBREncoding(
        f"video-vbr-{fps:g}fps", fps, max_frame_bytes, gop=gop
    )


def audio_pcm(sample_rate: float = 8000.0, bytes_per_sample: int = 1,
              samples_per_osdu: int = 32) -> CBREncoding:
    """PCM audio blocks; defaults give 64 kbit/s voice in 4 ms units."""
    return CBREncoding(
        f"audio-pcm-{sample_rate:g}Hz",
        sample_rate / samples_per_osdu,
        samples_per_osdu * bytes_per_sample,
    )
