"""Playout sinks.

A sink owns the *receive* endpoint of one VC, consumes OSDUs, and logs
delivery times -- the raw material for the lip-sync metric.

Two consumption modes reproduce the paper's two regimes:

- ``"gated"`` (orchestrated): the sink takes units as soon as the LLO's
  delivery gate releases them; presentation time *is* delivery time
  ("quanta ... are released by the sink LLO instance to the
  application thread at times determined by the HLO initiated
  targets", section 5).
- ``"paced"`` (free-running baseline): the sink paces itself on its
  own drifting local clock -- the uncoordinated behaviour whose
  accumulated skew motivates orchestration (section 3.6).

A paced sink may additionally hold a **playout delay** (de-jitter
buffer): the first unit is presented ``playout_delay`` seconds after
it arrives and every later unit at its media offset from that point.
Units that miss their playout point are presented late and counted in
``late_count`` -- the classic jitter-absorption trade the QoS jitter
parameter (section 3.2) exists to dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.scheduler import Process, Simulator, Timeout
from repro.transport.entity import VCEndpoint
from repro.orchestration.primitives import (
    OrchReply,
    PrimeIndication,
    StartIndication,
    StopIndication,
)


@dataclass(frozen=True)
class DeliveryRecord:
    """One presented OSDU."""

    seq: int
    media_time: float
    delivered_at: float   # simulator (true) time
    local_time: float     # sink node's clock
    created_at: Optional[float] = None  # source write time (true time)


class PlayoutSink:
    """A playout device thread consuming one VC."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: VCEndpoint,
        osdu_rate: float,
        clock,
        mode: str = "gated",
        per_osdu_delay: float = 0.0,
        deny_prime: bool = False,
        playout_delay: float = 0.0,
    ):
        if endpoint.kind != "recv":
            raise ValueError("a playout sink needs a receive endpoint")
        if mode not in ("gated", "paced"):
            raise ValueError(f"unknown sink mode {mode!r}")
        if osdu_rate <= 0:
            raise ValueError("osdu_rate must be positive")
        if playout_delay < 0:
            raise ValueError("playout delay must be non-negative")
        self.sim = sim
        self.endpoint = endpoint
        self.osdu_rate = osdu_rate
        self.clock = clock
        self.mode = mode
        #: Fault-injection knob: extra processing per unit (slow-sink
        #: attribution experiment E10).
        self.per_osdu_delay = per_osdu_delay
        self.deny_prime = deny_prime
        #: De-jitter buffer depth in seconds (paced mode only).
        self.playout_delay = playout_delay
        self.late_count = 0
        self.records: List[DeliveryRecord] = []
        self.started = False
        self._consumer: Process = sim.spawn(
            self._consume_loop(), name=f"sink:{endpoint.vc_id}"
        )
        self._orch: Process = sim.spawn(
            self._orch_loop(), name=f"sink-orch:{endpoint.vc_id}"
        )

    @property
    def presented(self) -> int:
        return len(self.records)

    def media_position_at(self, t: float) -> float:
        """Media time presented as of simulator time ``t``."""
        position = 0.0
        for record in self.records:
            if record.delivered_at > t:
                break
            position = record.media_time
        return position

    def last_media_time(self) -> float:
        return self.records[-1].media_time if self.records else 0.0

    def _consume_loop(self):
        next_play_local: Optional[float] = None
        while True:
            osdu = yield from self.endpoint.read()
            if self.mode == "paced":
                # Free-running playout: present each unit on the local
                # clock at its nominal media period, ``playout_delay``
                # behind the first arrival (the de-jitter point).
                if next_play_local is None:
                    next_play_local = self.clock.now() + self.clock.local_duration(
                        self.playout_delay
                    )
                remaining = next_play_local - self.clock.now()
                if remaining > 0:
                    yield Timeout(self.sim, self.clock.sim_duration(remaining))
                elif remaining < -1e-12:
                    self.late_count += 1
                next_play_local += 1.0 / self.osdu_rate
            if self.per_osdu_delay > 0:
                yield Timeout(self.sim, self.per_osdu_delay)
            media_time = (
                osdu.media_time
                if osdu.media_time is not None
                else osdu.seq / self.osdu_rate
            )
            self.records.append(
                DeliveryRecord(
                    seq=osdu.seq,
                    media_time=media_time,
                    delivered_at=self.sim.now,
                    local_time=self.clock.now(),
                    created_at=osdu.created_at,
                )
            )

    def _orch_loop(self):
        while True:
            primitive, reply = yield self.endpoint.next_orch()
            if isinstance(primitive, PrimeIndication) and self.deny_prime:
                reply.set(OrchReply(False, "sink-not-ready"))
                continue
            if isinstance(primitive, StartIndication):
                self.started = True
            elif isinstance(primitive, StopIndication):
                self.started = False
            reply.set(OrchReply(True))
