"""Media sources: stored (seekable) and live.

A source owns the *send* endpoint of one VC and serves its
orchestration queue, implementing the application-thread side of the
Orch.Prime/Start/Stop handshake (paper Figure 7): on
Orch.Prime.indication a stored source starts generating data from its
current position; on Orch.Stop it pauses.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Optional

from repro.sim.scheduler import Event, Process, Simulator, Timeout
from repro.transport.entity import VCEndpoint
from repro.transport.osdu import OPDU, OSDU
from repro.media.encodings import Encoding
from repro.orchestration.primitives import (
    AddIndication,
    OrchReply,
    PrimeIndication,
    StartIndication,
    StopIndication,
)


class StoredMediaSource:
    """A stored-media server thread feeding one VC.

    The source generates as fast as the shared buffer admits -- pacing
    is the transport's job (rate-based flow control), seeking is the
    application's.  ``per_osdu_delay`` models application processing
    time per unit and is the fault-injection knob for the slow-source
    attribution experiment (E10).  ``per_osdu_jitter`` adds a uniform
    random component on top (drawn from ``rng``), modelling a variable
    -latency processing stage such as a live-dubbing worker; it is zero
    by default and consumes no randomness when disabled.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: VCEndpoint,
        encoding: Encoding,
        total_osdus: int = 1 << 30,
        rng: Optional[_random.Random] = None,
        per_osdu_delay: float = 0.0,
        per_osdu_jitter: float = 0.0,
        event_marks: Optional[Dict[int, int]] = None,
        deny_prime: bool = False,
    ):
        if endpoint.kind != "send":
            raise ValueError("a media source needs a send endpoint")
        if per_osdu_jitter > 0 and rng is None:
            raise ValueError("per_osdu_jitter needs an rng to draw from")
        self.sim = sim
        self.endpoint = endpoint
        self.encoding = encoding
        self.total_osdus = total_osdus
        self.rng = rng
        self.per_osdu_delay = per_osdu_delay
        self.per_osdu_jitter = per_osdu_jitter
        #: media-position index -> event field value stamped on that
        #: unit (Orch.Event support, section 6.3.4).
        self.event_marks = dict(event_marks or {})
        self.deny_prime = deny_prime
        self.position = 0
        self.generated = 0
        self.generating = False
        self._wake = Event(sim)
        self._writer: Process = sim.spawn(
            self._writer_loop(), name=f"source:{endpoint.vc_id}"
        )
        self._orch: Process = sim.spawn(
            self._orch_loop(), name=f"source-orch:{endpoint.vc_id}"
        )

    @property
    def media_time(self) -> float:
        return self.position / self.encoding.osdu_rate

    def seek(self, media_time: float) -> None:
        """Jump the read head; takes effect on the next generated unit."""
        self.position = max(0, int(media_time * self.encoding.osdu_rate))

    def play(self) -> None:
        """Begin/resume generating (also triggered by Orch.Prime)."""
        if not self.generating:
            self.generating = True
            self._kick()

    def pause(self) -> None:
        self.generating = False

    def _kick(self) -> None:
        if not self._wake.is_set:
            self._wake.set(None)
        self._wake = Event(self.sim)

    def _writer_loop(self):
        while True:
            if not self.generating or self.position >= self.total_osdus:
                wake = self._wake
                yield wake
                continue
            index = self.position
            size = self.encoding.osdu_size(index, self.rng)
            osdu = OSDU(
                size_bytes=size,
                payload=index,
                media_time=index / self.encoding.osdu_rate,
            )
            event = self.event_marks.get(index)
            if event is not None:
                osdu.opdu = OPDU(0, event)  # sequence reassigned at write
            delay = self.per_osdu_delay
            if self.per_osdu_jitter > 0:
                delay += self.rng.uniform(0.0, self.per_osdu_jitter)
            if delay > 0:
                yield Timeout(self.sim, delay)
            yield from self.endpoint.write(osdu)
            if self.position == index:
                # Only advance when no seek() landed while the write
                # was blocked -- otherwise the seek target would be
                # silently overwritten.
                self.position = index + 1
            self.generated += 1

    def _orch_loop(self):
        while True:
            primitive, reply = yield self.endpoint.next_orch()
            if isinstance(primitive, PrimeIndication):
                if self.deny_prime:
                    reply.set(OrchReply(False, "source-not-ready"))
                    continue
                self.play()
                reply.set(OrchReply(True))
            elif isinstance(primitive, (StartIndication, AddIndication)):
                # Joining a running group starts generation immediately.
                self.play()
                reply.set(OrchReply(True))
            elif isinstance(primitive, StopIndication):
                self.pause()
                reply.set(OrchReply(True))
            else:
                reply.set(OrchReply(True))


class LiveSource:
    """A camera/microphone: units appear on the local clock, period.

    Live media "will always play out in real-time" (section 3.6): the
    source cannot be paused or rewound, and a full buffer means the
    unit is simply lost (counted in ``overrun_drops``).  Generation is
    tied to the node's drifting local clock.
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: VCEndpoint,
        encoding: Encoding,
        clock,
        rng: Optional[_random.Random] = None,
    ):
        if endpoint.kind != "send":
            raise ValueError("a media source needs a send endpoint")
        self.sim = sim
        self.endpoint = endpoint
        self.encoding = encoding
        self.clock = clock
        self.rng = rng
        self.switched_on = False
        self.generated = 0
        self.overrun_drops = 0
        self.index = 0
        self._proc: Optional[Process] = None
        self._orch: Process = sim.spawn(
            self._orch_loop(), name=f"live-orch:{endpoint.vc_id}"
        )

    def switch_on(self) -> None:
        """Start capturing ("it depends when the camera is switched on")."""
        if self.switched_on:
            return
        self.switched_on = True
        self._proc = self.sim.spawn(
            self._capture_loop(), name=f"live:{self.endpoint.vc_id}"
        )

    def switch_off(self) -> None:
        self.switched_on = False

    def _capture_loop(self):
        period_local = 1.0 / self.encoding.osdu_rate
        next_tick_local = self.clock.now()
        while self.switched_on:
            remaining = next_tick_local - self.clock.now()
            if remaining > 0:
                yield Timeout(self.sim, self.clock.sim_duration(remaining))
            if not self.switched_on:
                return
            size = self.encoding.osdu_size(self.index, self.rng)
            osdu = OSDU(
                size_bytes=size,
                payload=self.index,
                media_time=self.index / self.encoding.osdu_rate,
            )
            if self.endpoint.try_write(osdu):
                self.generated += 1
            else:
                self.overrun_drops += 1
            self.index += 1
            next_tick_local += period_local

    def _orch_loop(self):
        # Live sources accept everything; priming merely ensures the
        # camera is on (there is nothing to pre-fetch).
        while True:
            primitive, reply = yield self.endpoint.next_orch()
            if isinstance(primitive, (PrimeIndication, StartIndication)):
                self.switch_on()
            reply.set(OrchReply(True))
