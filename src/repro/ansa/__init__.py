"""The object-based distributed application platform (paper section 2.2).

An ANSA-flavoured platform with the Lancaster continuous-media
extensions.  Applications see two complementary communication
abstractions:

- **Invocation** -- named operations on abstract-data-type interfaces,
  located through a trader and invoked via a REX-like RPC extended with
  delay-bounded invocation for real-time control.
- **Streams** -- first-class ADT services representing underlying CM
  connections.  Streams are unidirectional, carry QoS expressed in
  media-specific terms, and isolate users from the transport protocol
  service interface.
"""

from repro.ansa.interface import InterfaceRef, Operation, ServiceInterface
from repro.ansa.trader import Trader
from repro.ansa.rex import InvocationError, InvocationTimeout, RexRPC
from repro.ansa.stream import (
    AudioQoS,
    MediaQoS,
    Stream,
    StreamFactory,
    TextQoS,
    VideoQoS,
)

__all__ = [
    "AudioQoS",
    "InterfaceRef",
    "InvocationError",
    "InvocationTimeout",
    "MediaQoS",
    "Operation",
    "RexRPC",
    "ServiceInterface",
    "Stream",
    "StreamFactory",
    "TextQoS",
    "Trader",
    "VideoQoS",
]
