"""The trader: location-independent service binding.

Modelled on the ANSA trader [APM,89]: servers *export* interface
references under service names, clients *import* them without knowing
locations.  Our trader is a logically centralised registry (the usual
implementation choice of the period); access latency is charged to the
client's subsequent invocation rather than simulated separately.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.ansa.interface import InterfaceRef, ServiceInterface


class Trader:
    """Service-name to interface-reference registry."""

    def __init__(self) -> None:
        self._registry: Dict[str, List[InterfaceRef]] = defaultdict(list)
        self._interfaces: Dict[InterfaceRef, ServiceInterface] = {}

    def export(self, service_name: str, interface: ServiceInterface) -> InterfaceRef:
        """Advertise ``interface`` under ``service_name``."""
        ref = interface.ref
        self._registry[service_name].append(ref)
        self._interfaces[ref] = interface
        return ref

    def withdraw(self, service_name: str, ref: InterfaceRef) -> None:
        refs = self._registry.get(service_name, [])
        if ref in refs:
            refs.remove(ref)
        self._interfaces.pop(ref, None)

    def import_(self, service_name: str) -> InterfaceRef:
        """Return one offer for ``service_name`` (first exported wins)."""
        refs = self._registry.get(service_name)
        if not refs:
            raise KeyError(f"no offers for service {service_name!r}")
        return refs[0]

    def import_all(self, service_name: str) -> List[InterfaceRef]:
        return list(self._registry.get(service_name, []))

    def resolve(self, ref: InterfaceRef) -> Optional[ServiceInterface]:
        """Server-side lookup used by the RPC runtime."""
        return self._interfaces.get(ref)
