"""REX-like RPC with delay-bounded invocation.

"Invocation is implemented by means of an RPC protocol known as REX
[APM,89] extended to provide the delay bounded communication required
for the real-time control of multimedia applications" (paper section
2.2).  An invocation marshals a request packet to the server node,
executes the named operation (plain callables run inline; coroutine
operations are spawned as server processes), and returns the result --
or raises :class:`InvocationTimeout` when the delay bound expires.

Control traffic travels at CONTROL priority: platform invocations are
the "control and event information" path, distinct from Streams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional, Tuple

from repro.netsim.packet import Packet, Priority
from repro.netsim.topology import Network
from repro.sim.scheduler import AnyOf, Event, Simulator, Timeout
from repro.ansa.interface import InterfaceRef
from repro.ansa.trader import Trader

#: Nominal wire size of a request/reply, bytes (REX was compact).
RPC_WIRE_BYTES = 128


class InvocationError(Exception):
    """The remote operation raised, or the interface is unknown."""


class InvocationTimeout(InvocationError):
    """The delay bound expired before the reply arrived."""


@dataclass
class _RequestMsg:
    handler_key = "rex"

    call_id: int = 0
    ref: InterfaceRef = None  # type: ignore[assignment]
    operation: str = ""
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    reply_to: str = ""


@dataclass
class _ReplyMsg:
    handler_key = "rex"

    call_id: int = 0
    ok: bool = True
    value: Any = None
    error: str = ""


class RexRPC:
    """Per-network invocation runtime.

    One instance serves all nodes: it registers a handler on every
    host, so both client and server sides are available everywhere.
    """

    def __init__(self, sim: Simulator, network: Network, trader: Trader):
        self.sim = sim
        self.network = network
        self.trader = trader
        self._call_ids = itertools.count(1)
        self._pending: Dict[int, Event] = {}
        self.invocations = 0
        self.timeouts = 0
        for host in network.hosts():
            host.register_handler("rex", self._on_packet)

    def invoke(
        self,
        caller_node: str,
        ref: InterfaceRef,
        operation: str,
        *args: Any,
        deadline: Optional[float] = None,
        **kwargs: Any,
    ) -> Generator:
        """Coroutine: invoke ``operation`` on ``ref`` from ``caller_node``.

        ``deadline`` is the delay bound in seconds; None waits forever.
        Returns the operation's result or raises
        :class:`InvocationTimeout` / :class:`InvocationError`.
        """
        call_id = next(self._call_ids)
        done = Event(self.sim)
        self._pending[call_id] = done
        self.invocations += 1
        request = _RequestMsg(
            call_id=call_id,
            ref=ref,
            operation=operation,
            args=args,
            kwargs=kwargs,
            reply_to=caller_node,
        )
        self.network.send(
            Packet(
                src=caller_node,
                dst=ref.node,
                payload=request,
                size_bits=RPC_WIRE_BYTES * 8,
                priority=Priority.CONTROL,
            )
        )
        if deadline is None:
            reply = yield done
        else:
            index, value = yield AnyOf(
                self.sim, [done, Timeout(self.sim, deadline)]
            )
            if index == 1:
                self._pending.pop(call_id, None)
                self.timeouts += 1
                raise InvocationTimeout(
                    f"{ref}.{operation} exceeded the {deadline * 1e3:.1f} ms bound"
                )
            reply = value
        self._pending.pop(call_id, None)
        if not reply.ok:
            raise InvocationError(reply.error)
        return reply.value

    # -- server side -----------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        message = packet.payload
        if isinstance(message, _RequestMsg):
            self._serve(message)
        elif isinstance(message, _ReplyMsg):
            done = self._pending.get(message.call_id)
            if done is not None and not done.is_set:
                done.set(message)

    def _serve(self, request: _RequestMsg) -> None:
        interface = self.trader.resolve(request.ref)
        if interface is None or interface.node != request.ref.node:
            self._reply(request, ok=False, error=f"unknown interface {request.ref}")
            return
        try:
            op = interface.operation(request.operation)
        except KeyError as exc:
            self._reply(request, ok=False, error=str(exc))
            return
        if op.is_coroutine:
            self.sim.spawn(
                self._serve_coroutine(request, op),
                name=f"rex:{request.ref.type_name}.{request.operation}",
            )
            return
        try:
            value = op.fn(*request.args, **request.kwargs)
        except Exception as exc:  # noqa: BLE001 - marshalled to the caller
            self._reply(request, ok=False, error=repr(exc))
            return
        self._reply(request, ok=True, value=value)

    def _serve_coroutine(self, request: _RequestMsg, op) -> Generator:
        try:
            value = yield from op.fn(*request.args, **request.kwargs)
        except Exception as exc:  # noqa: BLE001 - marshalled to the caller
            self._reply(request, ok=False, error=repr(exc))
            return
        self._reply(request, ok=True, value=value)

    def _reply(self, request: _RequestMsg, ok: bool, value: Any = None,
               error: str = "") -> None:
        self.network.send(
            Packet(
                src=request.ref.node,
                dst=request.reply_to,
                payload=_ReplyMsg(call_id=request.call_id, ok=ok, value=value,
                                  error=error),
                size_bits=RPC_WIRE_BYTES * 8,
                priority=Priority.CONTROL,
            )
        )
