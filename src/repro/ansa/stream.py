"""The Stream abstraction (paper section 2.2).

"Streams are the primary extension we have made to the basic ANSA
model.  They represent underlying CM connections but ... appear as ADT
services with first class status at the programming language level ...
users at the platform level are isolated from the complexity of the
protocol service interface.  Streams contain operations to manipulate
QoS in media specific terms."

A :class:`MediaQoS` subclass expresses QoS the way an application
thinks about it (frames per second, sample rates, colour depth); the
Stream factory translates it into the transport's five-parameter
tolerance specification, establishes the simplex VC, and wraps the
endpoints.  Streams know their physical endpoints, which is what the
HLO consults when selecting the orchestrating node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, Optional

from repro.sim.scheduler import Simulator
from repro.transport.addresses import TransportAddress
from repro.transport.entity import TransportEntity, TSAPBinding, VCEndpoint
from repro.transport.primitives import (
    TDisconnectIndication,
    TRenegotiateConfirm,
    TRenegotiateRequest,
)
from repro.transport.profiles import ClassOfService, ProtocolProfile
from repro.transport.osdu import OPDU
from repro.transport.qos import QoSSpec
from repro.transport.tpdu import DATA_HEADER_BYTES
from repro.transport.service import ConnectionRefused, TransportService
from repro.orchestration.hlo_agent import StreamSpec


@dataclass(frozen=True)
class MediaQoS:
    """Base media-level QoS description.

    Attributes:
        osdu_rate: logical units per media second.
        osdu_bytes: nominal unit size (maximum for VBR media).
        delay_bound: acceptable end-to-end delay, seconds.
        jitter_bound: acceptable delay jitter, seconds.
        loss_tolerance: acceptable fraction of lost units.
        headroom: throughput over-provisioning factor (> 1 keeps the
            transport ahead of the playout clock).
        buffer_osdus: pipeline depth, which is also the priming fill.
    """

    osdu_rate: float
    osdu_bytes: int
    delay_bound: float = 0.5
    jitter_bound: float = 0.1
    loss_tolerance: float = 0.05
    headroom: float = 1.3
    buffer_osdus: int = 16

    def __post_init__(self) -> None:
        if self.osdu_rate <= 0 or self.osdu_bytes <= 0:
            raise ValueError("osdu_rate and osdu_bytes must be positive")
        if self.headroom < 1.0:
            raise ValueError("headroom must be at least 1")

    #: Per-OSDU wire overhead the transport adds (data header + OPDU).
    WIRE_OVERHEAD_BYTES = DATA_HEADER_BYTES + OPDU.WIRE_BYTES

    @property
    def throughput_bps(self) -> float:
        """Required *wire* throughput: payload plus per-unit overhead.

        For small units (voice blocks) the header overhead dominates,
        so translating media rate to transport throughput must count
        it or the paced sender can never sustain the unit rate.
        """
        wire_bytes = self.osdu_bytes + self.WIRE_OVERHEAD_BYTES
        return self.osdu_rate * wire_bytes * 8 * self.headroom

    def to_transport_qos(self, slack: float = 1.5) -> QoSSpec:
        """Translate media terms into the transport's five parameters."""
        return QoSSpec.simple(
            self.throughput_bps,
            delay_s=self.delay_bound,
            jitter_s=self.jitter_bound,
            per=self.loss_tolerance,
            ber=max(self.loss_tolerance / 10.0, 1e-9),
            max_osdu_bytes=self.osdu_bytes,
            buffer_osdus=self.buffer_osdus,
            slack=slack,
        )


@dataclass(frozen=True)
class VideoQoS(MediaQoS):
    """Video expressed as frames (one OSDU per frame).

    Factory: :meth:`of` computes byte sizes from resolution, colour
    depth and an assumed compression ratio.
    """

    fps: float = 25.0
    colour: bool = True

    @staticmethod
    def of(
        fps: float = 25.0,
        width: int = 352,
        height: int = 288,
        colour: bool = True,
        compression_ratio: float = 50.0,
        **overrides,
    ) -> "VideoQoS":
        bits_per_pixel = 24 if colour else 8
        frame_bytes = max(
            int(width * height * bits_per_pixel / 8 / compression_ratio), 1
        )
        defaults = dict(
            osdu_rate=fps,
            osdu_bytes=frame_bytes,
            delay_bound=0.25,
            jitter_bound=0.04,
            loss_tolerance=0.05,
            buffer_osdus=8,
            fps=fps,
            colour=colour,
        )
        defaults.update(overrides)
        return VideoQoS(**defaults)


@dataclass(frozen=True)
class AudioQoS(MediaQoS):
    """Audio expressed as sample blocks (one OSDU per block)."""

    sample_rate: float = 8000.0
    bytes_per_sample: int = 1

    @staticmethod
    def of(
        sample_rate: float = 8000.0,
        bytes_per_sample: int = 1,
        samples_per_osdu: int = 32,
        **overrides,
    ) -> "AudioQoS":
        defaults = dict(
            osdu_rate=sample_rate / samples_per_osdu,
            osdu_bytes=samples_per_osdu * bytes_per_sample,
            delay_bound=0.15,
            jitter_bound=0.02,
            loss_tolerance=0.01,
            buffer_osdus=16,
            sample_rate=sample_rate,
            bytes_per_sample=bytes_per_sample,
        )
        defaults.update(overrides)
        return AudioQoS(**defaults)

    @staticmethod
    def telephone(**overrides) -> "AudioQoS":
        """Telephone-quality voice: 8 kHz, 8-bit (64 kbit/s)."""
        return AudioQoS.of(8000.0, 1, 32, **overrides)

    @staticmethod
    def cd(**overrides) -> "AudioQoS":
        """CD-quality audio: 44.1 kHz, 16-bit stereo."""
        return AudioQoS.of(44100.0, 4, 441, loss_tolerance=0.001, **overrides)


@dataclass(frozen=True)
class TextQoS(MediaQoS):
    """Low-rate timed text (captions, annotations)."""

    @staticmethod
    def captions(units_per_second: float = 2.5, unit_bytes: int = 128,
                 **overrides) -> "TextQoS":
        defaults = dict(
            osdu_rate=units_per_second,
            osdu_bytes=unit_bytes,
            delay_bound=0.5,
            jitter_bound=0.2,
            loss_tolerance=0.0,
            buffer_osdus=4,
        )
        defaults.update(overrides)
        return TextQoS(**defaults)


class Stream:
    """A first-class handle on one established CM connection."""

    def __init__(
        self,
        factory: "StreamFactory",
        media_qos: MediaQoS,
        source: TransportAddress,
        sink: TransportAddress,
        send_endpoint: VCEndpoint,
        recv_endpoint: VCEndpoint,
        binding: TSAPBinding,
        profile: ProtocolProfile,
        cos: ClassOfService,
    ):
        self.factory = factory
        self.media_qos = media_qos
        self.source = source
        self.sink = sink
        self.send_endpoint = send_endpoint
        self.recv_endpoint = recv_endpoint
        self.binding = binding
        self.profile = profile
        self.cos = cos
        self.closed = False

    @property
    def vc_id(self) -> str:
        return self.send_endpoint.vc_id

    @property
    def source_node(self) -> str:
        return self.source.node

    @property
    def sink_node(self) -> str:
        return self.sink.node

    @property
    def osdu_rate(self) -> float:
        return self.media_qos.osdu_rate

    def spec(self, max_drop_per_interval: Optional[int] = None) -> StreamSpec:
        """The stream as the orchestrator sees it.

        The default drop budget follows the media's loss tolerance:
        loss-intolerant media get max-drop# 0 ("a max-drop# of zero
        will often be chosen where a no-loss medium such as voice is
        involved", section 6.3.1.1).
        """
        if max_drop_per_interval is None:
            if self.media_qos.loss_tolerance <= 0.0:
                max_drop_per_interval = 0
            else:
                max_drop_per_interval = max(
                    int(math.ceil(self.media_qos.loss_tolerance
                                  * self.media_qos.osdu_rate * 0.2)), 1
                )
        return StreamSpec(
            vc_id=self.vc_id,
            source_node=self.source_node,
            sink_node=self.sink_node,
            osdu_rate=self.osdu_rate,
            max_drop_per_interval=max_drop_per_interval,
        )

    def renegotiate(self, new_media_qos: MediaQoS) -> Generator:
        """Coroutine: change the stream's QoS in media terms.

        Translates to a T-Renegotiate exchange; returns True on
        success.  On refusal the stream keeps its old QoS (the paper's
        rule: the existing VC is not torn down).
        """
        entity = self.factory.entities[self.source_node]
        new_qos = new_media_qos.to_transport_qos()
        entity.request(
            TRenegotiateRequest(
                initiator=self.binding.address,
                src=self.source,
                dst=self.sink,
                new_qos=new_qos,
                vc_id=self.vc_id,
            )
        )
        # Unrelated primitives are deferred and restored afterwards so
        # the exchange does not swallow another consumer's traffic.
        deferred = []
        try:
            while True:
                primitive = yield self.binding.next_primitive()
                if (
                    isinstance(primitive, TRenegotiateConfirm)
                    and primitive.vc_id == self.vc_id
                ):
                    self.media_qos = new_media_qos
                    return True
                if (
                    isinstance(primitive, TDisconnectIndication)
                    and primitive.vc_id == self.vc_id
                ):
                    return False
                deferred.append(primitive)
        finally:
            for primitive in deferred:
                self.binding.primitives.put_nowait(primitive)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        service = TransportService(self.factory.entities[self.source_node])
        service.disconnect(self.binding, self.vc_id)
        # Release both TSAPs: a stream may be re-established on the
        # same addresses after close (a control-plane restart does
        # exactly that), so close must not leak the bindings.
        self.factory.entities[self.source_node].unbind(self.source.tsap)
        self.factory.entities[self.sink_node].unbind(self.sink.tsap)


class StreamFactory:
    """Creates Streams over a transport entity population."""

    def __init__(self, sim: Simulator, entities: Dict[str, TransportEntity]):
        self.sim = sim
        self.entities = entities

    def create(
        self,
        source: TransportAddress,
        sink: TransportAddress,
        media_qos: MediaQoS,
        profile: ProtocolProfile = ProtocolProfile.CM_RATE_BASED,
        cos: Optional[ClassOfService] = None,
    ) -> Generator:
        """Coroutine: establish a stream and return the :class:`Stream`.

        Binds the source TSAP, auto-accepts at the sink, and performs
        the confirmed connect.  Raises
        :class:`~repro.transport.service.ConnectionRefused` on failure.
        """
        cos = cos or ClassOfService.detect_and_indicate()
        src_service = TransportService(self.entities[source.node])
        sink_service = TransportService(self.entities[sink.node])
        binding = src_service.bind(source.tsap)
        try:
            sink_service.listen(sink.tsap)
        except BaseException:
            self.entities[source.node].unbind(source.tsap)
            raise
        try:
            send_endpoint = yield from src_service.connect(
                binding, sink, media_qos.to_transport_qos(),
                profile=profile, cos=cos,
            )
            recv_endpoint = self.entities[sink.node].endpoint_for(
                send_endpoint.vc_id
            )
            if recv_endpoint is None:
                raise ConnectionRefused("receive endpoint missing after connect")
        except BaseException:
            # A refused or timed-out connect must not leak the TSAPs:
            # the caller's retry re-creates the stream on the same
            # addresses.
            self.entities[source.node].unbind(source.tsap)
            self.entities[sink.node].unbind(sink.tsap)
            raise
        return Stream(
            self,
            media_qos,
            source,
            sink,
            send_endpoint,
            recv_endpoint,
            binding,
            profile,
            cos,
        )
