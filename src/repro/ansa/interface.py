"""ADT interfaces with named operations.

"At the platform level, remote interaction is modelled as the
invocation of named operations in abstract data type (ADT) interfaces
which are accessed in a location independent fashion" (paper section
2.2).  A :class:`ServiceInterface` lives on one node and registers
callables; an :class:`InterfaceRef` is the location-independent handle
clients pass around (and receive from the trader).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict


@dataclass(frozen=True)
class InterfaceRef:
    """Location-transparent reference to a service interface."""

    node: str
    interface_id: int
    type_name: str

    def __str__(self) -> str:
        return f"{self.type_name}@{self.node}#{self.interface_id}"


@dataclass
class Operation:
    """One named operation of an interface."""

    name: str
    fn: Callable[..., Any]
    #: Whether ``fn`` is a simulation coroutine (generator function)
    #: that must be driven by the server's process, or a plain callable.
    is_coroutine: bool = False


_interface_ids = itertools.count(1)


class ServiceInterface:
    """Server-side ADT interface: a bag of named operations."""

    def __init__(self, node: str, type_name: str):
        self.node = node
        self.type_name = type_name
        self.interface_id = next(_interface_ids)
        self.operations: Dict[str, Operation] = {}

    @property
    def ref(self) -> InterfaceRef:
        return InterfaceRef(self.node, self.interface_id, self.type_name)

    def export(self, name: str, fn: Callable[..., Any],
               is_coroutine: bool = False) -> None:
        """Register operation ``name``; rejects duplicates."""
        if name in self.operations:
            raise ValueError(
                f"operation {name!r} already exported on {self.type_name}"
            )
        self.operations[name] = Operation(name, fn, is_coroutine)

    def operation(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise KeyError(
                f"interface {self.type_name!r} has no operation {name!r}"
            ) from None
