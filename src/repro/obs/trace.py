"""Sim-time tracing with Chrome-trace/Perfetto JSON export.

A :class:`Tracer` records *spans* (connect handshakes, Orch.Prime /
Orch.Start legs, regulation intervals, per-packet link occupancy) and
*instant events* (NACKs, recoveries, gate transitions, QoS period
reports) against the virtual clock, and serialises them in the Chrome
trace-event format, so a run can be dropped straight into
``chrome://tracing`` or https://ui.perfetto.dev.

Tracks
    Events land on named tracks ("vc:hostA-vc0", "link:src->dst",
    "node:ws", ...).  Each track becomes one Chrome-trace *process*
    (named via metadata events); spans on one track are emitted as
    complete ("X") events and are expected to nest or not overlap --
    the instrumentation keeps per-VC and per-link tracks serial by
    construction.

Zero cost when disabled
    :data:`NULL_TRACER` is installed on every simulator; every call
    site guards with ``if trace.enabled:`` (or ``trace.packets`` for
    per-packet verbosity), so the disabled path is a single attribute
    load and branch -- nothing is allocated and no simulator events are
    scheduled.  The tracer itself never schedules anything either: it
    only appends to an in-memory list at call time.

This module is a dependency-free leaf: the tracer takes a ``clock``
callable (seconds of virtual time) rather than importing the simulator.
"""

from __future__ import annotations

import json
from enum import IntEnum
from typing import Any, Callable, Dict, List, Optional

Clock = Callable[[], float]

#: Virtual seconds -> Chrome-trace microseconds.
_US = 1e6


class TraceLevel(IntEnum):
    """Verbosity of the instrumentation call sites."""

    OFF = 0
    #: Control-plane events: connects, prime/start/stop, regulation
    #: intervals, NACK/recovery cycles, QoS sample periods.
    LIFECYCLE = 1
    #: Additionally every packet's link occupancy (serialisation span)
    #: and host receive events -- large traces, full wire visibility.
    PACKET = 2


class Span:
    """An open span; close it with :meth:`end` (or via the tracer)."""

    __slots__ = ("_tracer", "name", "track", "cat", "start", "args")

    def __init__(self, tracer: "Tracer", name: str, track: str, cat: str,
                 start: float, args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self.name = name
        self.track = track
        self.cat = cat
        self.start = start
        self.args = args

    def end(self, **extra_args: Any) -> None:
        """Close the span at the current virtual time."""
        if extra_args:
            merged = dict(self.args or {})
            merged.update(extra_args)
            self.args = merged
        self._tracer.complete(
            self.name, self.start, self._tracer.now, track=self.track,
            cat=self.cat, args=self.args,
        )


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled``/``packets`` are plain class attributes (not properties)
    so the guard at instrumentation sites compiles to one attribute
    load; span-returning methods return ``None`` so callers hold no
    object at all while tracing is off.
    """

    enabled = False
    packets = False

    def instant(self, name: str, track: str = "sim", cat: str = "event",
                args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def span(self, name: str, track: str = "sim", cat: str = "span",
             args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def complete(self, name: str, start: float, end: float,
                 track: str = "sim", cat: str = "span",
                 args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def counter(self, name: str, values: Dict[str, float],
                track: str = "sim") -> None:
        return None


#: Shared process-wide no-op tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


class Tracer:
    """Records trace events against a virtual clock.

    Args:
        clock: callable returning virtual time in seconds.
        level: verbosity; call sites consult :attr:`enabled` (LIFECYCLE
            and up) and :attr:`packets` (PACKET and up).
    """

    def __init__(self, clock: Clock, level: TraceLevel = TraceLevel.LIFECYCLE):
        self._clock = clock
        self.level = TraceLevel(level)
        self._events: List[Dict[str, Any]] = []
        self._pids: Dict[str, int] = {}

    # -- state -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.level >= TraceLevel.LIFECYCLE

    @property
    def packets(self) -> bool:
        return self.level >= TraceLevel.PACKET

    @property
    def now(self) -> float:
        return self._clock()

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The recorded events (metadata events excluded)."""
        return list(self._events)

    # -- recording ---------------------------------------------------------

    def _pid(self, track: str) -> int:
        try:
            return self._pids[track]
        except KeyError:
            pid = self._pids[track] = len(self._pids) + 1
            return pid

    def instant(self, name: str, track: str = "sim", cat: str = "event",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point-in-time event ("i" phase, thread scope)."""
        event: Dict[str, Any] = {
            "name": name, "ph": "i", "s": "t",
            "ts": self._clock() * _US,
            "pid": self._pid(track), "tid": 0, "cat": cat,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def span(self, name: str, track: str = "sim", cat: str = "span",
             args: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span starting now; close it with ``span.end()``."""
        return Span(self, name, track, cat, self._clock(), args)

    def complete(self, name: str, start: float, end: float,
                 track: str = "sim", cat: str = "span",
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a closed span ("X" complete event) from start to end."""
        event: Dict[str, Any] = {
            "name": name, "ph": "X",
            "ts": start * _US, "dur": max(end - start, 0.0) * _US,
            "pid": self._pid(track), "tid": 0, "cat": cat,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, name: str, values: Dict[str, float],
                track: str = "sim") -> None:
        """Record a counter sample ("C" event, stacked in the viewer)."""
        self._events.append({
            "name": name, "ph": "C",
            "ts": self._clock() * _US,
            "pid": self._pid(track), "tid": 0,
            "args": dict(values),
        })

    # -- export ------------------------------------------------------------

    def _metadata(self) -> List[Dict[str, Any]]:
        return [
            {
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": track},
            }
            for track, pid in sorted(self._pids.items(), key=lambda kv: kv[1])
        ]

    def to_dict(self) -> Dict[str, Any]:
        """The full trace as a Chrome-trace JSON object."""
        return {
            # list() so ring-buffer subclasses (deque storage) export too.
            "traceEvents": self._metadata() + list(self._events),
            "displayTimeUnit": "ms",
        }

    def export(self, path: str) -> str:
        """Write the trace as Chrome-trace JSON; returns ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
        return path


def merge_traces(
    traces: List[Dict[str, Any]],
    labels: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Fold several exported traces into one Chrome-trace document.

    Each input is a :meth:`Tracer.to_dict` object (or anything with a
    ``traceEvents`` list).  Per-trace pids are sequential small ints, so
    two shards' traces reuse the same pid space for *different* tracks;
    merging rebuilds one pid namespace keyed by track name.  With
    ``labels`` given (one per trace -- shard names, typically) every
    track is prefixed ``"<label>/"`` so same-named tracks from
    different shards stay distinct lanes; without labels, same-named
    tracks merge into a single lane (correct when track names are
    already globally unique, as namespaced fleet host names are).

    Event payloads are not copied deeply -- callers must not mutate the
    inputs afterwards.  Events keep per-trace recording order,
    concatenated; Chrome-trace consumers sort by timestamp themselves.
    """
    if labels is not None and len(labels) != len(traces):
        raise ValueError(
            f"got {len(labels)} labels for {len(traces)} traces"
        )
    pids: Dict[str, int] = {}
    merged: List[Dict[str, Any]] = []
    for index, trace in enumerate(traces):
        events = trace["traceEvents"] if isinstance(trace, dict) else trace
        # Recover this trace's pid -> track mapping from its metadata.
        tracks: Dict[int, str] = {}
        for event in events:
            if event.get("ph") == "M" and event.get("name") == "process_name":
                tracks[event["pid"]] = event["args"]["name"]
        prefix = f"{labels[index]}/" if labels is not None else ""
        remap: Dict[int, int] = {}
        for old_pid, track in tracks.items():
            name = prefix + track
            pid = pids.get(name)
            if pid is None:
                pid = pids[name] = len(pids) + 1
            remap[old_pid] = pid
        for event in events:
            if event.get("ph") == "M":
                continue
            out = dict(event)
            out["pid"] = remap.get(event.get("pid"), event.get("pid"))
            merged.append(out)
    metadata = [
        {
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": track},
        }
        for track, pid in sorted(pids.items(), key=lambda kv: kv[1])
    ]
    return {
        "traceEvents": metadata + merged,
        "displayTimeUnit": "ms",
    }
