"""Summarise an exported Chrome-trace JSON or audit snapshot.

Usage::

    python -m repro.obs.report trace.json [--category CAT] [--top N]
    python -m repro.obs.report run audit.json

The first form prints a trace's time range, the event counts per
category, and a duration summary per span name -- the quick look
before (or instead of) opening the file in Perfetto.

The ``run`` form renders a :class:`~repro.obs.audit.QoSAuditor`
snapshot (``Runtime.export_audit``) as a paper-style run report: a
per-VC conformance table with Table-2 columns, the causal drill-down
of each violated period (lost packets and overlapping fault episodes),
renegotiation outcomes, and a per-group orchestration section
comparing the skew histogram against the HLO tightness bound.

Merged snapshots (:func:`repro.obs.audit.merge_snapshots` -- what a
sharded ``python -m repro.soak`` run emits) render through the same
path: the header names the source shards, attached sections render one
block per source, and the per-VC table is capped at ``--max-rows``
rows (worst conformance first) so a 100k-VC fleet report stays
readable.  The merge relies on VC ids being disjoint across sources --
sharded fleets namespace host names per shard, independent runs must
merge with ``namespace=True`` -- so every table row keeps a unique id.

Both forms exit non-zero with a one-line message when the file is
missing, truncated, or not valid JSON of the expected shape.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional

from repro.metrics.stats import summarize
from repro.metrics.table import Table


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read and validate a Chrome-trace JSON file; returns its events."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, list):
        events = data  # bare-array variant of the format
    elif isinstance(data, dict) and isinstance(data.get("traceEvents"), list):
        events = data["traceEvents"]
    else:
        raise ValueError(
            f"{path!r} is not Chrome-trace JSON "
            "(expected an object with a traceEvents array)"
        )
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"malformed trace event: {event!r}")
    return events


def _process_names(events: List[Dict[str, Any]]) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event.get("pid", 0)] = event.get("args", {}).get("name", "?")
    return names


def render(path: str, category: Optional[str] = None, top: int = 20) -> str:
    """Build the textual report for one trace file."""
    events = load_events(path)
    tracks = _process_names(events)
    payload = [e for e in events if e.get("ph") != "M"]
    if category:
        payload = [e for e in payload if e.get("cat") == category]
    blocks: List[str] = []
    if not payload:
        return f"{path}: no events" + (f" in category {category!r}" if category else "")

    ts_values = [e["ts"] for e in payload if "ts" in e]
    t0, t1 = min(ts_values), max(
        e["ts"] + e.get("dur", 0.0) for e in payload if "ts" in e
    )
    blocks.append(
        f"{path}: {len(payload)} events on {len(tracks)} tracks, "
        f"{(t1 - t0) / 1e6:.6g} s of virtual time "
        f"({t0 / 1e6:.6g} .. {t1 / 1e6:.6g})"
    )

    by_cat: Dict[str, int] = defaultdict(int)
    for event in payload:
        by_cat[event.get("cat", "?")] += 1
    cat_table = Table(["category", "events"], title="Events per category")
    for cat, count in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        cat_table.add(cat, count)
    blocks.append(cat_table.render())

    durations: Dict[str, List[float]] = defaultdict(list)
    for event in payload:
        if event.get("ph") == "X":
            durations[event.get("name", "?")].append(
                event.get("dur", 0.0) / 1e6
            )
    if durations:
        span_table = Table(
            ["span", "count", "mean (s)", "p95 (s)", "max (s)"],
            title=f"Span durations (top {top} by count)",
        )
        ranked = sorted(durations.items(), key=lambda kv: -len(kv[1]))[:top]
        for name, values in ranked:
            summary = summarize(values)
            span_table.add(
                name, summary.count, summary.mean, summary.p95,
                summary.maximum,
            )
        blocks.append(span_table.render())
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Audit reports (``run`` mode)
# ---------------------------------------------------------------------------

#: Table-2 parameter names, in paper order.
_DIMENSIONS = (
    "throughput", "delay", "jitter", "packet_error_rate", "bit_error_rate",
)


def load_audit(path: str) -> Dict[str, Any]:
    """Read and validate a QoSAuditor snapshot; returns the document."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or not isinstance(
        data.get("connections"), list
    ):
        raise ValueError(
            f"{path!r} is not an audit snapshot "
            "(expected an object with a connections array; "
            "produce one with Runtime.export_audit)"
        )
    return data


def _fmt(value: Any, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _reneg_cell(renegotiations: List[Dict[str, Any]]) -> str:
    if not renegotiations:
        return "-"
    counts: Dict[str, int] = defaultdict(int)
    for item in renegotiations:
        counts[item.get("outcome", "?")] += 1
    return ", ".join(f"{n} {outcome}" for outcome, n in sorted(counts.items()))


def _worst_connections(
    connections: List[Dict[str, Any]], max_rows: Optional[int],
) -> List[Dict[str, Any]]:
    """The ``max_rows`` worst VCs (all of them when under the cap).

    "Worst" ranks by violated-period count, then lowest conformance,
    then vc id -- a fleet report surfaces the misbehaving connections
    and summarises the healthy bulk elsewhere.
    """
    if max_rows is None or len(connections) <= max_rows:
        return connections

    def _rank(conn: Dict[str, Any]):
        counts = conn.get("counts", {})
        conformance = conn.get("conformance")
        return (
            -counts.get("violated", 0),
            conformance if conformance is not None else 2.0,
            str(conn.get("vc", "")),
        )

    return sorted(connections, key=_rank)[:max_rows]


def _conformance_table(connections: List[Dict[str, Any]],
                       max_rows: Optional[int] = None) -> str:
    """Per-VC Table-2 rows; capped at ``max_rows`` worst VCs if set."""
    shown = _worst_connections(connections, max_rows)
    note = ""
    if len(shown) < len(connections):
        note = (
            f"\n  ... and {len(connections) - max_rows} more "
            "connection(s) not shown (rows capped; fleet totals in the "
            "header count every VC)"
        )
    table = Table(
        ["vc", "periods", "met", "degr", "viol", "idle", "conform",
         "ttfv (s)", *(_DIM_HEADERS), "reneg", "release"],
        title="Per-VC conformance (Table-2 dimensions; counts are "
              "violated periods naming the dimension)",
    )
    for conn in shown:
        counts = conn.get("counts", {})
        by_dim: Dict[str, int] = defaultdict(int)
        for entry in conn.get("timeline", ()):
            for violation in entry.get("violations", ()):
                by_dim[violation.get("parameter", "?")] += 1
        released = conn.get("released")
        table.add(
            conn.get("vc", "?"),
            sum(counts.values()),
            counts.get("met", 0),
            counts.get("degraded", 0),
            counts.get("violated", 0),
            counts.get("idle", 0),
            _fmt(conn.get("conformance"), 3),
            _fmt(conn.get("time_to_first_violation"), 3),
            *(by_dim.get(dim, 0) for dim in _DIMENSIONS),
            _reneg_cell(conn.get("renegotiations", ())),
            released.get("reason", "?") if released else "-",
        )
    return table.render() + note


_DIM_HEADERS = ("thr", "delay", "jitter", "per", "ber")


def _drilldown_lines(conn: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    for drill in conn.get("drilldowns", ()):
        violations = drill.get("violations", ())
        what = "; ".join(
            f"{v.get('parameter', '?')} (contracted "
            f"{_fmt(v.get('contracted'))}, observed "
            f"{_fmt(v.get('observed'))})"
            for v in violations
        ) or "?"
        lines.append(
            f"  vc {conn.get('vc', '?')} period "
            f"[{_fmt(drill.get('t0'), 6)} .. {_fmt(drill.get('t1'), 6)}] "
            f"violated {what}"
        )
        sent = drill.get("sent", 0)
        delivered = drill.get("delivered", 0)
        lost = drill.get("lost", ())
        causes: Dict[str, List[str]] = defaultdict(list)
        for fate in lost:
            where = fate.get("where") or "?"
            causes[f"{fate.get('cause', '?')} on {where}"].append(
                str(fate.get("packet_id"))
            )
        lost_text = "; ".join(
            f"{len(ids)} by {cause} (packet ids {', '.join(ids[:8])})"
            for cause, ids in sorted(causes.items())
        )
        lines.append(
            f"    packets: {sent} sent, {delivered} delivered, "
            f"{len(lost)} lost" + (f" -- {lost_text}" if lost_text else "")
        )
        faults = drill.get("faults", ())
        if faults:
            fault_text = "; ".join(
                f"{f.get('name', '?')} "
                f"[{_fmt(f.get('start'), 6)} .. {_fmt(f.get('end'), 6)}]"
                for f in faults
            )
            lines.append(f"    faults: {fault_text}")
    suppressed = conn.get("drilldowns_suppressed", 0)
    if suppressed:
        lines.append(
            f"    (+{suppressed} further violated periods not drilled down)"
        )
    if not lines:
        # No violated periods: renegotiation/release outcomes are already
        # on the conformance table; a contextless detail line only confuses.
        return lines
    for item in conn.get("renegotiations", ()):
        outcome = item.get("outcome", "?")
        if outcome == "confirmed":
            detail = (
                f"{_fmt(item.get('from_bps'))} -> "
                f"{_fmt(item.get('to_bps'))} bps"
            )
        else:
            detail = item.get("reason") or "?"
        lines.append(
            f"    renegotiation {outcome} @{_fmt(item.get('at'), 6)} "
            f"({detail})"
        )
    released = conn.get("released")
    if released:
        lines.append(
            f"    released @{_fmt(released.get('at'), 6)} "
            f"({released.get('reason', '?')})"
        )
    return lines


def _hist_row(name: str, hist: Dict[str, Any]) -> List[Any]:
    return [
        name, hist.get("count", 0), _fmt(hist.get("p50")),
        _fmt(hist.get("p95")), _fmt(hist.get("p99")), _fmt(hist.get("p999")),
        _fmt(hist.get("max")),
    ]


def _orchestration_section(groups: List[Dict[str, Any]]) -> List[str]:
    blocks: List[str] = []
    table = Table(
        ["session", "streams", "intervals", "bound (s)", "p50", "p95",
         "p99", "p999", "max", "over", "outages", "recoveries", "drops"],
        title="Orchestration: per-group skew vs. HLO tightness bound (s)",
    )
    for group in groups:
        skew = group.get("skew", {})
        table.add(
            group.get("session", "?"),
            len(group.get("streams", ())),
            group.get("intervals", 0),
            _fmt(group.get("bound"), 3),
            _fmt(skew.get("p50")), _fmt(skew.get("p95")),
            _fmt(skew.get("p99")), _fmt(skew.get("p999")),
            _fmt(skew.get("max")),
            group.get("over_bound", 0),
            len(group.get("outages", ())),
            len(group.get("recoveries", ())),
            sum(group.get("regulation_drops", {}).values()),
        )
    blocks.append(table.render())
    for group in groups:
        events = [
            (e.get("at", 0.0), "outage", e.get("vc", "?"))
            for e in group.get("outages", ())
        ] + [
            (e.get("at", 0.0), "recovery", e.get("vc", "?"))
            for e in group.get("recoveries", ())
        ]
        if events:
            timeline = "; ".join(
                f"{kind} {vc} @{_fmt(at, 6)}"
                for at, kind, vc in sorted(events)
            )
            blocks.append(f"  {group.get('session', '?')}: {timeline}")
    return blocks


def _controlplane_section(
    section: Any, labels: Optional[List[str]] = None
) -> List[str]:
    """Render the control plane's desired/actual view.

    ``section`` is one control-plane snapshot, or -- when the audit was
    merged from several shards -- a list with one snapshot per source,
    in merge order.  Each source renders as its own block, headed by
    the matching merge label (``merged_from.labels``) when available,
    else by its 1-based position.  Stream ids inside each block are
    shard-local names; the id-namespacing rule (see
    :func:`repro.obs.audit.merge_snapshots`) guarantees they are
    already disjoint across sources, so no re-prefixing happens here.
    """
    merged = isinstance(section, list)
    snapshots = section if merged else [section]
    blocks: List[str] = []
    for index, snap in enumerate(snapshots):
        if merged:
            if labels is not None and index < len(labels):
                origin = f" [{labels[index]}]"
            else:
                origin = f" [{index + 1}/{len(snapshots)}]"
        else:
            origin = ""
        leases = snap.get("leases", {})
        violations = leases.get("violations", [])
        events = snap.get("events", {})
        blocks.append(
            f"Control plane{origin}: "
            f"{'converged' if snap.get('converged') else 'NOT converged'}; "
            f"{leases.get('granted_total', 0)} lease(s) granted, "
            f"{len(violations)} double-grant violation(s)"
            + (f" on {', '.join(violations)}" if violations else "")
            + f"; {events.get('published', 0)} hook event(s) published, "
            f"{events.get('delivered', 0)} delivered"
        )
        paths = snap.get("paths", ())
        if not paths:
            continue
        table = Table(
            ["stream", "desired", "actual", "run", "session", "conv",
             "starts", "stops", "outages", "recov", "fails", "last error"],
            title=f"Control plane{origin}: per-stream desired vs. "
                  "actual state",
        )
        for path_entry in paths:
            desired = path_entry.get("desired") or {}
            actual = path_entry.get("actual") or {}
            table.add(
                path_entry.get("stream_id", "?"),
                ("run" if desired.get("running") else "stop")
                if desired else "-",
                "run" if actual.get("running") else "stop",
                actual.get("run_id") or desired.get("run_id") or "-",
                actual.get("session_id") or "-",
                "yes" if path_entry.get("converged") else "NO",
                path_entry.get("starts", 0),
                path_entry.get("stops", 0),
                path_entry.get("outages", 0),
                path_entry.get("recoveries", 0),
                path_entry.get("failures", 0),
                path_entry.get("last_error") or "-",
            )
        blocks.append(table.render())
    return blocks


def render_run(path: str, max_rows: Optional[int] = 200) -> str:
    """Build the run report for one audit snapshot.

    ``max_rows`` caps the per-VC conformance table for fleet-scale
    audits (``None`` disables the cap); the header and histograms
    always cover every connection.
    """
    data = load_audit(path)
    connections = data["connections"]
    groups = data.get("groups", [])
    summary = data.get("summary", {})
    blocks: List[str] = []
    counts = summary.get("counts", {})
    blocks.append(
        f"{path}: audit of {len(connections)} connection(s), "
        f"{summary.get('periods', 0)} sample periods "
        f"(met {counts.get('met', 0)}, degraded {counts.get('degraded', 0)}, "
        f"violated {counts.get('violated', 0)}, idle {counts.get('idle', 0)}); "
        f"conformance {_fmt(summary.get('conformance'), 3)}, "
        f"mean time-to-first-violation "
        f"{_fmt(summary.get('mean_time_to_first_violation'), 3)} s"
    )
    merged_from = data.get("merged_from")
    merge_labels: Optional[List[str]] = None
    if merged_from:
        merge_labels = merged_from.get("labels")
        origin = (
            ", ".join(merge_labels) if merge_labels
            else f"{merged_from.get('snapshots', '?')} snapshot(s)"
        )
        blocks.append(
            f"Merged from {merged_from.get('snapshots', '?')} "
            f"snapshot(s): {origin}"
            + (" (vc ids namespaced per source)"
               if merged_from.get("namespaced") else "")
        )
    baseline_diff = data.get("baseline_diff")
    if baseline_diff is not None:
        from repro.obs.baseline import render_baseline_diff

        blocks.append(render_baseline_diff(baseline_diff))
    if connections:
        blocks.append(_conformance_table(connections, max_rows=max_rows))
        drill_blocks: List[str] = []
        for conn in connections:
            lines = _drilldown_lines(conn)
            if lines:
                drill_blocks.extend(lines)
        if drill_blocks:
            blocks.append(
                "Violated periods, drilled down to causal packets and "
                "faults:\n" + "\n".join(drill_blocks)
            )
    if groups:
        blocks.extend(_orchestration_section(groups))
    controlplane = data.get("sections", {}).get("controlplane")
    if controlplane is not None:
        blocks.extend(
            _controlplane_section(controlplane, labels=merge_labels)
        )
    histograms = data.get("histograms", {})
    if histograms:
        hist_table = Table(
            ["metric", "samples", "p50", "p95", "p99", "p999", "max"],
            title="Fleet latency histograms (s)",
        )
        for name, hist in sorted(histograms.items()):
            hist_table.add(*_hist_row(name, hist))
        blocks.append(hist_table.render())
    return "\n\n".join(blocks)


def render_run_json(
    path: str, max_rows: Optional[int] = 200,
) -> Dict[str, Any]:
    """The run report as a machine-readable document.

    Mirrors :func:`render_run` section for section -- summary header,
    merge provenance, baseline diff, the ranked/capped per-VC rows
    (with the same per-dimension violated-period counts the table
    derives from timelines), groups, attached sections, histograms --
    so scripts can consume what the text report shows without scraping
    tables.  Raises the same exceptions as :func:`render_run` on a
    malformed snapshot, so the CLI's exit codes are unchanged.
    """
    data = load_audit(path)
    connections = data["connections"]
    shown = _worst_connections(connections, max_rows)
    rows: List[Dict[str, Any]] = []
    for conn in shown:
        by_dim: Dict[str, int] = defaultdict(int)
        for entry in conn.get("timeline", ()):
            for violation in entry.get("violations", ()):
                by_dim[violation.get("parameter", "?")] += 1
        released = conn.get("released")
        rows.append({
            "vc": conn.get("vc"),
            "counts": dict(conn.get("counts", {})),
            "conformance": conn.get("conformance"),
            "time_to_first_violation":
                conn.get("time_to_first_violation"),
            "violations_by_dimension":
                {dim: by_dim[dim] for dim in _DIMENSIONS if by_dim[dim]},
            "renegotiations": len(conn.get("renegotiations", ())),
            "released": released.get("reason") if released else None,
            "drilldowns": conn.get("drilldowns", []),
            "drilldowns_suppressed":
                conn.get("drilldowns_suppressed", 0),
        })
    return {
        "kind": "repro-run-report",
        "path": path,
        "now": data.get("now"),
        "summary": data.get("summary", {}),
        "merged_from": data.get("merged_from"),
        "baseline_diff": data.get("baseline_diff"),
        "connections_total": len(connections),
        "connections_shown": len(shown),
        "connections": rows,
        "groups": data.get("groups", []),
        "sections": data.get("sections", {}),
        "histograms": data.get("histograms", {}),
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _main_run(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report run",
        description="Render a QoS conformance run report from an audit "
                    "snapshot (Runtime.export_audit).",
    )
    parser.add_argument("audit", help="path to an exported audit JSON")
    parser.add_argument(
        "--max-rows", type=int, default=200,
        help="cap the per-VC table at the N worst connections "
             "(0 = unlimited; default 200)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report sections as machine-readable JSON "
             "instead of rendered tables (same exit codes)",
    )
    args = parser.parse_args(argv)
    max_rows = args.max_rows if args.max_rows > 0 else None
    try:
        if args.json:
            text = json.dumps(
                render_run_json(args.audit, max_rows=max_rows), indent=2,
            )
        else:
            text = render_run(args.audit, max_rows=max_rows)
    except OSError as exc:
        print(f"cannot read {args.audit!r}: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        print(f"invalid audit snapshot: {exc}", file=sys.stderr)
        return 1
    try:
        print(text)
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed the pipe early; not an error.
        sys.stderr.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _main_run(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("trace", help="path to an exported Chrome-trace JSON")
    parser.add_argument("--category", help="only report this event category")
    parser.add_argument("--top", type=int, default=20,
                        help="span names to list (by event count)")
    args = parser.parse_args(argv)
    try:
        text = render(args.trace, category=args.category, top=args.top)
    except OSError as exc:
        print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        # Truncated download, wrong file, hand-edited JSON: report and
        # exit non-zero instead of surfacing a traceback.
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    try:
        print(text)
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed the pipe early; not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
