"""Summarise an exported Chrome-trace JSON file.

Usage::

    python -m repro.obs.report trace.json [--category CAT] [--top N]

Prints the trace's time range, the event counts per category, and a
duration summary per span name -- the quick look before (or instead of)
opening the file in Perfetto.  Exits non-zero when the file is missing
or is not a valid Chrome-trace JSON object.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional

from repro.metrics.stats import summarize
from repro.metrics.table import Table


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read and validate a Chrome-trace JSON file; returns its events."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, list):
        events = data  # bare-array variant of the format
    elif isinstance(data, dict) and isinstance(data.get("traceEvents"), list):
        events = data["traceEvents"]
    else:
        raise ValueError(
            f"{path!r} is not Chrome-trace JSON "
            "(expected an object with a traceEvents array)"
        )
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"malformed trace event: {event!r}")
    return events


def _process_names(events: List[Dict[str, Any]]) -> Dict[int, str]:
    names: Dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event.get("pid", 0)] = event.get("args", {}).get("name", "?")
    return names


def render(path: str, category: Optional[str] = None, top: int = 20) -> str:
    """Build the textual report for one trace file."""
    events = load_events(path)
    tracks = _process_names(events)
    payload = [e for e in events if e.get("ph") != "M"]
    if category:
        payload = [e for e in payload if e.get("cat") == category]
    blocks: List[str] = []
    if not payload:
        return f"{path}: no events" + (f" in category {category!r}" if category else "")

    ts_values = [e["ts"] for e in payload if "ts" in e]
    t0, t1 = min(ts_values), max(
        e["ts"] + e.get("dur", 0.0) for e in payload if "ts" in e
    )
    blocks.append(
        f"{path}: {len(payload)} events on {len(tracks)} tracks, "
        f"{(t1 - t0) / 1e6:.6g} s of virtual time "
        f"({t0 / 1e6:.6g} .. {t1 / 1e6:.6g})"
    )

    by_cat: Dict[str, int] = defaultdict(int)
    for event in payload:
        by_cat[event.get("cat", "?")] += 1
    cat_table = Table(["category", "events"], title="Events per category")
    for cat, count in sorted(by_cat.items(), key=lambda kv: -kv[1]):
        cat_table.add(cat, count)
    blocks.append(cat_table.render())

    durations: Dict[str, List[float]] = defaultdict(list)
    for event in payload:
        if event.get("ph") == "X":
            durations[event.get("name", "?")].append(
                event.get("dur", 0.0) / 1e6
            )
    if durations:
        span_table = Table(
            ["span", "count", "mean (s)", "p95 (s)", "max (s)"],
            title=f"Span durations (top {top} by count)",
        )
        ranked = sorted(durations.items(), key=lambda kv: -len(kv[1]))[:top]
        for name, values in ranked:
            summary = summarize(values)
            span_table.add(
                name, summary.count, summary.mean, summary.p95,
                summary.maximum,
            )
        blocks.append(span_table.render())
    return "\n\n".join(blocks)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("trace", help="path to an exported Chrome-trace JSON")
    parser.add_argument("--category", help="only report this event category")
    parser.add_argument("--top", type=int, default=20,
                        help="span names to list (by event count)")
    args = parser.parse_args(argv)
    try:
        print(render(args.trace, category=args.category, top=args.top))
    except FileNotFoundError:
        print(f"no trace file at {args.trace!r}", file=sys.stderr)
        return 1
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed the pipe early; not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
