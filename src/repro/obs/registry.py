"""Named metrics with *windowed* accumulators that reset correctly.

The QoS monitor (Table 2) and the blocking-time statistics of section
6.3.1.2 are both **per-sample-period** measurements: at every period
boundary the accumulated observations are snapshotted and the window
starts over.  Scattering that reset across a dozen ad-hoc attributes is
exactly how the monitor's throughput window ended up never resetting;
this module centralises the idiom so period accounting is correct by
construction -- :meth:`WindowedStat.roll` snapshots *and* clears every
field in one place, and there is no way to reset half a window.

Nothing here imports the simulator: accumulators take a ``clock``
callable returning the current time in seconds, so the kernel itself
can own a registry without an import cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

Clock = Callable[[], float]


def _zero_clock() -> float:
    return 0.0


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that moves both ways (queue depth, gate state...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed sample window of a :class:`WindowedStat`."""

    start: float
    end: float
    count: int
    total: float
    minimum: float
    maximum: float
    #: Time and value of the first observation in the window (None/0
    #: when the window saw nothing).
    first_at: Optional[float]
    last_at: Optional[float]
    first_value: float

    @property
    def active_span(self) -> float:
        """first-to-last observation time inside this window only."""
        if self.first_at is None or self.last_at is None or self.count < 2:
            return 0.0
        return self.last_at - self.first_at

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")


class WindowedStat:
    """Scalar accumulator over one sample period.

    ``add()`` folds in an observation; ``roll()`` returns the closed
    window and atomically starts a fresh one.  *Every* field -- count,
    total, extrema, and crucially the first/last observation timestamps
    -- belongs to the window and is cleared by the roll, so a stale
    "first arrival" can never leak into the next period.
    """

    __slots__ = (
        "name", "_clock", "window_start",
        "count", "total", "minimum", "maximum",
        "first_at", "last_at", "first_value",
    )

    def __init__(self, name: str, clock: Clock = _zero_clock):
        self.name = name
        self._clock = clock
        self.window_start = clock()
        self._clear()

    def _clear(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.first_at: Optional[float] = None
        self.last_at: Optional[float] = None
        self.first_value = 0.0

    def add(self, value: float, at: Optional[float] = None) -> None:
        now = self._clock() if at is None else at
        if self.first_at is None:
            self.first_at = now
            self.first_value = value
        self.last_at = now
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def snapshot(self) -> WindowSnapshot:
        """The current (still-open) window, without resetting."""
        return WindowSnapshot(
            start=self.window_start,
            end=self._clock(),
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            first_at=self.first_at,
            last_at=self.last_at,
            first_value=self.first_value,
        )

    def roll(self) -> WindowSnapshot:
        """Close the window: snapshot it and reset *everything*."""
        snap = self.snapshot()
        self.window_start = snap.end
        self._clear()
        return snap


class WindowedSeries:
    """Sample-retaining windowed accumulator (for mean/stddev stats).

    Retains the raw observations of the current window so that the
    two-pass mean/sample-variance the jitter statistic needs can be
    computed exactly; ``roll()`` hands the samples over and clears.
    """

    __slots__ = ("name", "_clock", "window_start", "samples")

    def __init__(self, name: str, clock: Clock = _zero_clock):
        self.name = name
        self._clock = clock
        self.window_start = clock()
        self.samples: List[float] = []

    def __len__(self) -> int:
        return len(self.samples)

    def add(self, value: float) -> None:
        self.samples.append(value)

    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    def sample_std(self) -> float:
        """Two-pass sample standard deviation (0.0 below two samples)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean()
        var = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        return math.sqrt(var)

    def roll(self) -> List[float]:
        """Close the window: return its samples and start fresh."""
        samples = self.samples
        self.samples = []
        self.window_start = self._clock()
        return samples


class SpanAccumulator:
    """Per-key accumulated duration of (possibly still-open) spans.

    The section 6.3.1.2 statistic: how long each role (application /
    protocol) spent blocked, sampled at interval boundaries *while
    threads may still be parked*.  ``begin()`` opens a span and returns
    a token; ``end(token)`` folds its duration into the key's total;
    ``total(key)`` includes open spans up to now; ``reset()`` re-bases
    open spans to now so the next window only sees its own share.
    """

    __slots__ = ("name", "_clock", "_total", "_count", "_open", "_next_token")

    def __init__(self, name: str, clock: Clock = _zero_clock):
        self.name = name
        self._clock = clock
        self._total: Dict[str, float] = {}
        self._count: Dict[str, int] = {}
        self._open: Dict[int, Tuple[str, float]] = {}
        self._next_token = 0

    def begin(self, key: str) -> int:
        self._next_token += 1
        token = self._next_token
        self._open[token] = (key, self._clock())
        self._count[key] = self._count.get(key, 0) + 1
        return token

    def end(self, token: int) -> None:
        entry = self._open.pop(token, None)
        if entry is None:
            return
        key, started = entry
        self._total[key] = self._total.get(key, 0.0) + (self._clock() - started)

    def total(self, key: str) -> float:
        """Accumulated seconds for ``key``, open spans included."""
        total = self._total.get(key, 0.0)
        now = self._clock()
        for open_key, started in self._open.values():
            if open_key == key:
                total += now - started
        return total

    def count(self, key: str) -> int:
        return self._count.get(key, 0)

    def reset(self) -> None:
        """Zero the closed totals; open spans restart from now."""
        self._total.clear()
        self._count.clear()
        now = self._clock()
        for token, (key, _started) in list(self._open.items()):
            self._open[token] = (key, now)


class MetricsRegistry:
    """Namespace of named metrics for one runtime.

    Components allocate their instruments once (``counter(name)`` etc.
    is get-or-create, so views and owners share the same object) and
    the registry renders a flat snapshot for reports.  One registry
    hangs off every :class:`~repro.sim.scheduler.Simulator` as
    ``sim.metrics``; its clock is the virtual clock.
    """

    def __init__(self, clock: Clock = _zero_clock):
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._windows: Dict[str, WindowedStat] = {}
        self._series: Dict[str, WindowedSeries] = {}
        self._spans: Dict[str, SpanAccumulator] = {}

    @property
    def now(self) -> float:
        return self._clock()

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            gauge = self._gauges[name] = Gauge(name)
            return gauge

    def window(self, name: str) -> WindowedStat:
        try:
            return self._windows[name]
        except KeyError:
            window = self._windows[name] = WindowedStat(name, self._clock)
            return window

    def series(self, name: str) -> WindowedSeries:
        try:
            return self._series[name]
        except KeyError:
            series = self._series[name] = WindowedSeries(name, self._clock)
            return series

    def span_accumulator(self, name: str) -> SpanAccumulator:
        try:
            return self._spans[name]
        except KeyError:
            spans = self._spans[name] = SpanAccumulator(name, self._clock)
            return spans

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def as_dict(self) -> Dict[str, float]:
        """Flat name -> value snapshot of counters and gauges."""
        values: Dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            values[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            values[name] = gauge.value
        return values

    def snapshot(self) -> Dict[str, object]:
        """Full JSON-serialisable snapshot of every instrument.

        Counters and gauges report their values; windowed stats report
        their *open* window (count/total/extrema, with infinities
        mapped to None so the dict survives ``json.dumps``); series
        report sample counts.  Reading the snapshot never mutates any
        window.
        """
        windows: Dict[str, Dict[str, object]] = {}
        for name, window in sorted(self._windows.items()):
            snap = window.snapshot()
            windows[name] = {
                "start": snap.start,
                "end": snap.end,
                "count": snap.count,
                "total": snap.total,
                "min": None if snap.count == 0 else snap.minimum,
                "max": None if snap.count == 0 else snap.maximum,
            }
        return {
            "now": self._clock(),
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "windows": windows,
            "series": {
                name: len(series)
                for name, series in sorted(self._series.items())
            },
        }

    def snapshot_sections(self) -> Iterator[Tuple[str, object]]:
        """:meth:`snapshot`'s top-level sections, one at a time.

        Yields ``(key, value)`` pairs in *sorted key order* (the order
        ``json.dumps(..., sort_keys=True)`` would emit them), building
        each section only when requested -- the granularity the
        streaming JSON writer in :mod:`repro.obs.export` works at, so
        the full snapshot dict never has to be materialised.
        """
        yield "counters", {
            name: counter.value
            for name, counter in sorted(self._counters.items())
        }
        yield "gauges", {
            name: gauge.value
            for name, gauge in sorted(self._gauges.items())
        }
        yield "now", self._clock()
        yield "series", {
            name: len(series)
            for name, series in sorted(self._series.items())
        }
        windows: Dict[str, Dict[str, object]] = {}
        for name, window in sorted(self._windows.items()):
            snap = window.snapshot()
            windows[name] = {
                "start": snap.start,
                "end": snap.end,
                "count": snap.count,
                "total": snap.total,
                "min": None if snap.count == 0 else snap.minimum,
                "max": None if snap.count == 0 else snap.maximum,
            }
        yield "windows", windows


def merge_snapshots(
    snapshots: List[Dict[str, object]],
) -> Dict[str, object]:
    """Fold several :meth:`MetricsRegistry.snapshot` dicts into one.

    The fleet view of a sharded run: counters and gauges sum per name
    (gauges on the convention that every fleet gauge is an additive
    occupancy -- queue depths, running streams), windowed stats combine
    count/total/extrema with the earliest start and latest end, series
    sample counts sum, and ``now`` is the latest shard clock.  Inputs
    are not mutated.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    windows: Dict[str, Dict[str, object]] = {}
    series: Dict[str, int] = {}
    now = 0.0
    for snap in snapshots:
        now = max(now, snap.get("now", 0.0))
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, win in snap.get("windows", {}).items():
            out = windows.get(name)
            if out is None:
                windows[name] = dict(win)
                continue
            out["start"] = min(out["start"], win["start"])
            out["end"] = max(out["end"], win["end"])
            out["count"] += win["count"]
            out["total"] += win["total"]
            for key, pick in (("min", min), ("max", max)):
                ours, theirs = out[key], win[key]
                if ours is None:
                    out[key] = theirs
                elif theirs is not None:
                    out[key] = pick(ours, theirs)
        for name, count in snap.get("series", {}).items():
            series[name] = series.get(name, 0) + count
    return {
        "now": now,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "windows": dict(sorted(windows.items())),
        "series": dict(sorted(series.items())),
    }
