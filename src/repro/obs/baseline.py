"""Conformance baselines: load, diff, and annotate audit documents.

A baselines file (``BASELINES.json`` at the repo root) pins each
scenario-matrix cell's expected conformance so CI can detect *drift*
-- a behavioural change in transport, orchestration, fault handling or
the auditor itself that moves a cell's met/judged fraction -- without
pinning every per-period number.  The format:

.. code-block:: json

    {
      "tolerance": 0.02,
      "cells": {
        "cbr/cells/calm@s0": {"conformance": 0.8333, "periods": 90,
                               "connections": 6}
      }
    }

``tolerance`` is the default band (a cell drifts when its observed
conformance leaves ``baseline +/- tolerance``); ``periods`` and
``connections`` are exact-match guards against silently losing audit
coverage.  :func:`diff_cell` produces one cell's verdict dict, and
:func:`attach_baseline_diff` embeds it in the audit document so
``python -m repro.obs.report run`` renders the comparison alongside
the conformance tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Default drift band when the baselines file does not set one.
DEFAULT_TOLERANCE = 0.02


def load_baselines(path: str) -> Dict[str, Any]:
    """Load and structurally validate a baselines file."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or not isinstance(data.get("cells"), dict):
        raise ValueError(
            f"{path!r} is not a baselines file (expected a dict with a "
            "'cells' mapping)"
        )
    return data


def save_baselines(path: str, baselines: Dict[str, Any]) -> None:
    """Write a baselines file with stable key order and a newline."""
    with open(path, "w") as handle:
        json.dump(baselines, handle, indent=2, sort_keys=True)
        handle.write("\n")


def baseline_entry(summary: Dict[str, Any]) -> Dict[str, Any]:
    """The baseline record for one cell, from its audit summary."""
    conformance = summary.get("conformance")
    return {
        "conformance": (
            round(conformance, 6) if conformance is not None else None
        ),
        "periods": summary.get("periods", 0),
        "connections": summary.get("connections", 0),
    }


def diff_cell(
    summary: Dict[str, Any],
    baseline: Optional[Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """One cell's drift verdict against its baseline entry.

    Returns a dict with ``status`` (``"ok"``, ``"drift"`` or ``"new"``
    for a cell with no baseline yet), the observed and expected
    numbers, and the signed ``delta``.  Coverage regressions (fewer
    judged periods or registered connections than baselined) are drift
    even when the conformance fraction happens to survive them.
    """
    observed = baseline_entry(summary)
    if baseline is None:
        return {"status": "new", "observed": observed, "expected": None,
                "delta": None, "tolerance": tolerance}
    expected = baseline.get("conformance")
    got = observed["conformance"]
    delta = None
    drifted = False
    if (expected is None) != (got is None):
        drifted = True
    elif expected is not None:
        delta = round(got - expected, 6)
        drifted = abs(delta) > tolerance
    for guard in ("periods", "connections"):
        if guard in baseline and observed[guard] < baseline[guard]:
            drifted = True
    return {
        "status": "drift" if drifted else "ok",
        "observed": observed,
        "expected": baseline,
        "delta": delta,
        "tolerance": tolerance,
    }


def attach_baseline_diff(
    audit: Dict[str, Any],
    diff: Dict[str, Any],
    scenario_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Embed a cell's drift verdict in its audit document (in place)."""
    payload = dict(diff)
    if scenario_id is not None:
        payload["scenario"] = scenario_id
    audit["baseline_diff"] = payload
    return audit


def render_baseline_diff(diff: Dict[str, Any]) -> str:
    """One-paragraph human rendering of a cell's drift verdict."""
    status = diff.get("status", "?")
    observed = diff.get("observed") or {}
    expected = diff.get("expected") or {}
    line = (
        f"Baseline: {status.upper()}"
        + (f" ({diff['scenario']})" if diff.get("scenario") else "")
    )
    if status == "new":
        return (
            f"{line} -- no baseline entry; observed conformance "
            f"{observed.get('conformance')} over "
            f"{observed.get('periods')} period(s)"
        )
    return (
        f"{line} -- conformance {observed.get('conformance')} vs "
        f"baseline {expected.get('conformance')} "
        f"(delta {diff.get('delta')}, tolerance "
        f"{diff.get('tolerance')}); periods "
        f"{observed.get('periods')}/{expected.get('periods')}, "
        f"connections {observed.get('connections')}"
        f"/{expected.get('connections')}"
    )
