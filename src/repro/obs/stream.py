"""Streaming observability: per-window snapshot deltas and their folder.

PR 8's sharded soak ships each worker's *whole* audit and metrics
snapshot at finish time, so the coordinator's peak RSS is O(fleet) --
the per-shard documents, their pickle buffers and the merged copy all
coexist (see docs/SCALING.md).  This module makes the telemetry
incremental instead:

- :class:`DeltaEncoder` runs inside a shard worker.  At every
  synchronization barrier it emits a *delta*: counter/gauge/window
  values that changed, audit verdict periods filed, renegotiations,
  releases and drill-downs appended since the previous barrier.  The
  encoder piggybacks on the ``("window", ...)`` pipe message of
  :mod:`repro.sim.shard.runner`, so streaming adds zero extra round
  trips.
- :class:`DeltaFolder` runs inside the coordinator.  It folds each
  delta into per-shard state as it arrives and, at finish time,
  reproduces **byte-for-byte** the documents the snapshot-merge path
  (:func:`repro.obs.audit.merge_snapshots` /
  :func:`repro.obs.registry.merge_snapshots`) would have produced --
  the property tests in ``tests/obs/test_stream.py`` pin this.  The
  folder also maintains an O(1) rolling summary (conformance so far,
  first breach time, skew bound overshoots) that feeds the live SLO
  watcher (:mod:`repro.obs.live`).
- :class:`LiveWriter` appends rolling records as JSON lines to any
  file-like sink, one line per barrier plus one final record, flushed
  eagerly so ``tail -f`` and the watch CLI see them immediately.

Delta protocol (one dict per barrier, ``None`` when nothing changed)::

    {"v": 1, "final": bool, "now": <shard virtual time>,
     "audit": {"connections": {vc: {"full": <to_dict>} | <sparse>},
               "groups": {...}, "histograms": {...}, "sections": {...}},
     "metrics": {"counters": {...}, "gauges": {...},
                 "windows": {...}, "series": {...}}}

A connection's first appearance ships its complete ``to_dict`` (the
"registration storm" -- that data must cross once either way);
afterwards only increments travel: absolute verdict counts (small ints,
exact), the timeline *tail* (new entries, already truncated to the
auditor's ``max_timeline`` discipline so the folded tail matches the
snapshot's), appended renegotiations/drill-downs, and first-violation /
release marks.  Metrics ship sparse absolute values -- floats are
*copied*, never re-derived by subtraction, which is what makes the fold
bit-exact.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.obs.audit import _contract_dict, _summarize
from repro.obs.export import FixedBucketHistogram
from repro.obs.registry import merge_snapshots as _merge_metrics

__all__ = [
    "DeltaEncoder",
    "DeltaFolder",
    "LiveWriter",
    "open_live_sink",
]

#: Delta wire-format version (bump on incompatible change).
DELTA_VERSION = 1

#: Audit histogram names, in per-shard snapshot order.
_AUDIT_HISTS = ("delay_s", "jitter_s")


class _ConnCursor:
    """What the encoder has already shipped for one connection."""

    __slots__ = (
        "filed", "reneg", "drill", "released", "fv", "contract",
        "suppressed",
    )

    def __init__(self, conn):
        self.filed = sum(conn.counts.values())
        self.reneg = len(conn.renegotiations)
        self.drill = len(conn.drilldowns)
        self.released = conn.released
        self.fv = conn.first_violation_at is not None
        self.contract = conn.contract
        self.suppressed = conn.drilldowns_suppressed

    def delta(self, conn) -> Dict[str, Any]:
        d: Dict[str, Any] = {}
        filed = sum(conn.counts.values())
        if filed != self.filed:
            new = filed - self.filed
            self.filed = filed
            d["counts"] = dict(conn.counts)
            timeline = conn.timeline
            if timeline:
                # The newest entries are the last ones; truncation only
                # ever drops from the front, so the tail slice is exactly
                # the filed-period entries the auditor still retains.
                d["timeline"] = timeline[-min(new, len(timeline)):]
        if conn.contract is not self.contract:
            self.contract = conn.contract
            d["contract"] = _contract_dict(conn.contract)
        if not self.fv and conn.first_violation_at is not None:
            self.fv = True
            d["first_violation_at"] = conn.first_violation_at
        if len(conn.renegotiations) > self.reneg:
            d["renegotiations"] = conn.renegotiations[self.reneg:]
            self.reneg = len(conn.renegotiations)
        if conn.released is not self.released:
            self.released = conn.released
            d["released"] = conn.released
        if len(conn.drilldowns) > self.drill:
            d["drilldowns"] = conn.drilldowns[self.drill:]
            self.drill = len(conn.drilldowns)
        if conn.drilldowns_suppressed != self.suppressed:
            self.suppressed = conn.drilldowns_suppressed
            d["drilldowns_suppressed"] = conn.drilldowns_suppressed
        return d


class _GroupCursor:
    """What the encoder has already shipped for one orchestration group."""

    __slots__ = ("skew_count", "over_bound", "outages", "recoveries",
                 "reg_total")

    def __init__(self, group):
        self.skew_count = group.skew_hist.count
        self.over_bound = group.over_bound
        self.outages = len(group.outages)
        self.recoveries = len(group.recoveries)
        self.reg_total = sum(group.regulation_drops.values())

    def delta(self, group) -> Dict[str, Any]:
        d: Dict[str, Any] = {}
        if group.skew_hist.count != self.skew_count:
            self.skew_count = group.skew_hist.count
            d["skew"] = group.skew_hist.to_dict()
        if group.over_bound != self.over_bound:
            self.over_bound = group.over_bound
            d["over_bound"] = group.over_bound
        if len(group.outages) > self.outages:
            d["outages"] = group.outages[self.outages:]
            self.outages = len(group.outages)
        if len(group.recoveries) > self.recoveries:
            d["recoveries"] = group.recoveries[self.recoveries:]
            self.recoveries = len(group.recoveries)
        reg_total = sum(group.regulation_drops.values())
        if reg_total != self.reg_total:
            self.reg_total = reg_total
            d["regulation_drops"] = dict(group.regulation_drops)
        return d


class DeltaEncoder:
    """Worker-side incremental snapshot encoder.

    Wraps a :class:`~repro.obs.audit.QoSAuditor` and/or a
    :class:`~repro.obs.registry.MetricsRegistry` and turns "what changed
    since the last call" into one picklable delta dict per barrier.
    Audit changes are discovered through the auditor's dirty sets (a
    dict insert per recording call -- connections and groups untouched
    during a window cost nothing); registry changes by a linear scan of
    the instruments against last-shipped values, which for fleet-scale
    registries is a few thousand compares per barrier.

    ``delta(final=True)`` must be called exactly once, after the run
    finishes: it re-ships every windowed stat (their ``end`` edge is the
    clock, which moves even without observations), the audit histograms
    and the lazily rendered report sections, so the folder's final state
    matches a finish-time snapshot exactly.
    """

    def __init__(self, auditor=None, registry=None):
        if auditor is None and registry is None:
            raise ValueError("need an auditor and/or a registry to stream")
        self.auditor = auditor
        self.registry = registry
        self._conns: Dict[str, _ConnCursor] = {}
        self._groups: Dict[str, _GroupCursor] = {}
        # Seed with the attach-time counts so an idle histogram does
        # not look changed on the first barrier (final re-ships all).
        self._hist_counts: Dict[str, int] = {}
        if auditor is not None:
            for name, hist in zip(
                _AUDIT_HISTS, (auditor.delay_hist, auditor.jitter_hist),
            ):
                self._hist_counts[name] = hist.count
        self._counter_last: Dict[str, float] = {}
        self._gauge_last: Dict[str, float] = {}
        self._window_last: Dict[str, Tuple[float, int, float]] = {}
        self._series_last: Dict[str, int] = {}

    def _now(self) -> float:
        if self.auditor is not None:
            return self.auditor.sim.now
        return self.registry.now

    def delta(self, final: bool = False) -> Optional[Dict[str, Any]]:
        """The changes since the previous call (``None`` when nothing).

        A final delta is never ``None``: it always carries the closing
        windowed stats, histograms and sections.
        """
        out: Dict[str, Any] = {
            "v": DELTA_VERSION, "final": final, "now": self._now(),
        }
        changed = False
        if self.auditor is not None:
            audit = self._audit_delta(final)
            if audit:
                out["audit"] = audit
                changed = True
        if self.registry is not None:
            metrics = self._metrics_delta(final)
            # A final delta always carries the metrics key (possibly
            # empty): its presence tells the folder a registry exists
            # on this shard, so the merged metrics document and its
            # closing ``now`` match the snapshot-merge path even for a
            # registry that never recorded anything.
            if metrics or final:
                out["metrics"] = metrics
                changed = changed or bool(metrics)
        if not changed and not final:
            return None
        return out

    # -- audit -------------------------------------------------------------

    def _audit_delta(self, final: bool) -> Dict[str, Any]:
        aud = self.auditor
        out: Dict[str, Any] = {}
        dirty = aud._dirty_connections
        if dirty:
            aud._dirty_connections = {}
            conns: Dict[str, Any] = {}
            records = aud._connections
            cursors = self._conns
            for key in dirty:
                conn = records.get(key)
                if conn is None:  # pragma: no cover - defensive
                    continue
                cursor = cursors.get(key)
                if cursor is None:
                    cursors[key] = _ConnCursor(conn)
                    conns[key] = {"full": conn.to_dict()}
                else:
                    d = cursor.delta(conn)
                    if d:
                        conns[key] = d
            if conns:
                out["connections"] = conns
        dirty_groups = aud._dirty_groups
        if dirty_groups:
            aud._dirty_groups = {}
            groups: Dict[str, Any] = {}
            for key in dirty_groups:
                group = aud._groups.get(key)
                if group is None:  # pragma: no cover - defensive
                    continue
                cursor = self._groups.get(key)
                if cursor is None:
                    self._groups[key] = _GroupCursor(group)
                    groups[key] = {"full": group.to_dict()}
                else:
                    d = cursor.delta(group)
                    if d:
                        groups[key] = d
            if groups:
                out["groups"] = groups
        hists: Dict[str, Any] = {}
        for name, hist in zip(_AUDIT_HISTS, (aud.delay_hist, aud.jitter_hist)):
            if final or hist.count != self._hist_counts.get(name):
                self._hist_counts[name] = hist.count
                hists[name] = hist.to_dict()
        if hists:
            out["histograms"] = hists
        if final and aud._sections:
            out["sections"] = {
                name: provider()
                for name, provider in sorted(aud._sections.items())
            }
        return out

    # -- metrics -----------------------------------------------------------

    def _metrics_delta(self, final: bool) -> Dict[str, Any]:
        reg = self.registry
        out: Dict[str, Any] = {}
        counters: Dict[str, float] = {}
        last = self._counter_last
        for name, counter in reg._counters.items():
            value = counter.value
            if last.get(name) != value:
                last[name] = value
                counters[name] = value
        if counters:
            out["counters"] = counters
        gauges: Dict[str, float] = {}
        last = self._gauge_last
        for name, gauge in reg._gauges.items():
            value = gauge.value
            if last.get(name) != value:
                last[name] = value
                gauges[name] = value
        if gauges:
            out["gauges"] = gauges
        windows: Dict[str, Any] = {}
        wlast = self._window_last
        for name, window in reg._windows.items():
            key = (window.window_start, window.count, window.total)
            if final or wlast.get(name) != key:
                wlast[name] = key
                snap = window.snapshot()
                windows[name] = {
                    "start": snap.start,
                    "end": snap.end,
                    "count": snap.count,
                    "total": snap.total,
                    "min": None if snap.count == 0 else snap.minimum,
                    "max": None if snap.count == 0 else snap.maximum,
                }
        if windows:
            out["windows"] = windows
        series: Dict[str, int] = {}
        slast = self._series_last
        for name, samples in reg._series.items():
            length = len(samples)
            if final or slast.get(name) != length:
                slast[name] = length
                series[name] = length
        if series:
            out["series"] = series
        return out


class DeltaFolder:
    """Coordinator-side fold of per-shard deltas into merged documents.

    Resident state is exactly one evolving copy of the merged document
    (which the run's output needs anyway) plus O(1) rolling aggregates;
    the per-window transient is one delta.  ``result_audit()`` /
    ``result_metrics()`` return documents byte-identical (same values,
    same key order) to what the finish-time
    ``merge_snapshots(per-shard snapshots, labels=...)`` path produces.
    """

    def __init__(self, shards: int, labels: Optional[List[str]] = None,
                 max_timeline: Optional[int] = None):
        if labels is not None and len(labels) != shards:
            raise ValueError(
                f"got {len(labels)} labels for {shards} shards"
            )
        self.shards = shards
        self.labels = list(labels) if labels is not None else None
        self.max_timeline = max_timeline
        #: Barriers folded so far (maintained by the caller's progress
        #: hook; purely informational).
        self.windows = 0
        self._now = [0.0] * shards
        self._conns: List[Dict[str, Dict[str, Any]]] = [
            {} for _ in range(shards)
        ]
        self._groups: List[Dict[str, Dict[str, Any]]] = [
            {} for _ in range(shards)
        ]
        self._hists: List[Dict[str, Any]] = [{} for _ in range(shards)]
        self._sections: List[Dict[str, Any]] = [{} for _ in range(shards)]
        self._metrics: List[Dict[str, Any]] = [
            {"now": 0.0, "counters": {}, "gauges": {}, "windows": {},
             "series": {}}
            for _ in range(shards)
        ]
        self._have_metrics = False
        # Rolling aggregates (O(1) to read; fed by every fold).
        self._counts = {"met": 0, "degraded": 0, "violated": 0, "idle": 0}
        self._conn_total = 0
        self._first_breach: Optional[float] = None
        self._over_bound = 0
        self._reneg = 0
        self._releases = 0

    # -- folding -----------------------------------------------------------

    def fold(self, shard: int, delta: Optional[Dict[str, Any]]) -> None:
        """Fold one shard's barrier delta (``None`` is a no-op)."""
        if delta is None:
            return
        now = delta.get("now")
        final = bool(delta.get("final"))
        if now is not None and now > self._now[shard]:
            self._now[shard] = now
        audit = delta.get("audit")
        if audit:
            self._fold_audit(shard, audit, final)
        metrics = delta.get("metrics")
        if metrics is not None:
            self._fold_metrics(shard, metrics, now)

    def _fold_audit(self, shard: int, audit: Dict[str, Any],
                    final: bool) -> None:
        conns = self._conns[shard]
        for vc, d in audit.get("connections", {}).items():
            full = d.get("full")
            if full is not None:
                conns[vc] = full
                self._conn_total += 1
                for verdict, count in full["counts"].items():
                    self._counts[verdict] = (
                        self._counts.get(verdict, 0) + count
                    )
                self._reneg += len(full["renegotiations"])
                if full["released"] is not None:
                    self._releases += 1
                ttfv = full["time_to_first_violation"]
                if ttfv is not None:
                    self._breach(full["registered_at"] + ttfv)
                continue
            conn = conns.get(vc)
            if conn is None:  # mid-stream reader missed the full record
                continue
            counts = d.get("counts")
            if counts is not None:
                old = conn["counts"]
                for verdict, count in counts.items():
                    self._counts[verdict] = (
                        self._counts.get(verdict, 0)
                        + count - old.get(verdict, 0)
                    )
                conn["counts"] = counts
            tail = d.get("timeline")
            if tail:
                timeline = conn["timeline"]
                timeline.extend(tail)
                limit = self.max_timeline
                if limit is not None and len(timeline) > limit:
                    del timeline[: len(timeline) - limit]
            contract = d.get("contract")
            if contract is not None:
                conn["contract"] = contract
            fv = d.get("first_violation_at")
            if fv is not None:
                conn["time_to_first_violation"] = fv - conn["registered_at"]
                self._breach(fv)
            reneg = d.get("renegotiations")
            if reneg:
                conn["renegotiations"].extend(reneg)
                self._reneg += len(reneg)
            released = d.get("released")
            if released is not None:
                if conn["released"] is None:
                    self._releases += 1
                conn["released"] = released
            drills = d.get("drilldowns")
            if drills:
                conn["drilldowns"].extend(drills)
            suppressed = d.get("drilldowns_suppressed")
            if suppressed is not None:
                conn["drilldowns_suppressed"] = suppressed
        groups = self._groups[shard]
        for session, d in audit.get("groups", {}).items():
            full = d.get("full")
            if full is not None:
                groups[session] = full
                self._over_bound += full["over_bound"]
                continue
            group = groups.get(session)
            if group is None:
                continue
            skew = d.get("skew")
            if skew is not None:
                group["skew"] = skew
                group["intervals"] = skew["count"]
            over = d.get("over_bound")
            if over is not None:
                self._over_bound += over - group["over_bound"]
                group["over_bound"] = over
            for key in ("outages", "recoveries"):
                tail = d.get(key)
                if tail:
                    group[key].extend(tail)
            drops = d.get("regulation_drops")
            if drops is not None:
                group["regulation_drops"] = drops
        hists = audit.get("histograms")
        if hists:
            if final:
                # The final delta ships every histogram in canonical
                # snapshot order; rebuilding pins the merged key order
                # to the snapshot-merge path's.
                self._hists[shard] = dict(hists)
            else:
                self._hists[shard].update(hists)
        sections = audit.get("sections")
        if sections is not None:
            self._sections[shard] = sections

    def _fold_metrics(self, shard: int, metrics: Dict[str, Any],
                      now: Optional[float]) -> None:
        self._have_metrics = True
        state = self._metrics[shard]
        if now is not None:
            state["now"] = now
        for section in ("counters", "gauges", "windows", "series"):
            update = metrics.get(section)
            if update:
                state[section].update(update)

    def _breach(self, at: float) -> None:
        if self._first_breach is None or at < self._first_breach:
            self._first_breach = at

    # -- rolling summary ---------------------------------------------------

    def rolling(self) -> Dict[str, Any]:
        """O(1) snapshot of the run so far (for live SLO evaluation)."""
        counts = self._counts
        judged = counts["met"] + counts["degraded"] + counts["violated"]
        return {
            "t": max(self._now, default=0.0),
            "windows": self.windows,
            "connections": self._conn_total,
            "periods": sum(counts.values()),
            "counts": dict(counts),
            "conformance": counts["met"] / judged if judged else None,
            "first_breach_at": self._first_breach,
            "skew_over_bound": self._over_bound,
            "renegotiations": self._reneg,
            "releases": self._releases,
        }

    # -- finish-time documents ---------------------------------------------

    def result_audit(self) -> Dict[str, Any]:
        """The merged audit document (see class docstring for identity)."""
        connections: List[Dict[str, Any]] = []
        for shard in range(self.shards):
            for conn in self._conns[shard].values():
                counts = conn["counts"]
                judged = (
                    counts["met"] + counts["degraded"] + counts["violated"]
                )
                conn["conformance"] = (
                    counts["met"] / judged if judged else None
                )
                connections.append(conn)
        groups: List[Dict[str, Any]] = []
        for shard in range(self.shards):
            groups.extend(self._groups[shard].values())
        hists: Dict[str, FixedBucketHistogram] = {}
        for shard in range(self.shards):
            for name, data in self._hists[shard].items():
                incoming = FixedBucketHistogram.from_dict(data)
                existing = hists.get(name)
                if existing is None:
                    hists[name] = incoming
                elif (existing.lo, existing.hi, existing.buckets) == (
                    incoming.lo, incoming.hi, incoming.buckets
                ):
                    for idx, count in enumerate(incoming.counts):
                        existing.counts[idx] += count
                    existing.underflow += incoming.underflow
                    existing.overflow += incoming.overflow
                    existing.count += incoming.count
                    existing.total += incoming.total
                    existing.minimum = min(
                        existing.minimum, incoming.minimum
                    )
                    existing.maximum = max(
                        existing.maximum, incoming.maximum
                    )
        sections: Dict[str, List[Any]] = {}
        for shard in range(self.shards):
            for name, value in self._sections[shard].items():
                sections.setdefault(name, []).append(value)
        merged = {
            "kind": "repro-audit",
            "now": max(self._now, default=0.0),
            "summary": _summarize(connections),
            "connections": connections,
            "groups": groups,
            "histograms": {
                name: hist.to_dict() for name, hist in hists.items()
            },
        }
        if self.labels is not None or self.shards > 1:
            merged["merged_from"] = {
                "snapshots": self.shards,
                "labels": (
                    list(self.labels) if self.labels is not None else None
                ),
                "namespaced": False,
            }
        if sections:
            merged["sections"] = sections
        return merged

    def result_metrics(self) -> Dict[str, Any]:
        """The merged registry document (empty-shaped when un-streamed)."""
        return _merge_metrics(self._metrics if self._have_metrics else [])


class LiveWriter:
    """Append rolling records as flushed JSON lines to a sink."""

    def __init__(self, sink: TextIO):
        self.sink = sink

    def write(self, record: Dict[str, Any]) -> None:
        self.sink.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.sink.flush()


def open_live_sink(spec: str) -> Tuple[TextIO, bool]:
    """Resolve a ``--live`` argument to ``(sink, caller_should_close)``.

    ``"-"`` is stdout, a bare integer is an inherited file descriptor,
    anything else a path opened for writing.
    """
    if spec == "-":
        return sys.stdout, False
    if spec.isdigit():
        import os

        return os.fdopen(int(spec), "w"), True
    return open(spec, "w"), True
