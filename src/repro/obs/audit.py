"""Contract-aware QoS auditing: conformance verdicts, timelines, post-mortems.

The tracer and registry record *what happened*; the auditor records
*whether it was good enough*.  It registers every T-Connect's
negotiated contract and, at each monitor sample period, files a
conformance verdict for the VC:

``met``
    every observed Table-2 parameter within contract;
``degraded``
    at least one parameter worse than contracted but inside the
    monitor's tolerance margin (no ``T-QoS.indication`` fired);
``violated``
    the monitor reported one or more :class:`QoSViolation`\\ s;
``idle``
    nothing observable this period (no traffic and no synthetic
    outage violation) -- excluded from the conformance fraction.

Each verdict lands on the connection's **timeline**; fleet-level
summaries (fraction of periods in conformance, time-to-first-violation,
renegotiation outcomes, release reasons) fall out of the timelines.

Violated periods are drilled down on the spot: the auditor snapshots
the installed tracer's ring (see :class:`FlightRecorder`) through a
:class:`~repro.obs.causality.ChainIndex` and stores which packets the
period lost, where, and which fault episodes overlapped -- bounded to
``max_drilldowns`` per connection so a long outage cannot balloon the
audit.

Orchestration groups register separately: per-group skew observations
feed an HDR-style histogram compared against the HLO policy's
strictness bound, alongside outage/recovery marks and regulation drops.

Nothing here schedules simulator events: registration, verdicts and
drill-downs all run synchronously inside calls the transport and
orchestration layers were already making, so enabling the audit can
never perturb a run (the determinism tests pin this down).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.causality import ChainIndex
from repro.obs.export import FixedBucketHistogram
from repro.obs.trace import Clock, TraceLevel, Tracer

__all__ = [
    "FlightRecorder",
    "QoSAuditor",
    "install_audit",
    "merge_snapshots",
]

_CONTRACT_FIELDS = (
    "throughput_bps", "delay_s", "jitter_s",
    "packet_error_rate", "bit_error_rate", "max_osdu_bytes",
)

#: (verdict parameter, measurement attr, contract attr, higher_is_better)
_DIMENSIONS = (
    ("throughput", "throughput_bps", "throughput_bps", True),
    ("delay", "mean_delay_s", "delay_s", False),
    ("jitter", "jitter_s", "jitter_s", False),
    ("packet_error_rate", "packet_error_rate", "packet_error_rate", False),
    ("bit_error_rate", "bit_error_rate", "bit_error_rate", False),
)


class FlightRecorder(Tracer):
    """A tracer whose event store is a bounded ring buffer.

    Records at PACKET verbosity by default but only ever retains the
    last ``capacity`` events, so it can stay installed for a whole run
    at O(capacity) memory: enough context for the auditor to explain a
    violation the moment it happens, without full-trace overhead.
    """

    def __init__(self, clock: Clock, capacity: int = 4096,
                 level: TraceLevel = TraceLevel.PACKET):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(clock, level)
        self.capacity = capacity
        self._events = deque(maxlen=capacity)

    def snapshot(self) -> List[Dict[str, Any]]:
        """A list copy of the ring's current contents (oldest first)."""
        return list(self._events)


def _contract_dict(contract) -> Dict[str, Any]:
    return {
        field: getattr(contract, field, None) for field in _CONTRACT_FIELDS
    }


def _degradations(contract, measurement) -> List[Dict[str, float]]:
    """Observed dimensions worse than contracted (margin or not)."""
    degraded = []
    for name, m_attr, c_attr, higher_is_better in _DIMENSIONS:
        observed = getattr(measurement, m_attr, None)
        contracted = getattr(contract, c_attr, None)
        if observed is None or contracted is None:
            continue
        worse = (
            observed < contracted if higher_is_better
            else observed > contracted + 1e-12
        )
        if worse:
            degraded.append({
                "parameter": name,
                "contracted": contracted,
                "observed": observed,
                "delta": observed - contracted,
            })
    return degraded


class _ConnectionAudit:
    """Everything the auditor knows about one VC."""

    def __init__(self, vc_id: str, registered_at: float, contract,
                 src: Optional[str], dst: Optional[str],
                 sample_period: Optional[float]):
        self.vc_id = vc_id
        self.registered_at = registered_at
        self.contract = contract
        self.src = src
        self.dst = dst
        self.sample_period = sample_period
        self.timeline: List[Dict[str, Any]] = []
        self.counts = {"met": 0, "degraded": 0, "violated": 0, "idle": 0}
        self.first_violation_at: Optional[float] = None
        self.renegotiations: List[Dict[str, Any]] = []
        self.released: Optional[Dict[str, Any]] = None
        self.drilldowns: List[Dict[str, Any]] = []
        self.drilldowns_suppressed = 0

    @property
    def conformance(self) -> Optional[float]:
        judged = (
            self.counts["met"] + self.counts["degraded"]
            + self.counts["violated"]
        )
        return self.counts["met"] / judged if judged else None

    @property
    def time_to_first_violation(self) -> Optional[float]:
        if self.first_violation_at is None:
            return None
        return self.first_violation_at - self.registered_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vc": self.vc_id,
            "src": self.src,
            "dst": self.dst,
            "registered_at": self.registered_at,
            "sample_period": self.sample_period,
            "contract": _contract_dict(self.contract),
            "counts": dict(self.counts),
            "conformance": self.conformance,
            "time_to_first_violation": self.time_to_first_violation,
            "timeline": list(self.timeline),
            "renegotiations": list(self.renegotiations),
            "released": self.released,
            "drilldowns": list(self.drilldowns),
            "drilldowns_suppressed": self.drilldowns_suppressed,
        }


class _GroupAudit:
    """Per-orchestration-group skew conformance against the HLO bound."""

    def __init__(self, session_id: str, registered_at: float, bound: float,
                 streams: List[str], interval_length: Optional[float]):
        self.session_id = session_id
        self.registered_at = registered_at
        self.bound = bound
        self.streams = streams
        self.interval_length = interval_length
        self.skew_hist = FixedBucketHistogram(lo=1e-6, hi=1.0, buckets=96)
        self.over_bound = 0
        self.outages: List[Dict[str, Any]] = []
        self.recoveries: List[Dict[str, Any]] = []
        self.regulation_drops: Dict[str, int] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "session": self.session_id,
            "registered_at": self.registered_at,
            "bound": self.bound,
            "streams": list(self.streams),
            "interval_length": self.interval_length,
            "skew": self.skew_hist.to_dict(),
            "intervals": self.skew_hist.count,
            "over_bound": self.over_bound,
            "outages": list(self.outages),
            "recoveries": list(self.recoveries),
            "regulation_drops": dict(self.regulation_drops),
        }


class QoSAuditor:
    """Registers contracts and files per-period conformance verdicts.

    Hangs off ``sim.auditor``; every hook is guarded at the call site
    with ``if sim.auditor is not None`` so the un-audited path costs
    one attribute load, exactly like the tracer's ``enabled`` guard.
    """

    def __init__(self, sim, tracer: Optional[Tracer] = None,
                 max_drilldowns: int = 8,
                 max_timeline: Optional[int] = None):
        self.sim = sim
        self._tracer = tracer
        self.max_drilldowns = max_drilldowns
        #: When set, each connection keeps only the most recent N
        #: timeline entries (verdict *counts* are never truncated).
        #: Fleet-scale soaks set this so a 100k-VC audit snapshot stays
        #: a bounded document; interactive runs keep the default full
        #: timelines.
        self.max_timeline = max_timeline
        self._connections: Dict[str, _ConnectionAudit] = {}
        self._groups: Dict[str, _GroupAudit] = {}
        #: Insertion-ordered "sets" of ids touched since the last drain
        #: by a streaming :class:`repro.obs.stream.DeltaEncoder`.  One
        #: dict store per recording call; nothing reads them unless a
        #: delta encoder is attached, and untouched connections cost
        #: nothing per barrier.
        self._dirty_connections: Dict[str, None] = {}
        self._dirty_groups: Dict[str, None] = {}
        self.delay_hist = FixedBucketHistogram(lo=1e-5, hi=10.0, buckets=128)
        self.jitter_hist = FixedBucketHistogram(lo=1e-6, hi=1.0, buckets=128)
        self._sections: Dict[str, Any] = {}

    # -- extension sections ------------------------------------------------

    def attach_section(self, name: str, provider) -> None:
        """Attach a named report section evaluated at snapshot time.

        ``provider`` is a zero-argument callable returning a
        JSON-serialisable value; it is invoked lazily on each
        :meth:`snapshot` so the section always reflects current state
        (the control plane attaches its desired/actual view this way).
        Re-attaching a name replaces the provider.
        """
        self._sections[name] = provider

    # -- transport hooks ---------------------------------------------------

    def register_connection(self, vc_id, contract, src=None, dst=None,
                            sample_period=None) -> None:
        """File a T-Connect's negotiated contract for later verdicts."""
        key = str(vc_id)
        if key not in self._connections:
            self._connections[key] = _ConnectionAudit(
                key, self.sim.now, contract, src, dst, sample_period,
            )
            self._dirty_connections[key] = None

    def _connection(self, vc_id) -> _ConnectionAudit:
        key = str(vc_id)
        try:
            return self._connections[key]
        except KeyError:
            # Audit installed after connect: register a bare record so
            # the timeline still accumulates.
            conn = self._connections[key] = _ConnectionAudit(
                key, self.sim.now, None, None, None, None,
            )
            self._dirty_connections[key] = None
            return conn

    def record_period(self, vc_id, contract, measurement,
                      violations) -> None:
        """File one sample period's verdict on the VC's timeline."""
        prof = getattr(self.sim, "profile", None)
        if prof is not None:
            _t0 = prof.clock()
        conn = self._connection(vc_id)
        self._dirty_connections[conn.vc_id] = None
        if conn.contract is None:
            conn.contract = contract
        observed = measurement.as_dict()
        if violations:
            verdict = "violated"
        elif all(value is None for value in observed.values()):
            verdict = "idle"
        elif _degradations(contract, measurement):
            verdict = "degraded"
        else:
            verdict = "met"
        conn.counts[verdict] += 1
        entry: Dict[str, Any] = {
            "t0": measurement.period_start,
            "t1": measurement.period_end,
            "verdict": verdict,
            "osdus": measurement.osdus_delivered,
            "observed": observed,
        }
        if verdict == "violated":
            entry["violations"] = [
                {
                    "parameter": v.parameter,
                    "contracted": v.contracted,
                    "observed": v.observed,
                    "delta": v.observed - v.contracted,
                    "ratio": (
                        v.observed / v.contracted if v.contracted else None
                    ),
                }
                for v in violations
            ]
            if conn.first_violation_at is None:
                conn.first_violation_at = measurement.period_end
            self._drilldown(conn, entry)
        elif verdict == "degraded":
            entry["degraded"] = _degradations(contract, measurement)
        conn.timeline.append(entry)
        limit = self.max_timeline
        if limit is not None and len(conn.timeline) > limit:
            del conn.timeline[: len(conn.timeline) - limit]
        if measurement.mean_delay_s is not None:
            self.delay_hist.record(measurement.mean_delay_s)
        if measurement.jitter_s is not None:
            self.jitter_hist.record(measurement.jitter_s)
        if prof is not None:
            prof.add("audit.evaluate", _t0, prof.clock())

    def _drilldown(self, conn: _ConnectionAudit,
                   entry: Dict[str, Any]) -> None:
        """Explain a violated period from the flight-recorder ring."""
        tracer = self._tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return
        if len(conn.drilldowns) >= self.max_drilldowns:
            conn.drilldowns_suppressed += 1
            return
        chain = ChainIndex(tracer.events)
        explanation = chain.explain_period(
            conn.vc_id, entry["t0"], entry["t1"],
        )
        explanation["violations"] = entry["violations"]
        conn.drilldowns.append(explanation)

    def record_renegotiation(self, vc_id, outcome, from_bps=None,
                             to_bps=None, reason=None) -> None:
        """File a T-Renegotiate outcome (confirmed / rejected / failed)."""
        conn = self._connection(vc_id)
        self._dirty_connections[conn.vc_id] = None
        conn.renegotiations.append({
            "at": self.sim.now,
            "outcome": outcome,
            "from_bps": from_bps,
            "to_bps": to_bps,
            "reason": reason,
        })

    def record_release(self, vc_id, reason, initiator=None) -> None:
        """File the VC's release (e.g. ``qos-outage`` past grace)."""
        conn = self._connection(vc_id)
        self._dirty_connections[conn.vc_id] = None
        conn.released = {
            "at": self.sim.now,
            "reason": reason,
            "initiator": initiator,
        }

    # -- orchestration hooks ----------------------------------------------

    def register_group(self, session_id, bound, streams=(),
                       interval_length=None) -> None:
        """File an orchestration group and its HLO tightness bound."""
        key = str(session_id)
        if key not in self._groups:
            self._groups[key] = _GroupAudit(
                key, self.sim.now, bound, list(streams), interval_length,
            )
            self._dirty_groups[key] = None

    def _group(self, session_id) -> _GroupAudit:
        key = str(session_id)
        try:
            return self._groups[key]
        except KeyError:
            group = self._groups[key] = _GroupAudit(
                key, self.sim.now, float("inf"), [], None,
            )
            self._dirty_groups[key] = None
            return group

    def record_skew(self, session_id, skew: float) -> None:
        """File one regulation interval's group skew observation."""
        group = self._group(session_id)
        self._dirty_groups[group.session_id] = None
        group.skew_hist.record(skew)
        if skew > group.bound:
            group.over_bound += 1

    def record_group_outage(self, session_id, vc_id) -> None:
        group = self._group(session_id)
        self._dirty_groups[group.session_id] = None
        group.outages.append({"at": self.sim.now, "vc": str(vc_id)})

    def record_group_recovery(self, session_id, vc_id) -> None:
        group = self._group(session_id)
        self._dirty_groups[group.session_id] = None
        group.recoveries.append({"at": self.sim.now, "vc": str(vc_id)})

    def record_regulation_drop(self, session_id, vc_id,
                               count: int = 1) -> None:
        """File OSDUs dropped by LLO regulation for one stream."""
        group = self._group(session_id)
        self._dirty_groups[group.session_id] = None
        drops = group.regulation_drops
        key = str(vc_id)
        drops[key] = drops.get(key, 0) + count

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The full audit as a plain JSON-serialisable dict."""
        connections = [
            conn.to_dict() for conn in self._connections.values()
        ]
        groups = [group.to_dict() for group in self._groups.values()]
        snapshot = {
            "kind": "repro-audit",
            "now": self.sim.now,
            "summary": _summarize(connections),
            "connections": connections,
            "groups": groups,
            "histograms": {
                "delay_s": self.delay_hist.to_dict(),
                "jitter_s": self.jitter_hist.to_dict(),
            },
        }
        if self._sections:
            snapshot["sections"] = {
                name: provider()
                for name, provider in sorted(self._sections.items())
            }
        return snapshot

    def export(self, path: str) -> str:
        """Write :meth:`snapshot` as JSON; returns ``path``.

        Streams one connection/group dict at a time instead of
        materialising the whole snapshot, so exporting a fleet-scale
        audit needs O(largest record) transient memory.  The bytes are
        identical to ``json.dumps(self.snapshot(), indent=2)`` (pinned
        by ``tests/obs/test_export.py``).
        """
        with open(path, "w") as handle:
            for chunk in self.iter_json():
                handle.write(chunk)
        return path

    def iter_json(self):
        """Yield :meth:`snapshot` as JSON text in bounded chunks."""
        yield (
            '{\n  "kind": "repro-audit",\n  "now": '
            + json.dumps(self.sim.now) + ",\n"
        )
        summary = _summarize_objects(self._connections.values())
        yield '  "summary": ' + _dumps_at(summary, 1) + ",\n"
        yield from _iter_array(
            "connections",
            (conn.to_dict() for conn in self._connections.values()),
            len(self._connections),
        )
        yield from _iter_array(
            "groups",
            (group.to_dict() for group in self._groups.values()),
            len(self._groups),
        )
        hists = {
            "delay_s": self.delay_hist.to_dict(),
            "jitter_s": self.jitter_hist.to_dict(),
        }
        tail = ",\n" if self._sections else "\n"
        yield '  "histograms": ' + _dumps_at(hists, 1) + tail
        if self._sections:
            sections = {
                name: provider()
                for name, provider in sorted(self._sections.items())
            }
            yield '  "sections": ' + _dumps_at(sections, 1) + "\n"
        yield "}"


def _summarize(connections: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fleet-level rollup computed from per-connection dicts."""
    totals = {"met": 0, "degraded": 0, "violated": 0, "idle": 0}
    reneg: Dict[str, int] = {}
    releases: Dict[str, int] = {}
    ttfv: List[float] = []
    for conn in connections:
        for verdict, count in conn["counts"].items():
            totals[verdict] = totals.get(verdict, 0) + count
        for item in conn["renegotiations"]:
            reneg[item["outcome"]] = reneg.get(item["outcome"], 0) + 1
        if conn["released"] is not None:
            reason = conn["released"]["reason"]
            releases[reason] = releases.get(reason, 0) + 1
        if conn["time_to_first_violation"] is not None:
            ttfv.append(conn["time_to_first_violation"])
    judged = totals["met"] + totals["degraded"] + totals["violated"]
    return {
        "connections": len(connections),
        "periods": sum(totals.values()),
        "counts": totals,
        "conformance": totals["met"] / judged if judged else None,
        "mean_time_to_first_violation": (
            sum(ttfv) / len(ttfv) if ttfv else None
        ),
        "renegotiations": reneg,
        "releases": releases,
    }


def _summarize_objects(records) -> Dict[str, Any]:
    """:func:`_summarize` computed from live audit records.

    Same arithmetic over the same iteration order, so the streaming
    exporter's summary is byte-identical to the snapshot path's without
    materialising every ``to_dict`` first.
    """
    totals = {"met": 0, "degraded": 0, "violated": 0, "idle": 0}
    reneg: Dict[str, int] = {}
    releases: Dict[str, int] = {}
    ttfv: List[float] = []
    count = 0
    for conn in records:
        count += 1
        for verdict, filed in conn.counts.items():
            totals[verdict] = totals.get(verdict, 0) + filed
        for item in conn.renegotiations:
            reneg[item["outcome"]] = reneg.get(item["outcome"], 0) + 1
        if conn.released is not None:
            reason = conn.released["reason"]
            releases[reason] = releases.get(reason, 0) + 1
        if conn.time_to_first_violation is not None:
            ttfv.append(conn.time_to_first_violation)
    judged = totals["met"] + totals["degraded"] + totals["violated"]
    return {
        "connections": count,
        "periods": sum(totals.values()),
        "counts": totals,
        "conformance": totals["met"] / judged if judged else None,
        "mean_time_to_first_violation": (
            sum(ttfv) / len(ttfv) if ttfv else None
        ),
        "renegotiations": reneg,
        "releases": releases,
    }


def _dumps_at(obj: Any, depth: int) -> str:
    """``json.dumps(obj, indent=2)`` re-indented to nest at ``depth``."""
    return json.dumps(obj, indent=2).replace("\n", "\n" + "  " * depth)


def _iter_array(name: str, items, count: int):
    """Yield a top-level JSON array one element at a time.

    Renders exactly like the same array inside
    ``json.dumps(document, indent=2)`` at nesting depth one.
    """
    if count == 0:
        yield f'  "{name}": [],\n'
        return
    yield f'  "{name}": [\n'
    last = count - 1
    for index, item in enumerate(items):
        text = "    " + _dumps_at(item, 2)
        yield text + (",\n" if index != last else "\n")
    yield "  ],\n"


def merge_snapshots(
    snapshots: List[Dict[str, Any]],
    labels: Optional[List[str]] = None,
    namespace: bool = False,
) -> Dict[str, Any]:
    """Fold several audit snapshots into one document.

    Connections and groups concatenate; the fleet summary is recomputed;
    histograms with the same bucket layout add, mismatched layouts keep
    the first seen.  Attached sections collect per-snapshot values into
    a list per name (the report CLI renders one block per source).

    Identity rule: VC and session ids must be disjoint across the
    inputs.  Sharded fleets guarantee this structurally (host names --
    and therefore vc ids -- are namespaced per shard at build time), so
    they merge with ``namespace=False`` and ids survive unchanged,
    keeping merged conformance comparable to an unsharded baseline.
    When the inputs *reuse* an id space (e.g. several independent runs
    of one scenario), pass ``namespace=True`` with per-snapshot
    ``labels``: every connection's ``vc`` and group's ``session`` gains
    a ``"<label>/"`` prefix.  Namespacing is shallow -- ids quoted
    inside drill-downs or timelines keep their original spelling.

    With ``labels`` given (or more than one snapshot), the merged
    document records its provenance under ``merged_from``; the report
    header surfaces it.  Inputs are never mutated.
    """
    if labels is not None and len(labels) != len(snapshots):
        raise ValueError(
            f"got {len(labels)} labels for {len(snapshots)} snapshots"
        )
    if namespace and labels is None:
        raise ValueError("namespace=True requires labels")
    connections: List[Dict[str, Any]] = []
    groups: List[Dict[str, Any]] = []
    hists: Dict[str, FixedBucketHistogram] = {}
    sections: Dict[str, List[Any]] = {}
    now = 0.0
    for index, snap in enumerate(snapshots):
        if namespace:
            prefix = f"{labels[index]}/"
            connections.extend(
                {**conn, "vc": prefix + str(conn.get("vc"))}
                for conn in snap.get("connections", ())
            )
            groups.extend(
                {**group, "session": prefix + str(group.get("session"))}
                for group in snap.get("groups", ())
            )
        else:
            connections.extend(snap.get("connections", ()))
            groups.extend(snap.get("groups", ()))
        now = max(now, snap.get("now", 0.0))
        for name, value in snap.get("sections", {}).items():
            sections.setdefault(name, []).append(value)
        for name, data in snap.get("histograms", {}).items():
            incoming = FixedBucketHistogram.from_dict(data)
            existing = hists.get(name)
            if existing is None:
                hists[name] = incoming
            elif (existing.lo, existing.hi, existing.buckets) == (
                incoming.lo, incoming.hi, incoming.buckets
            ):
                for idx, count in enumerate(incoming.counts):
                    existing.counts[idx] += count
                existing.underflow += incoming.underflow
                existing.overflow += incoming.overflow
                existing.count += incoming.count
                existing.total += incoming.total
                existing.minimum = min(existing.minimum, incoming.minimum)
                existing.maximum = max(existing.maximum, incoming.maximum)
    merged = {
        "kind": "repro-audit",
        "now": now,
        "summary": _summarize(connections),
        "connections": connections,
        "groups": groups,
        "histograms": {
            name: hist.to_dict() for name, hist in hists.items()
        },
    }
    if labels is not None or len(snapshots) > 1:
        merged["merged_from"] = {
            "snapshots": len(snapshots),
            "labels": list(labels) if labels is not None else None,
            "namespaced": bool(namespace),
        }
    if sections:
        # Per-shard section values are preserved as a list per name;
        # report renderers decide how to fold them.
        merged["sections"] = sections
    return merged


def install_audit(sim, flight_capacity: int = 4096,
                  max_drilldowns: int = 8,
                  flight_recorder: bool = True,
                  max_timeline: Optional[int] = None) -> QoSAuditor:
    """Install a :class:`QoSAuditor` (and flight recorder) on ``sim``.

    When tracing is off, a :class:`FlightRecorder` ring becomes the
    simulator's tracer so violations can still be explained; an
    already-enabled tracer is reused untouched.  Pass
    ``flight_recorder=False`` to skip the ring entirely -- fleet-scale
    soaks trade drill-downs for a per-packet-event-free hot path
    (verdicts and conformance are unaffected).  ``max_timeline`` bounds
    each connection's retained timeline (see :class:`QoSAuditor`).
    Idempotent.
    """
    if sim.auditor is not None:
        return sim.auditor
    tracer = sim.trace
    if not tracer.enabled:
        if flight_recorder:
            tracer = FlightRecorder(
                lambda: sim.now, capacity=flight_capacity
            )
            sim.trace = tracer
        else:
            tracer = None
    sim.auditor = QoSAuditor(
        sim, tracer=tracer, max_drilldowns=max_drilldowns,
        max_timeline=max_timeline,
    )
    return sim.auditor
