"""Causal linking over trace events: primitive -> TPDU -> packet -> fate.

The tracer records flat events; this module recovers the causal chain
a violated QoS period needs for its post-mortem.  The link is the
netsim packet id, threaded through the instrumentation:

- ``tpdu.tx`` instants (transport ``vc``/``entity``) carry the packet
  id, the VC, the sequence number and the TPDU kind at the moment a
  TPDU is handed to the network -- the *parent* end of the chain.
- link-layer events (serialisation spans, ``loss``, ``drop:down``,
  ``drop:buffer``, and the bounded ``lost_packet_ids`` list on
  ``link.down``) carry the same packet id mid-flight.
- host ``rx:*`` instants carry it at delivery -- the *child* end.

:class:`ChainIndex` ingests a list of Chrome-trace events (timestamps
in microseconds, as recorded) and answers second-denominated queries:
which packets a VC sent inside a period, what happened to each, and
which fault episodes overlapped.  It is a pure in-memory index -- safe
to build from a live flight-recorder ring at violation time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["ChainIndex"]

_US = 1e6

#: Event names that mark a packet as lost, mapped to a human cause.
_LOSS_CAUSES = {
    "loss": "corrupted-on-wire",
    "drop:buffer": "buffer-overflow",
    "drop:down": "link-down",
    "link.down": "lost-in-flight",
}

_DELIVERY_PREFIX = "rx:"


class ChainIndex:
    """Index of trace events by packet id, VC and fault episode."""

    def __init__(self, events: List[Dict[str, Any]]):
        #: packet id -> chronological [(ts_s, name, event), ...]
        self._by_packet: Dict[int, List[Dict[str, Any]]] = {}
        #: vc id -> chronological tpdu.tx records
        self._tx_by_vc: Dict[str, List[Dict[str, Any]]] = {}
        self._faults: List[Dict[str, Any]] = []
        for event in events:
            if event.get("ph") == "M":
                continue
            args = event.get("args") or {}
            packet_id = args.get("packet_id")
            if packet_id is not None:
                self._by_packet.setdefault(packet_id, []).append(event)
            for lost_id in args.get("lost_packet_ids") or ():
                self._by_packet.setdefault(lost_id, []).append(event)
            if event.get("name") == "tpdu.tx" and args.get("vc") is not None:
                self._tx_by_vc.setdefault(str(args["vc"]), []).append(event)
            if event.get("cat") == "fault":
                self._faults.append(event)
        for chain in self._by_packet.values():
            chain.sort(key=lambda e: e.get("ts", 0.0))
        for sends in self._tx_by_vc.values():
            sends.sort(key=lambda e: e.get("ts", 0.0))
        self._faults.sort(key=lambda e: e.get("ts", 0.0))

    # -- raw lookups -------------------------------------------------------

    def events_for_packet(self, packet_id: int) -> List[Dict[str, Any]]:
        """Every indexed event mentioning ``packet_id``, in time order."""
        return list(self._by_packet.get(packet_id, ()))

    def packet_fate(self, packet_id: int) -> Dict[str, Any]:
        """Summarise one packet's life: sent / delivered / lost where."""
        fate: Dict[str, Any] = {
            "packet_id": packet_id, "status": "in-flight",
            "sent_at": None, "resolved_at": None, "cause": None,
            "where": None,
        }
        for event in self._by_packet.get(packet_id, ()):
            name = event.get("name", "")
            ts_s = event.get("ts", 0.0) / _US
            if name == "tpdu.tx" and fate["sent_at"] is None:
                fate["sent_at"] = ts_s
                args = event.get("args") or {}
                fate["vc"] = args.get("vc")
                fate["seq"] = args.get("seq")
                fate["kind"] = args.get("kind")
            elif name.startswith(_DELIVERY_PREFIX):
                fate["status"] = "delivered"
                fate["resolved_at"] = ts_s
            elif name in _LOSS_CAUSES and fate["status"] != "delivered":
                fate["status"] = "lost"
                fate["cause"] = _LOSS_CAUSES[name]
                fate["resolved_at"] = ts_s
                fate["where"] = self._track_of(event)
        return fate

    def _track_of(self, event: Dict[str, Any]) -> Optional[str]:
        # pid -> track name needs the metadata events we skipped; fall
        # back to the link recorded in args when present.
        args = event.get("args") or {}
        return args.get("link") or args.get("track")

    # -- per-VC / per-window queries --------------------------------------

    def packets_for_vc(self, vc_id: str, t0: Optional[float] = None,
                       t1: Optional[float] = None) -> List[Dict[str, Any]]:
        """Fates of packets ``vc_id`` sent inside ``[t0, t1]`` seconds."""
        fates = []
        for event in self._tx_by_vc.get(str(vc_id), ()):
            ts_s = event.get("ts", 0.0) / _US
            if t0 is not None and ts_s < t0:
                continue
            if t1 is not None and ts_s > t1:
                continue
            args = event.get("args") or {}
            if args.get("packet_id") is not None:
                fates.append(self.packet_fate(args["packet_id"]))
        return fates

    def lost_packets(self, vc_id: str, t0: Optional[float] = None,
                     t1: Optional[float] = None) -> List[Dict[str, Any]]:
        """The subset of :meth:`packets_for_vc` that was lost."""
        return [
            fate for fate in self.packets_for_vc(vc_id, t0, t1)
            if fate["status"] == "lost"
        ]

    def fault_episodes(self, t0: float, t1: float) -> List[Dict[str, Any]]:
        """Fault-category events overlapping ``[t0, t1]`` seconds."""
        episodes = []
        for event in self._faults:
            start_s = event.get("ts", 0.0) / _US
            end_s = start_s + event.get("dur", 0.0) / _US
            if end_s < t0 or start_s > t1:
                continue
            episodes.append({
                "name": event.get("name"),
                "start": start_s,
                "end": end_s,
                "args": event.get("args") or {},
            })
        return episodes

    def explain_period(self, vc_id: str, t0: float, t1: float,
                       fault_lookback: Optional[float] = None) -> Dict[str, Any]:
        """Drill one sample period down to its packets and faults.

        Faults are searched over ``[t0 - fault_lookback, t1]`` (default
        lookback: two period lengths) because the episode that starves
        a period often begins in an earlier one.
        """
        if fault_lookback is None:
            fault_lookback = 2.0 * max(t1 - t0, 0.0)
        fates = self.packets_for_vc(vc_id, t0, t1)
        lost = [f for f in fates if f["status"] == "lost"]
        delivered = [f for f in fates if f["status"] == "delivered"]
        return {
            "vc": str(vc_id),
            "t0": t0,
            "t1": t1,
            "sent": len(fates),
            "delivered": len(delivered),
            "lost": lost,
            "faults": self.fault_episodes(t0 - fault_lookback, t1),
        }
