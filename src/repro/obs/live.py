"""Live SLO watcher over streamed soak telemetry.

``repro.soak``/``repro.scenarios`` runs started with ``--live <path>``
append one JSON line per synchronization barrier (the folder's rolling
summary) plus a ``final`` record.  This CLI consumes that stream::

    # watch a run as it happens (Ctrl-C to stop)
    python -m repro.obs.live tail soak.jsonl --follow

    # gate on the finished run: exit 1 on any unforgiven SLO breach
    python -m repro.obs.live check soak.jsonl \
        --slo 'conformance>=0.95' \
        --baselines BASELINES.json --cell 'cbr/cells/chaos@s0'

``tail`` renders one line per record and a closing SLO report; it never
fails a build.  ``check`` is the CI gate: every SLO must hold on the
final record.  A *conformance* breach is forgiven when ``--baselines``
names a cell whose checked-in conformance is within tolerance of the
observed value -- the degradation is a known, baselined property of the
cell (chaos variants run below pristine conformance by design), not
drift.  Anything else -- an unforgiven breach, a missing final record,
or an SLO still pending at exit -- fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.slo import (
    SLO,
    default_slos,
    evaluate,
    parse_slo,
    render_statuses,
)

__all__ = ["main", "iter_records"]


def iter_records(path: str, follow: bool = False,
                 poll: float = 0.25) -> Iterator[Dict[str, Any]]:
    """Yield JSONL records from ``path``, optionally tailing growth.

    Partial trailing lines (a writer mid-``write``) are buffered until
    their newline arrives.  In follow mode the iterator only returns
    after a ``final`` record; interrupt to stop early.
    """
    with open(path) as handle:
        pending = ""
        while True:
            chunk = handle.readline()
            if chunk:
                pending += chunk
                if not pending.endswith("\n"):
                    continue
                record = json.loads(pending)
                pending = ""
                yield record
                if record.get("kind") == "final":
                    return
                continue
            if not follow:
                return
            time.sleep(poll)


def _slos(specs: Optional[List[str]]) -> List[SLO]:
    if not specs:
        return list(default_slos())
    return [parse_slo(spec) for spec in specs]


def _describe(record: Dict[str, Any], slos: List[SLO]) -> str:
    conf = record.get("conformance")
    parts = [
        f"t={record.get('t', 0.0):.1f}s",
        f"w={record.get('windows', 0)}",
        f"conn={record.get('connections', 0)}",
        f"periods={record.get('periods', 0)}",
        "conf=" + (f"{conf:.4f}" if conf is not None else "-"),
    ]
    line = " ".join(parts)
    statuses = evaluate(slos, record)
    flagged = [s for s in statuses if s.ok is False]
    if flagged:
        line += "  !! " + render_statuses(flagged)
    return line


def _main_tail(args: argparse.Namespace) -> int:
    slos = _slos(args.slo)
    last: Optional[Dict[str, Any]] = None
    try:
        for record in iter_records(args.log, follow=args.follow,
                                   poll=args.interval):
            last = record
            if record.get("kind") == "final":
                print(f"final: {_describe(record, slos)}")
            else:
                print(_describe(record, slos))
    except KeyboardInterrupt:
        pass
    if last is None:
        print(f"{args.log}: no records", file=sys.stderr)
        return 1
    print(render_statuses(evaluate(slos, last)))
    return 0


def _main_check(args: argparse.Namespace) -> int:
    slos = _slos(args.slo)
    final: Optional[Dict[str, Any]] = None
    last: Optional[Dict[str, Any]] = None
    count = 0
    for record in iter_records(args.log):
        last = record
        count += 1
        if record.get("kind") == "final":
            final = record
    if last is None:
        print(f"{args.log}: no records", file=sys.stderr)
        return 2
    record = final if final is not None else last
    statuses = evaluate(slos, record)
    breaches = [s for s in statuses if s.ok is False]
    pending = [s for s in statuses if s.ok is None]
    forgiven = []
    if breaches and args.baselines and args.cell:
        forgiven = _forgive(breaches, record, args)
        breaches = [s for s in breaches if s not in forgiven]
    print(f"{args.log}: {count} record(s), "
          + ("finished" if final is not None else "NO final record"))
    print(render_statuses(statuses))
    for status in forgiven:
        print(f"forgiven: {status.slo.name} matches baselined "
              f"conformance for {args.cell}")
    if final is None and not args.allow_pending:
        print("breach: run did not reach a final record",
              file=sys.stderr)
        return 1
    if pending and not args.allow_pending:
        names = ", ".join(s.slo.name for s in pending)
        print(f"breach: SLO(s) still pending at exit: {names}",
              file=sys.stderr)
        return 1
    return 1 if breaches else 0


def _forgive(breaches, record: Dict[str, Any],
             args: argparse.Namespace) -> List[Any]:
    """Conformance breaches consistent with the checked-in baseline."""
    try:
        with open(args.baselines) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"baselines unreadable: {exc}", file=sys.stderr)
        return []
    cell = data.get("cells", {}).get(args.cell)
    if cell is None or cell.get("conformance") is None:
        return []
    tolerance = (
        args.tolerance if args.tolerance is not None
        else data.get("tolerance", 0.02)
    )
    observed = record.get("conformance")
    if observed is None:
        return []
    if abs(observed - cell["conformance"]) > tolerance:
        return []
    return [s for s in breaches if s.slo.metric == "conformance"]


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Friendliness: `live soak.jsonl` tails by default.
    if argv and argv[0] not in {"tail", "check", "-h", "--help"}:
        argv.insert(0, "tail")
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.live",
        description="Watch or gate a streamed soak telemetry log.",
    )
    sub = parser.add_subparsers(dest="mode", required=True)
    tail = sub.add_parser("tail", help="render records as they arrive")
    tail.add_argument("log", help="JSONL telemetry log (--live sink)")
    tail.add_argument("--follow", "-f", action="store_true",
                      help="poll for growth until the final record")
    tail.add_argument("--interval", type=float, default=0.25,
                      help="poll interval in seconds (with --follow)")
    tail.add_argument("--slo", action="append", metavar="SPEC",
                      help="objective like 'conformance>=0.95' "
                           "(repeatable; default: stock SLOs)")
    check = sub.add_parser("check", help="exit 1 on unforgiven breach")
    check.add_argument("log")
    check.add_argument("--slo", action="append", metavar="SPEC")
    check.add_argument("--baselines",
                       help="BASELINES.json for drift forgiveness")
    check.add_argument("--cell",
                       help="scenario id to look up in --baselines")
    check.add_argument("--tolerance", type=float, default=None,
                       help="override the baseline file's tolerance")
    check.add_argument("--allow-pending", action="store_true",
                       help="don't fail on pending SLOs / missing final")
    args = parser.parse_args(argv)
    if args.mode == "tail":
        return _main_tail(args)
    return _main_check(args)


if __name__ == "__main__":
    raise SystemExit(main())
