"""Observability layer: metrics, tracing, auditing and run reports.

The paper's whole evaluation (Table 2 degradation reports, the
blocking-time fault attribution of section 6.3.1.2) rests on measuring
the running system over *sample periods*.  This package provides the
primitives that measurement is built from, and the contract-aware
layer that turns them into the system's evaluation instrument:

``repro.obs.registry``
    :class:`MetricsRegistry` -- named :class:`Counter`/:class:`Gauge`
    values, :class:`WindowedStat`/:class:`WindowedSeries` accumulators
    that reset *atomically* at each period boundary (the abstraction
    whose absence caused the QoS monitor's stale-window bug), and
    :class:`SpanAccumulator` for blocked/occupied-time accounting with
    window re-basing.  ``snapshot()`` renders the whole registry as a
    plain dict.

``repro.obs.trace``
    A sim-time :class:`Tracer` emitting spans and instant events in
    Chrome-trace/Perfetto JSON, plus the zero-cost :data:`NULL_TRACER`
    installed on every :class:`~repro.sim.scheduler.Simulator` by
    default.  Enable with :meth:`repro.core.runtime.Runtime.enable_tracing`.

``repro.obs.audit``
    :class:`QoSAuditor` -- registers every T-Connect's negotiated
    contract and files per-sample-period conformance verdicts
    (met/degraded/violated), per-connection timelines, renegotiation
    outcomes and orchestration skew-vs-bound; :class:`FlightRecorder`
    -- a bounded ring-buffer tracer for post-mortems without full
    tracing overhead.  Enable with
    :meth:`repro.core.runtime.Runtime.enable_audit`.

``repro.obs.causality``
    :class:`ChainIndex` -- joins trace events on netsim packet ids so
    a violated period drills down to the packets it lost and the fault
    episodes that caused it.

``repro.obs.export``
    :class:`FixedBucketHistogram` (HDR-style p50/p95/p99/p999),
    Prometheus text exposition and JSON snapshots for the registry.

``repro.obs.report``
    ``python -m repro.obs.report trace.json`` summarises an exported
    trace; ``python -m repro.obs.report run audit.json`` renders a
    paper-style conformance report from an audit snapshot.

The registry, tracer, causality and export submodules are
dependency-free leaves (they take a ``clock`` callable instead of
importing the simulator), so the kernel can depend on them without a
cycle; the auditor only reads ``sim.now``.
"""

from repro.obs.audit import (
    FlightRecorder,
    QoSAuditor,
    install_audit,
    merge_snapshots,
)
from repro.obs.causality import ChainIndex
from repro.obs.export import (
    FixedBucketHistogram,
    prometheus_text,
    write_json_snapshot,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    SpanAccumulator,
    WindowSnapshot,
    WindowedSeries,
    WindowedStat,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceLevel,
    Tracer,
)

__all__ = [
    "ChainIndex",
    "Counter",
    "FixedBucketHistogram",
    "FlightRecorder",
    "Gauge",
    "MetricsRegistry",
    "QoSAuditor",
    "SpanAccumulator",
    "WindowSnapshot",
    "WindowedSeries",
    "WindowedStat",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceLevel",
    "Tracer",
    "install_audit",
    "merge_snapshots",
    "prometheus_text",
    "write_json_snapshot",
]
