"""Observability layer: metrics registry + sim-time tracing.

The paper's whole evaluation (Table 2 degradation reports, the
blocking-time fault attribution of section 6.3.1.2) rests on measuring
the running system over *sample periods*.  This package provides the
two primitives that measurement is built from:

``repro.obs.registry``
    :class:`MetricsRegistry` -- named :class:`Counter`/:class:`Gauge`
    values, :class:`WindowedStat`/:class:`WindowedSeries` accumulators
    that reset *atomically* at each period boundary (the abstraction
    whose absence caused the QoS monitor's stale-window bug), and
    :class:`SpanAccumulator` for blocked/occupied-time accounting with
    window re-basing.

``repro.obs.trace``
    A sim-time :class:`Tracer` emitting spans and instant events in
    Chrome-trace/Perfetto JSON, plus the zero-cost :data:`NULL_TRACER`
    installed on every :class:`~repro.sim.scheduler.Simulator` by
    default.  Enable with :meth:`repro.core.runtime.Runtime.enable_tracing`.

``repro.obs.report``
    ``python -m repro.obs.report trace.json`` summarises an exported
    trace (span durations, event counts, per-category breakdown).

Both submodules are dependency-free leaves (they take a ``clock``
callable instead of importing the simulator), so the kernel can depend
on them without a cycle.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    SpanAccumulator,
    WindowSnapshot,
    WindowedSeries,
    WindowedStat,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceLevel,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SpanAccumulator",
    "WindowSnapshot",
    "WindowedSeries",
    "WindowedStat",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceLevel",
    "Tracer",
]
