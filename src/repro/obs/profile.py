"""Wall-clock span profiling for the simulator's hot subsystems.

EXPERIMENTS.md "K1 revisited" concludes the remaining scheduler floor
is Python call overhead -- but *where*?  This module hangs a
:class:`WallProfiler` off ``sim.profile`` and instruments four spans at
their call sites (no wrapper functions, so the disabled path costs one
attribute load and a branch, exactly like ``sim.auditor``):

- ``scheduler.dispatch`` -- one callback dispatch in ``Simulator.run``
- ``link.commit``        -- one ``Link.send`` (admission + enqueue)
- ``transport.deliver``  -- one ``TransportEntity._on_packet``
- ``audit.evaluate``     -- one ``QoSAuditor.record_period``

Spans nest (a dispatch envelopes the link/transport work it triggers);
the per-subsystem table therefore reports *inclusive* time and the
shares column is computed against ``scheduler.dispatch`` alone when
present.  Enabled via :meth:`repro.core.runtime.Runtime.enable_profiling`
or soak's ``--profile``; ``tests/obs/test_profile.py`` proves the
disabled path changes nothing (event-count + audit identity, like
PR 2's tracer guarantee).

Exports: a JSON document (``kind: repro-profile``), a Chrome
``traceEvents`` file loadable in ``chrome://tracing`` / Perfetto, and a
per-subsystem text table.
"""

from __future__ import annotations

import json
import math
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.metrics.table import Table

__all__ = [
    "WallProfiler",
    "merge_profiles",
    "export_chrome_trace",
    "render_profile_table",
]


class WallProfiler:
    """Accumulates wall-clock spans per subsystem plus a bounded event log.

    ``add(key, started, ended)`` takes two :func:`time.perf_counter`
    readings (exposed as :attr:`clock` so call sites and the profiler
    agree on the time base).  Aggregates are unbounded and O(1) per
    span; individual events stop being logged after ``max_events`` and
    are counted in ``dropped_events`` instead, so a profiled soak can
    run for hours without the profiler itself becoming the memory hog.
    """

    __slots__ = ("max_events", "subsystems", "events", "dropped", "clock",
                 "_t0")

    def __init__(self, max_events: int = 100_000):
        self.max_events = max_events
        #: key -> [count, total_s, min_s, max_s]
        self.subsystems: Dict[str, List[float]] = {}
        #: [key, start_s (relative to profiler creation), duration_s]
        self.events: List[List[Any]] = []
        self.dropped = 0
        self.clock = perf_counter
        self._t0 = perf_counter()

    def add(self, key: str, started: float, ended: float) -> None:
        """File one completed span (``started``/``ended`` from clock())."""
        elapsed = ended - started
        stats = self.subsystems.get(key)
        if stats is None:
            stats = self.subsystems[key] = [0, 0.0, math.inf, 0.0]
        stats[0] += 1
        stats[1] += elapsed
        if elapsed < stats[2]:
            stats[2] = elapsed
        if elapsed > stats[3]:
            stats[3] = elapsed
        if len(self.events) < self.max_events:
            self.events.append([key, started - self._t0, elapsed])
        else:
            self.dropped += 1

    def to_dict(self) -> Dict[str, Any]:
        """The profile as a plain JSON-serialisable document."""
        return {
            "kind": "repro-profile",
            "subsystems": {
                key: {
                    "count": stats[0],
                    "total_s": stats[1],
                    "min_s": stats[2] if stats[0] else None,
                    "max_s": stats[3] if stats[0] else None,
                }
                for key, stats in sorted(self.subsystems.items())
            },
            "events": self.events,
            "dropped_events": self.dropped,
        }

    def export(self, path: str) -> str:
        """Write the profile document as JSON; returns ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path


def merge_profiles(profiles: List[Dict[str, Any]],
                   labels: Optional[List[str]] = None) -> Dict[str, Any]:
    """Fold per-shard profile documents into one.

    Subsystem aggregates add (min/max fold); events gain a source index
    (rendered as the ``pid`` in the Chrome trace, named by ``labels``).
    """
    if labels is not None and len(labels) != len(profiles):
        raise ValueError(
            f"got {len(labels)} labels for {len(profiles)} profiles"
        )
    subsystems: Dict[str, List[float]] = {}
    events: List[List[Any]] = []
    dropped = 0
    for source, profile in enumerate(profiles):
        for key, stats in profile.get("subsystems", {}).items():
            merged = subsystems.get(key)
            if merged is None:
                subsystems[key] = [
                    stats["count"], stats["total_s"],
                    stats["min_s"] if stats["min_s"] is not None
                    else math.inf,
                    stats["max_s"] if stats["max_s"] is not None else 0.0,
                ]
            else:
                merged[0] += stats["count"]
                merged[1] += stats["total_s"]
                if stats["min_s"] is not None:
                    merged[2] = min(merged[2], stats["min_s"])
                if stats["max_s"] is not None:
                    merged[3] = max(merged[3], stats["max_s"])
        for event in profile.get("events", ()):
            if len(event) == 3:
                events.append([source, *event])
            else:  # already merged once: keep the original source
                events.append(list(event))
        dropped += profile.get("dropped_events", 0)
    return {
        "kind": "repro-profile",
        "sources": list(labels) if labels is not None else len(profiles),
        "subsystems": {
            key: {
                "count": stats[0],
                "total_s": stats[1],
                "min_s": stats[2] if stats[0] else None,
                "max_s": stats[3] if stats[0] else None,
            }
            for key, stats in sorted(subsystems.items())
        },
        "events": events,
        "dropped_events": dropped,
    }


def export_chrome_trace(profile: Dict[str, Any], path: str) -> str:
    """Write a profile document as a Chrome ``traceEvents`` JSON file.

    Each source (shard) becomes a ``pid``, each subsystem a ``tid``
    within it; spans are complete ("X") events in microseconds.
    """
    sources = profile.get("sources")
    if isinstance(sources, list):
        names = {index: str(label) for index, label in enumerate(sources)}
    elif isinstance(sources, int):
        names = {index: f"source {index}" for index in range(sources)}
    else:
        names = {0: "profile"}
    tids: Dict[str, int] = {}
    trace: List[Dict[str, Any]] = []
    for pid, name in names.items():
        trace.append({
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": name},
        })
    for event in profile.get("events", ()):
        if len(event) == 4:
            pid, key, start, duration = event
        else:
            key, start, duration = event
            pid = 0
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            for p in names:
                trace.append({
                    "ph": "M", "pid": p, "tid": tid,
                    "name": "thread_name", "args": {"name": key},
                })
        trace.append({
            "ph": "X", "pid": pid, "tid": tid, "name": key,
            "cat": "profile",
            "ts": start * 1e6, "dur": duration * 1e6,
        })
    with open(path, "w") as handle:
        json.dump({"traceEvents": trace}, handle)
    return path


def render_profile_table(profile: Dict[str, Any]) -> str:
    """The per-subsystem aggregate table as monospace text."""
    subsystems = profile.get("subsystems", {})
    dispatch = subsystems.get("scheduler.dispatch", {}).get("total_s")
    table = Table(
        ("subsystem", "spans", "total s", "mean us", "min us", "max us",
         "share"),
        title="wall-clock profile (inclusive spans)",
    )
    for key, stats in subsystems.items():
        count = stats["count"]
        total = stats["total_s"]
        share = (
            f"{100.0 * total / dispatch:.1f}%"
            if dispatch and key != "scheduler.dispatch" else
            ("100%" if key == "scheduler.dispatch" else "-")
        )
        table.add(
            key,
            str(count),
            f"{total:.3f}",
            f"{1e6 * total / count:.2f}" if count else "-",
            f"{1e6 * stats['min_s']:.2f}"
            if stats["min_s"] is not None else "-",
            f"{1e6 * stats['max_s']:.2f}"
            if stats["max_s"] is not None else "-",
            share,
        )
    dropped = profile.get("dropped_events", 0)
    text = table.render()
    if dropped:
        text += f"\n({dropped} span event(s) dropped beyond the log cap)"
    return text
