"""Declarative SLO evaluation over streamed soak telemetry.

The live watcher (:mod:`repro.obs.live`) and the nightly CI soak both
need the same question answered continuously: *is this run healthy so
far?*  An :class:`SLO` names one metric from the rolling records the
:class:`repro.obs.stream.DeltaFolder` emits (``conformance``,
``skew_over_bound``, ``lease_violations``, ``first_breach_at``, ...)
and a bound on it.  Evaluation is three-valued: a metric absent from
the record (e.g. ``lease_violations`` before the final record, or
``conformance`` before any judged period) is *pending*, not a breach --
a watcher mid-run must not page anyone for data that hasn't arrived
yet.  The ``check`` subcommand of the live CLI decides how strict to be
about still-pending SLOs at exit time.

``first_breach_at`` is naturally inverted: ``None`` means *no breach
ever*, which is the best outcome -- the ``none_or_ge`` op encodes
"never breached, or not before t".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLO",
    "SLOStatus",
    "default_slos",
    "evaluate",
    "parse_slo",
    "render_statuses",
]

_OPS = {
    "ge": ">=",
    "le": "<=",
    "none_or_ge": "none-or->=",
}

#: Metrics where ``None`` means "never happened" (best case), so the
#: ``>=`` spelling parses to ``none_or_ge``.
_NONE_IS_GOOD = frozenset({"first_breach_at"})


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a rolling telemetry record."""

    name: str
    metric: str
    op: str  # "ge" | "le" | "none_or_ge"
    threshold: float

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(
                f"unknown SLO op {self.op!r} (have {sorted(_OPS)})"
            )

    def evaluate(self, record: Dict[str, Any]) -> "SLOStatus":
        """Judge one rolling record; absent metrics are pending."""
        if self.metric not in record:
            return SLOStatus(self, None, None)
        value = record[self.metric]
        if self.op == "none_or_ge":
            ok = value is None or value >= self.threshold
        elif value is None:
            ok = None  # metric present but not yet computable
        elif self.op == "ge":
            ok = value >= self.threshold
        else:
            ok = value <= self.threshold
        return SLOStatus(self, value, ok)


@dataclass(frozen=True)
class SLOStatus:
    """The outcome of one SLO against one record."""

    slo: SLO
    value: Any
    ok: Optional[bool]  # None = pending (metric absent / not computable)

    @property
    def label(self) -> str:
        if self.ok is None:
            return "PENDING"
        return "OK" if self.ok else "BREACH"

    def describe(self) -> str:
        value = "-" if self.value is None else _fmt(self.value)
        return (
            f"{self.slo.name} {value} "
            f"{_OPS[self.slo.op]} {_fmt(self.slo.threshold)} {self.label}"
        )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def default_slos(
    min_conformance: float = 0.95,
    max_skew_over: float = 0,
    max_lease_violations: float = 0,
    min_first_breach: Optional[float] = None,
) -> Tuple[SLO, ...]:
    """The stock objectives the soak/scenario watchers start from."""
    slos = [
        SLO("conformance", "conformance", "ge", min_conformance),
        SLO("skew-bound", "skew_over_bound", "le", max_skew_over),
        SLO("leases", "lease_violations", "le", max_lease_violations),
    ]
    if min_first_breach is not None:
        slos.append(SLO(
            "first-breach", "first_breach_at", "none_or_ge",
            min_first_breach,
        ))
    return tuple(slos)


def parse_slo(text: str) -> SLO:
    """Parse ``"metric>=0.95"`` / ``"metric<=3"`` into an :class:`SLO`.

    Metrics in :data:`_NONE_IS_GOOD` (``first_breach_at``) get the
    ``none_or_ge`` op for ``>=`` so "never breached" satisfies them.
    """
    for spelling, op in ((">=", "ge"), ("<=", "le")):
        if spelling in text:
            metric, _, raw = text.partition(spelling)
            metric = metric.strip()
            if not metric:
                break
            try:
                threshold = float(raw.strip())
            except ValueError:
                break
            if op == "ge" and metric in _NONE_IS_GOOD:
                op = "none_or_ge"
            return SLO(metric, metric, op, threshold)
    raise ValueError(
        f"can't parse SLO {text!r} (want e.g. 'conformance>=0.95')"
    )


def evaluate(slos: Sequence[SLO],
             record: Dict[str, Any]) -> List[SLOStatus]:
    """All objectives judged against one rolling record."""
    return [slo.evaluate(record) for slo in slos]


def render_statuses(statuses: Sequence[SLOStatus]) -> str:
    """One-line rendering for watch mode / logs."""
    return " | ".join(status.describe() for status in statuses)
