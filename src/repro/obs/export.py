"""Exporters: fixed-bucket histograms, Prometheus text, JSON snapshots.

The auditor and the run reports need three export surfaces that the
raw primitives of :mod:`repro.obs.registry` deliberately do not
provide:

- :class:`FixedBucketHistogram` -- an HDR-style histogram with
  geometrically spaced buckets between a fixed ``lo`` and ``hi``,
  plus underflow/overflow buckets.  Memory is O(buckets) regardless
  of sample count, and quantiles (p50/p95/p99/p999) are answered by
  walking the cumulative counts.  Quantile results are clamped to the
  observed ``[min, max]`` so a single sample reports itself exactly
  and a saturated top bucket reports the true maximum rather than the
  bucket bound.
- :func:`prometheus_text` -- Prometheus text exposition (``# TYPE``
  lines plus samples) for a :class:`~repro.obs.registry.MetricsRegistry`.
- :func:`write_json_snapshot` -- ``MetricsRegistry.snapshot()`` dumped
  to a JSON file.

Like the rest of ``repro.obs``, everything here is passive: recording
a sample or rendering an exposition never schedules simulator events.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Optional

__all__ = [
    "FixedBucketHistogram",
    "prometheus_text",
    "write_json_snapshot",
]


class FixedBucketHistogram:
    """Geometric fixed-bucket histogram over ``[lo, hi)``.

    Bucket ``i`` covers ``[lo * r**i, lo * r**(i+1))`` with
    ``r = (hi / lo) ** (1 / buckets)``; values strictly below ``lo``
    land in the underflow bucket (``lo`` itself is the inclusive lower
    edge of bucket 0), values at or above ``hi`` in the overflow
    bucket.  Exact ``min``/``max``/``total`` are tracked alongside so
    the edges stay honest.
    """

    __slots__ = (
        "lo", "hi", "buckets", "_log_span", "counts",
        "underflow", "overflow", "count", "minimum", "maximum", "total",
    )

    def __init__(self, lo: float = 1e-6, hi: float = 10.0, buckets: int = 128):
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
        if buckets < 1:
            raise ValueError(f"need at least one bucket, got {buckets}")
        self.lo = lo
        self.hi = hi
        self.buckets = buckets
        self._log_span = math.log(hi / lo)
        self.counts = [0] * buckets
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    # -- recording ---------------------------------------------------------

    def record(self, value: float) -> None:
        """Fold one observation in (NaN observations are ignored)."""
        if value != value:  # NaN
            return
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            idx = int(self.buckets * math.log(value / self.lo) / self._log_span)
            # Guard float rounding at the very top edge.
            if idx >= self.buckets:
                idx = self.buckets - 1
            self.counts[idx] += 1

    # -- quantiles ---------------------------------------------------------

    def _bucket_upper(self, idx: int) -> float:
        return self.lo * math.exp(self._log_span * (idx + 1) / self.buckets)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1); NaN while empty.

        Answers are bucket upper bounds clamped into the observed
        ``[min, max]``: an empty histogram returns NaN, a single
        sample returns that sample exactly, and a histogram whose mass
        sits entirely in the overflow bucket returns the observed
        maximum rather than pretending everything equals ``hi``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        target = max(1, math.ceil(q * self.count))
        cumulative = self.underflow
        if cumulative >= target:
            return self._clamp(self.lo)
        for idx, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                return self._clamp(self._bucket_upper(idx))
        # Target falls in the overflow bucket: all we know is the
        # sample was >= hi, and the tightest honest answer is the
        # observed maximum.
        return self.maximum

    def _clamp(self, value: float) -> float:
        return min(max(value, self.minimum), self.maximum)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def __len__(self) -> int:
        return self.count

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (sparse bucket counts)."""
        quantiles: Dict[str, Optional[float]] = {}
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99),
                         ("p999", 0.999)):
            value = self.quantile(q)
            quantiles[label] = None if value != value else value
        return {
            "lo": self.lo,
            "hi": self.hi,
            "buckets": self.buckets,
            "count": self.count,
            "underflow": self.underflow,
            "overflow": self.overflow,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "total": self.total,
            "nonzero": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            **quantiles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FixedBucketHistogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(lo=data["lo"], hi=data["hi"], buckets=data["buckets"])
        for key, value in data.get("nonzero", {}).items():
            hist.counts[int(key)] = int(value)
        hist.underflow = data.get("underflow", 0)
        hist.overflow = data.get("overflow", 0)
        hist.count = data.get("count", 0)
        hist.total = data.get("total", 0.0)
        if data.get("min") is not None:
            hist.minimum = data["min"]
        elif hist.count:
            hist.minimum = hist._derived_minimum()
        if data.get("max") is not None:
            hist.maximum = data["max"]
        elif hist.count:
            hist.maximum = hist._derived_maximum()
        return hist

    def _bucket_lower(self, idx: int) -> float:
        return self.lo * math.exp(self._log_span * idx / self.buckets)

    def _derived_minimum(self) -> float:
        """Tightest finite lower bound reconstructible from the buckets.

        Used when a serialised snapshot has ``count > 0`` but no
        ``min`` key: the true minimum is unknown, but it is at least
        bounded by the lowest occupied bucket's edge -- never the
        ``inf`` sentinel, which would poison quantile clamping.
        """
        if self.underflow:
            return self.lo
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count:
                return self._bucket_lower(idx)
        return self.hi  # all mass in overflow

    def _derived_maximum(self) -> float:
        """Finite upper-bound counterpart of :meth:`_derived_minimum`."""
        if self.overflow:
            return self.hi
        for idx in range(self.buckets - 1, -1, -1):
            if self.counts[idx]:
                return self._bucket_upper(idx)
        return self.lo  # all mass in underflow


_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """Sanitise a registry metric name for Prometheus exposition."""
    sanitised = _NAME_RE.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _disambiguate(prom: str, emitted: set) -> str:
    """Resolve a sanitised-name collision deterministically.

    Two registry names can sanitise to the same Prometheus name
    (``vc.v0.x`` and ``vc_v0_x``); emitting both under one name is
    invalid exposition (duplicate ``# TYPE`` + samples).  The first
    name keeps the plain form; later colliders get ``_2``, ``_3``, ...
    in emission order, which is sorted and therefore stable run to run.
    """
    if prom not in emitted:
        return prom
    n = 2
    while f"{prom}_{n}" in emitted:
        n += 1
    return f"{prom}_{n}"


def prometheus_text(
    registry,
    histograms: Optional[Dict[str, "FixedBucketHistogram"]] = None,
) -> str:
    """Prometheus text exposition of a registry (plus histograms).

    One ``# TYPE`` line per metric followed by its sample(s); names are
    sanitised (``vc.v0.arrived_bits`` becomes ``vc_v0_arrived_bits``).
    Distinct registry names that sanitise identically are kept distinct
    by suffixing later colliders with ``_2``, ``_3``, ... in sorted
    emission order (counters, then gauges, then histograms), so the
    exposition never contains duplicate metric names.

    ``histograms`` maps names to :class:`FixedBucketHistogram` objects;
    each renders as standard cumulative histogram exposition --
    ``_bucket{le="..."}`` samples (an anchor at ``le=lo`` carrying the
    underflow count, one edge per occupied bucket, ``le="+Inf"``),
    then ``_sum`` and ``_count``.  Bucket edges are ``repr``-precision
    floats, so a reader that knows ``lo``/``hi``/``buckets`` can map
    every edge back to its bucket index exactly (round-trip pinned in
    ``tests/obs/test_export.py``).  Rendering reads current values
    only -- it never mutates the registry or the histograms.
    """
    lines: List[str] = []
    emitted: set = set()
    snap = registry.snapshot()
    for name, value in sorted(snap["counters"].items()):
        prom = _disambiguate(_prom_name(name), emitted)
        emitted.add(prom)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in sorted(snap["gauges"].items()):
        prom = _disambiguate(_prom_name(name), emitted)
        emitted.add(prom)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, hist in sorted((histograms or {}).items()):
        prom = _disambiguate(_prom_name(name), emitted)
        emitted.add(prom)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = hist.underflow
        lines.append(f'{prom}_bucket{{le="{hist.lo!r}"}} {cumulative}')
        for idx, bucket_count in enumerate(hist.counts):
            if bucket_count:
                cumulative += bucket_count
                edge = hist._bucket_upper(idx)
                lines.append(f'{prom}_bucket{{le="{edge!r}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {hist.total}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_json_snapshot(registry, path: str) -> str:
    """Stream ``registry.snapshot()`` to ``path`` as JSON.

    Byte-identical to ``json.dump(registry.snapshot(), handle,
    indent=2, sort_keys=True)`` -- pinned in
    ``tests/obs/test_export.py`` -- but written one top-level section
    at a time via
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot_sections`, so
    the full snapshot document is never materialised alongside the
    live registry at fleet scale.  Returns ``path``.
    """
    with open(path, "w") as handle:
        handle.write("{")
        first = True
        for name, section in registry.snapshot_sections():
            if not first:
                handle.write(",")
            first = False
            body = json.dumps(section, indent=2, sort_keys=True)
            handle.write(f'\n  "{name}": ' + body.replace("\n", "\n  "))
        handle.write("\n}")
    return path
