"""Unified virtual-time runtime shared by every layer of the stack.

Before this module existed, each app module and benchmark hand-wired
the same pile: a :class:`~repro.sim.scheduler.Simulator`, a
:class:`~repro.sim.random.RandomStreams`, a
:class:`~repro.netsim.topology.Network`, a reservation manager, one
transport entity and one LLO per host, the HLO, and the ANSA platform
objects -- then fished per-node clocks back out of the network when an
experiment needed local time.  Component-platform follow-ups to the
paper (Korrontea, the component-based multimedia platforms) argue for
exactly the opposite shape: one small shared runtime/connector core
that media components plug into.

Three objects provide that core:

``Runtime``
    Owns the simulator, the seeded named RNG streams and the per-node
    clock registry.  Everything time- or randomness-related hangs off
    one object with one seed.

``Stack``
    A ``Runtime`` plus the layered service built on it (Figure 1 of
    the paper): network emulator, transport entities, LLOs, HLO,
    trader/REX/stream factory.  Topology is declared first
    (:meth:`Stack.host` / :meth:`Stack.link`), then :meth:`Stack.up`
    instantiates all layers.

``HostBuilder``
    The handle returned by :meth:`Stack.host`: it composes the netsim
    node, the node clock, and -- once the stack is up -- that host's
    transport entity and LLO instance, so call sites stop reaching
    through ``bed.network.host(name).clock`` and friends.

:class:`repro.apps.testbed.Testbed` is now a thin alias of ``Stack``
kept for existing call sites.
"""

from __future__ import annotations

import atexit
import itertools
import os
from typing import Dict, Iterator, Optional, Tuple

from repro.ansa.rex import RexRPC
from repro.ansa.stream import StreamFactory
from repro.ansa.trader import Trader
from repro.netsim.link import JitterModel, Link, LossModel
from repro.netsim.reservation import ReservationManager
from repro.netsim.topology import Host, Network
from repro.obs.trace import NULL_TRACER, TraceLevel, Tracer
from repro.orchestration.hlo import HighLevelOrchestrator
from repro.orchestration.llo import LLOInstance, build_llos
from repro.sim.clock import NodeClock
from repro.sim.random import RandomStreams
from repro.sim.scheduler import Process, Simulator
from repro.transport.entity import TransportEntity
from repro.transport.service import build_transport


class Runtime:
    """The virtual-time substrate: simulator + RNG streams + clocks.

    One ``Runtime`` per experiment; every layer built on top shares its
    simulator and draws named, independently-seeded randomness from
    :meth:`stream`.  Node clocks register here as hosts are created, so
    per-node local time is one registry lookup instead of a dig through
    the topology.
    """

    #: Sequence numbers for the ``REPRO_TRACE`` auto-export files.
    _trace_auto_ids = itertools.count()

    def __init__(self, seed: int = 0):
        self.sim = Simulator()
        self.rng = RandomStreams(seed)
        self._clocks: Dict[str, NodeClock] = {}
        self._maybe_auto_trace()

    def _maybe_auto_trace(self) -> None:
        """Honour the ``REPRO_TRACE`` environment hook.

        ``REPRO_TRACE=<prefix>`` turns tracing on for every runtime in
        the process and exports ``<prefix>.<n>.json`` at interpreter
        exit -- how CI smoke-runs a benchmark traced without the
        benchmark knowing.  ``REPRO_TRACE_LEVEL=packet`` raises the
        verbosity.
        """
        prefix = os.environ.get("REPRO_TRACE")
        if not prefix:
            return
        level_name = os.environ.get("REPRO_TRACE_LEVEL", "lifecycle")
        tracer = self.enable_tracing(TraceLevel[level_name.upper()])
        path = f"{prefix}.{next(Runtime._trace_auto_ids)}.json"

        def export() -> None:
            if len(tracer):
                directory = os.path.dirname(path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                tracer.export(path)

        atexit.register(export)

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def run_until(self, when: float) -> float:
        return self.sim.run(until=when)

    def spawn(self, gen, name: Optional[str] = None) -> Process:
        return self.sim.spawn(gen, name=name)

    # -- randomness --------------------------------------------------------

    def stream(self, name: str):
        """Named RNG stream, deterministic given the runtime seed."""
        return self.rng.stream(name)

    # -- observability -----------------------------------------------------

    def enable_tracing(self, level: TraceLevel = TraceLevel.LIFECYCLE) -> Tracer:
        """Install a sim-time tracer on the simulator and return it.

        All instrumentation sites across the stack start recording;
        ``level=TraceLevel.PACKET`` additionally records per-packet link
        occupancy and host receive events.  Call before (or after) the
        run; tracing only appends to an in-memory list and never
        perturbs simulation event ordering.
        """
        tracer = Tracer(lambda: self.sim.now, level)
        self.sim.trace = tracer
        return tracer

    def disable_tracing(self) -> None:
        """Revert to the zero-cost null tracer."""
        self.sim.trace = NULL_TRACER

    def export_trace(self, path: str) -> str:
        """Write the recorded trace as Chrome-trace JSON (Perfetto-ready)."""
        tracer = self.sim.trace
        if isinstance(tracer, Tracer):
            return tracer.export(path)
        raise RuntimeError(
            "tracing is not enabled; call enable_tracing() before export"
        )

    def enable_audit(self, flight_capacity: int = 4096,
                     max_drilldowns: int = 8,
                     flight_recorder: bool = True,
                     max_timeline: Optional[int] = None):
        """Install a QoS conformance auditor; returns the auditor.

        Registers every subsequent T-Connect's negotiated contract and
        files per-sample-period conformance verdicts, renegotiation
        outcomes and orchestration skew (see :mod:`repro.obs.audit`).
        When tracing is off, a bounded flight-recorder ring is
        installed so violated periods can still be drilled down to
        their causal packets; an already-enabled tracer is reused.
        Fleet-scale soaks pass ``flight_recorder=False`` (skip the
        per-packet ring entirely) and a small ``max_timeline`` (bound
        each connection's retained verdict timeline) to keep a
        100k-connection snapshot a tractable document.  Like tracing,
        the audit only records in memory: it never schedules simulator
        events or perturbs a run.
        """
        from repro.obs.audit import install_audit

        return install_audit(
            self.sim, flight_capacity=flight_capacity,
            max_drilldowns=max_drilldowns,
            flight_recorder=flight_recorder,
            max_timeline=max_timeline,
        )

    def export_audit(self, path: str) -> str:
        """Write the audit snapshot as JSON (``repro.obs.report run``)."""
        auditor = self.sim.auditor
        if auditor is None:
            raise RuntimeError(
                "auditing is not enabled; call enable_audit() before export"
            )
        return auditor.export(path)

    def enable_profiling(self, max_events: int = 100_000):
        """Install a wall-clock span profiler; returns the profiler.

        Instruments scheduler dispatch, link commit, transport delivery
        and audit evaluation with :func:`time.perf_counter` spans (see
        :mod:`repro.obs.profile`).  Every site is guarded inline, so
        runs with profiling disabled execute the exact same event
        sequence -- the zero-perturbation identity is pinned by
        ``tests/obs/test_profile.py``.  Enable *before* calling
        ``sim.run``: the dispatch loop latches the profiler per run()
        call.
        """
        from repro.obs.profile import WallProfiler

        profiler = WallProfiler(max_events=max_events)
        self.sim.profile = profiler
        return profiler

    def disable_profiling(self) -> None:
        """Detach the profiler (takes effect on the next ``run`` call)."""
        self.sim.profile = None

    def export_profile(self, path: str) -> str:
        """Write the collected profile document as JSON."""
        profiler = self.sim.profile
        if profiler is None:
            raise RuntimeError(
                "profiling is not enabled; call enable_profiling() "
                "before export"
            )
        return profiler.export(path)

    # -- fault injection ---------------------------------------------------

    def with_fault_plan(self, plan, network=None) -> "Runtime":
        """Arm a fault plan (or :class:`~repro.faults.plan.ChaosPlan`).

        ``network`` defaults to the runtime's own ``network`` attribute
        (present on :class:`Stack`); a bare ``Runtime`` must pass one
        explicitly.  A :class:`~repro.faults.plan.ChaosPlan` is
        materialised from the dedicated ``"faults"`` RNG stream, so the
        generated episodes are a pure function of the runtime seed and
        never perturb any other stream.  Armed injectors are appended
        to :attr:`fault_injectors` for inspection.  An empty plan arms
        into nothing: zero simulator events, zero counters, zero
        randomness -- fault-free runs stay bit-identical.
        """
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import ChaosPlan, FaultPlan

        if network is None:
            network = getattr(self, "network", None)
            if network is None:
                raise ValueError(
                    "this runtime has no network; pass one explicitly"
                )
        if isinstance(plan, ChaosPlan):
            plan = plan.materialise(self.stream("faults"))
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        injector = FaultInjector(self.sim, network, plan).arm()
        if not hasattr(self, "fault_injectors"):
            #: Armed injectors, in installation order.
            self.fault_injectors = []
        self.fault_injectors.append(injector)
        return self

    # -- clock registry ----------------------------------------------------

    def register_clock(self, name: str, clock: NodeClock) -> NodeClock:
        self._clocks[name] = clock
        return clock

    def clock(self, name: str) -> NodeClock:
        return self._clocks[name]

    def clocks(self) -> Iterator[Tuple[str, NodeClock]]:
        return iter(self._clocks.items())


class HostBuilder:
    """Composed per-host view: netsim node + clock + entity + LLO.

    Returned by :meth:`Stack.host`.  The node and clock exist
    immediately; :attr:`entity` and :attr:`llo` become available once
    the stack is up.
    """

    def __init__(self, stack: "Stack", node: Host):
        self._stack = stack
        self.node = node

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def clock(self) -> NodeClock:
        return self.node.clock

    def link(
        self,
        other: str,
        bandwidth_bps: float = 10e6,
        prop_delay: float = 0.002,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        bidirectional: bool = True,
    ) -> "HostBuilder":
        """Attach this host to ``other`` (host or router); chainable."""
        self._stack.link(
            self.name, other, bandwidth_bps, prop_delay=prop_delay,
            jitter=jitter, loss=loss, ber=ber, buffer_bytes=buffer_bytes,
            bidirectional=bidirectional,
        )
        return self

    @property
    def entity(self) -> TransportEntity:
        """This host's transport entity (stack must be up)."""
        return self._stack.entities[self.name]

    @property
    def llo(self) -> LLOInstance:
        """This host's low-level orchestrator (stack must be up)."""
        return self._stack.llos[self.name]

    def publishes(
        self,
        stream_id: str,
        to: str,
        media_qos,
        tsap: Optional[int] = None,
        sink_tsap: Optional[int] = None,
        worker_factory=None,
        orch_policy=None,
    ):
        """Register this host as the publisher of ``stream_id``.

        Declares a control-plane stream template whose source is this
        host and whose sink is host ``to``, and returns the
        :class:`~repro.orchestration.controlplane.PublisherHandle`
        whose ``ready()``/``unready()`` calls drive the reconciler.
        TSAPs are auto-allocated from the stack's control-plane range
        unless given.  Requires :meth:`Stack.enable_controlplane` first.
        """
        from repro.orchestration.controlplane import StreamTemplate
        from repro.transport.addresses import TransportAddress

        controlplane = self._stack.controlplane
        if controlplane is None:
            raise RuntimeError(
                "no control plane; call stack.enable_controlplane() first"
            )
        if tsap is None:
            tsap = self._stack._allocate_cp_tsap()
        if sink_tsap is None:
            sink_tsap = self._stack._allocate_cp_tsap()
        template = StreamTemplate(
            stream_id=stream_id,
            source=TransportAddress(self.name, tsap),
            sink=TransportAddress(to, sink_tsap),
            media_qos=media_qos,
            worker_factory=worker_factory,
            orch_policy=orch_policy,
        )
        return controlplane.register(template)


class Stack(Runtime):
    """Builder and container for a complete experiment environment.

    Usage::

        stack = Stack(seed=1)
        stack.host("client")
        stack.host("server", clock_skew_ppm=120).link("client")
        stack.up()                    # instantiate all layers
        ... stack.sim, stack.entities, stack.hlo, stack.factory ...
    """

    #: Not a pytest test class despite subclasses' names.
    __test__ = False

    def __init__(self, seed: int = 0, sample_period: float = 1.0,
                 gap_timeout: float = 0.05, reservable_fraction: float = 0.9):
        super().__init__(seed)
        self.network = Network(self.sim, self.rng)
        self.sample_period = sample_period
        self.gap_timeout = gap_timeout
        self.reservable_fraction = reservable_fraction
        self.reservations: Optional[ReservationManager] = None
        self.entities: Dict[str, TransportEntity] = {}
        self.llos: Dict[str, LLOInstance] = {}
        self.hlo: Optional[HighLevelOrchestrator] = None
        self.trader: Optional[Trader] = None
        self.rpc: Optional[RexRPC] = None
        self.factory: Optional[StreamFactory] = None
        self.controlplane = None
        self._hosts: Dict[str, HostBuilder] = {}
        self._cp_tsaps = itertools.count(7000)
        self._up = False

    # -- topology ----------------------------------------------------------

    def host(self, name: str, clock_skew_ppm: float = 0.0) -> HostBuilder:
        """Add an end-system before :meth:`up`."""
        self._check_down()
        node = self.network.add_host(name, clock_skew_ppm=clock_skew_ppm)
        self.register_clock(name, node.clock)
        builder = HostBuilder(self, node)
        self._hosts[name] = builder
        return builder

    def router(self, name: str):
        self._check_down()
        return self.network.add_router(name)

    def link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float = 10e6,
        prop_delay: float = 0.002,
        jitter: Optional[JitterModel] = None,
        loss: Optional[LossModel] = None,
        ber: float = 0.0,
        buffer_bytes: int = 256 * 1024,
        bidirectional: bool = True,
    ) -> Tuple[Link, Optional[Link]]:
        self._check_down()
        return self.network.add_link(
            a, b, bandwidth_bps, prop_delay=prop_delay, jitter=jitter,
            loss=loss, ber=ber, buffer_bytes=buffer_bytes,
            bidirectional=bidirectional,
        )

    def host_stack(self, name: str) -> HostBuilder:
        """The composed per-host view for an existing host."""
        return self._hosts[name]

    def _check_down(self) -> None:
        if self._up:
            raise RuntimeError("topology is frozen once the stack is up")

    # -- stack -------------------------------------------------------------

    def up(self, max_orch_sessions: int = 8) -> "Stack":
        """Instantiate transport, orchestration and platform layers."""
        if self._up:
            return self
        self._up = True
        self.reservations = ReservationManager(
            self.network, reservable_fraction=self.reservable_fraction
        )
        self.entities = build_transport(
            self.sim,
            self.network,
            self.reservations,
            sample_period=self.sample_period,
            gap_timeout=self.gap_timeout,
        )
        self.llos = build_llos(
            self.sim, self.network, self.entities,
            max_sessions=max_orch_sessions,
        )
        self.hlo = HighLevelOrchestrator(self.sim, self.llos)
        self.trader = Trader()
        self.rpc = RexRPC(self.sim, self.network, self.trader)
        self.factory = StreamFactory(self.sim, self.entities)
        return self

    def _allocate_cp_tsap(self) -> int:
        """Next TSAP from the control-plane range (7000 upward)."""
        return next(self._cp_tsaps)

    def enable_controlplane(
        self,
        policy=None,
        delivery=None,
        rng_stream: str = "controlplane",
    ):
        """Install the desired-state control plane; returns it.

        Builds a :class:`~repro.orchestration.controlplane.ControlPlane`
        over this stack's HLO, stream factory, and reservation manager.
        ``delivery`` is an optional
        :class:`~repro.orchestration.events.HookDeliveryConfig` making
        hook-event delivery flaky (late, reordered, duplicated) from
        the named runtime RNG stream -- the chaos-test configuration.
        If auditing is enabled (before or after this call), the
        control-plane snapshot is attached to the audit report as a
        ``controlplane`` section.
        """
        from repro.orchestration.controlplane import ControlPlane

        if not self._up:
            raise RuntimeError("bring the stack up before the control plane")
        if self.controlplane is not None:
            return self.controlplane
        self.controlplane = ControlPlane(
            self.sim,
            self.hlo,
            self.factory,
            self.reservations,
            clock_of=self.clock,
            policy=policy,
            delivery=delivery,
            rng=self.stream(rng_stream),
        )
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.attach_section("controlplane", self.controlplane.snapshot)
        return self.controlplane

    def enable_audit(self, flight_capacity: int = 4096,
                     max_drilldowns: int = 8,
                     flight_recorder: bool = True,
                     max_timeline: Optional[int] = None):
        """As :meth:`Runtime.enable_audit`, plus control-plane linkage.

        When the control plane is already enabled its snapshot is
        attached to the auditor as a ``controlplane`` report section.
        """
        auditor = super().enable_audit(
            flight_capacity=flight_capacity, max_drilldowns=max_drilldowns,
            flight_recorder=flight_recorder, max_timeline=max_timeline,
        )
        if self.controlplane is not None:
            auditor.attach_section("controlplane", self.controlplane.snapshot)
        return auditor

    # -- conveniences ------------------------------------------------------

    @classmethod
    def star(
        cls,
        seed: int = 0,
        leaves: int = 3,
        bandwidth_bps: float = 20e6,
        prop_delay: float = 0.003,
        jitter: Optional[JitterModel] = None,
        clock_skew_ppm: float = 100.0,
        centre_name: str = "hub",
    ) -> "Stack":
        """A hub-and-spoke topology: ``leaf0..leafN`` around a router.

        Leaf clocks drift at alternating ±``clock_skew_ppm`` so that
        drift experiments have genuine divergence out of the box.
        """
        stack = cls(seed=seed)
        stack.router(centre_name)
        for i in range(leaves):
            skew = clock_skew_ppm if i % 2 == 0 else -clock_skew_ppm
            stack.host(f"leaf{i}", clock_skew_ppm=skew * (1 + i / 10))
            stack.link(
                f"leaf{i}", centre_name, bandwidth_bps,
                prop_delay=prop_delay, jitter=jitter,
            )
        return stack
