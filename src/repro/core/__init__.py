"""Shared virtual-time runtime core (simulator, RNG, clocks, stack)."""

from repro.core.runtime import HostBuilder, Runtime, Stack

__all__ = ["HostBuilder", "Runtime", "Stack"]
