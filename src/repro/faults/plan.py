"""Fault plans: declarative scripts of timed network-fault episodes.

A :class:`FaultPlan` is an ordered collection of episodes, each pinned
to a virtual-time instant:

- :class:`LinkDown` / :class:`LinkUp` -- carrier loss and restoration
  on one directed link (use :func:`link_outage` for the common paired,
  optionally bidirectional outage);
- :class:`BandwidthSqueeze` -- temporarily scale a link's serialisation
  rate by a factor for a bounded interval;
- :class:`LossBurst` -- swap a harsher
  :class:`~repro.netsim.link.LossModel` onto a link for an interval;
- :class:`NodeCrash` / :class:`NodeRestart` -- fail-stop and recover a
  router (use :func:`node_outage` for the pair).

Plans are pure data: nothing happens until a
:class:`~repro.faults.injector.FaultInjector` arms them on a simulator,
so the same plan replays identically across runs and seeds.
:class:`ChaosPlan` generates a randomized plan from a named
:mod:`repro.sim.random` stream -- deterministic for a given seed.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.netsim.link import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss


@dataclass(frozen=True)
class FaultEpisode:
    """Base class: one scheduled fault event.

    ``at`` is the absolute virtual time the episode begins.  Episodes
    with a ``duration`` end (are undone) at ``at + duration``;
    instantaneous episodes (:class:`LinkDown`, :class:`LinkUp`,
    :class:`NodeCrash`, :class:`NodeRestart`) only begin.
    """

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"episode time must be non-negative, got {self.at}")

    @property
    def kind(self) -> str:
        """Short snake_case tag used for counters and trace labels."""
        return _KIND_NAMES[type(self)]


@dataclass(frozen=True)
class LinkDown(FaultEpisode):
    """Carrier loss on the directed link ``src -> dst`` at time ``at``."""

    src: str = ""
    dst: str = ""


@dataclass(frozen=True)
class LinkUp(FaultEpisode):
    """Carrier restoration on the directed link ``src -> dst`` at ``at``."""

    src: str = ""
    dst: str = ""


@dataclass(frozen=True)
class BandwidthSqueeze(FaultEpisode):
    """Scale the rate of ``src -> dst`` by ``factor`` for ``duration`` s."""

    duration: float = 0.0
    src: str = ""
    dst: str = ""
    factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.factor <= 0:
            raise ValueError(f"rate factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class LossBurst(FaultEpisode):
    """Swap ``loss`` onto ``src -> dst`` for ``duration`` seconds.

    The link's previous loss model is reinstated when the burst ends.
    Defaults to a deep Gilbert-Elliott bad spell.
    """

    duration: float = 0.0
    src: str = ""
    dst: str = ""
    loss: LossModel = field(
        default_factory=lambda: GilbertElliottLoss(
            p_good_to_bad=0.3, p_bad_to_good=0.1, p_good=0.05, p_bad=0.7
        )
    )

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class NodeCrash(FaultEpisode):
    """Fail-stop the router ``node`` at time ``at``."""

    node: str = ""


@dataclass(frozen=True)
class NodeRestart(FaultEpisode):
    """Restart the crashed router ``node`` at time ``at``."""

    node: str = ""


_KIND_NAMES = {
    LinkDown: "link_down",
    LinkUp: "link_up",
    BandwidthSqueeze: "bandwidth_squeeze",
    LossBurst: "loss_burst",
    NodeCrash: "node_crash",
    NodeRestart: "node_restart",
}


def link_outage(
    src: str, dst: str, at: float, duration: float, bidirectional: bool = True
) -> Tuple[FaultEpisode, ...]:
    """Episode pair(s) for a link outage of ``duration`` starting at ``at``.

    With ``bidirectional`` (the default) both directions of the link
    fail together, which is how a physical cut behaves; pass False to
    sever only the ``src -> dst`` data direction while the reverse
    (control/credit) direction stays up.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    episodes: List[FaultEpisode] = [
        LinkDown(at, src=src, dst=dst),
        LinkUp(at + duration, src=src, dst=dst),
    ]
    if bidirectional:
        episodes += [
            LinkDown(at, src=dst, dst=src),
            LinkUp(at + duration, src=dst, dst=src),
        ]
    return tuple(episodes)


def node_outage(node: str, at: float, duration: float) -> Tuple[FaultEpisode, ...]:
    """A crash/restart pair taking router ``node`` out for ``duration`` s."""
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    return (NodeCrash(at, node=node), NodeRestart(at + duration, node=node))


class FaultPlan:
    """An ordered, validated collection of fault episodes.

    Plans are immutable once built and safe to share between runs.  An
    empty plan is a valid no-op: installing it schedules no simulator
    events, touches no counters and consumes no randomness, so a run
    with ``FaultPlan()`` is bit-identical to a run with no plan at all.
    """

    def __init__(self, episodes: Iterable[FaultEpisode] = ()):
        flat: List[FaultEpisode] = []
        for episode in episodes:
            if isinstance(episode, FaultEpisode):
                flat.append(episode)
            else:  # a tuple from link_outage()/node_outage()
                flat.extend(episode)
        for episode in flat:
            if not isinstance(episode, FaultEpisode):
                raise TypeError(f"not a fault episode: {episode!r}")
        self._episodes: Tuple[FaultEpisode, ...] = tuple(
            sorted(flat, key=lambda e: e.at)
        )

    def __iter__(self) -> Iterator[FaultEpisode]:
        """Iterate episodes in start-time order."""
        return iter(self._episodes)

    def __len__(self) -> int:
        """Number of episodes in the plan."""
        return len(self._episodes)

    def __bool__(self) -> bool:
        """True when the plan has at least one episode."""
        return bool(self._episodes)

    @property
    def episodes(self) -> Tuple[FaultEpisode, ...]:
        """The episodes, sorted by start time."""
        return self._episodes

    @property
    def horizon(self) -> float:
        """Virtual time by which every episode has begun and ended."""
        end = 0.0
        for episode in self._episodes:
            end = max(end, episode.at + getattr(episode, "duration", 0.0))
        return end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Human-readable summary for debugging."""
        return f"FaultPlan({len(self._episodes)} episodes, horizon={self.horizon:g}s)"


# -- serialization ---------------------------------------------------------
#
# Plans travel: a shrunk minimal plan is written to a repro file and
# replayed later, and a scenario spec embeds concrete episodes so a
# compiled fleet is a pure function of (spec, seed).  The JSON form is
# the canonical identity: two plans are "the same" iff their jsonable
# forms are equal (episode dataclass equality is unusable because loss
# models carry run-time channel state and no __eq__).


def _loss_to_jsonable(loss: LossModel) -> Dict[str, Any]:
    """Serialize a loss model's *parameters* (never its channel state)."""
    if isinstance(loss, GilbertElliottLoss):
        return {
            "model": "gilbert-elliott",
            "p_good_to_bad": loss.p_good_to_bad,
            "p_bad_to_good": loss.p_bad_to_good,
            "p_good": loss.p_good,
            "p_bad": loss.p_bad,
        }
    if isinstance(loss, BernoulliLoss):
        return {"model": "bernoulli", "p": loss.p}
    if isinstance(loss, NoLoss):
        return {"model": "none"}
    raise TypeError(f"cannot serialize loss model {loss!r}")


def _loss_from_jsonable(data: Dict[str, Any]) -> LossModel:
    """Rebuild a pristine loss model from its serialized parameters."""
    model = data.get("model")
    if model == "gilbert-elliott":
        return GilbertElliottLoss(
            p_good_to_bad=data["p_good_to_bad"],
            p_bad_to_good=data["p_bad_to_good"],
            p_good=data["p_good"],
            p_bad=data["p_bad"],
        )
    if model == "bernoulli":
        return BernoulliLoss(data["p"])
    if model == "none":
        return NoLoss()
    raise ValueError(f"unknown loss model {model!r}")


def episode_to_jsonable(episode: FaultEpisode) -> Dict[str, Any]:
    """One episode as a plain JSON-serialisable dict."""
    data: Dict[str, Any] = {"kind": episode.kind, "at": episode.at}
    if isinstance(episode, (NodeCrash, NodeRestart)):
        data["node"] = episode.node
    else:
        data["src"] = episode.src
        data["dst"] = episode.dst
    if isinstance(episode, BandwidthSqueeze):
        data["duration"] = episode.duration
        data["factor"] = episode.factor
    elif isinstance(episode, LossBurst):
        data["duration"] = episode.duration
        data["loss"] = _loss_to_jsonable(episode.loss)
    return data


def episode_from_jsonable(data: Dict[str, Any]) -> FaultEpisode:
    """Rebuild one episode from :func:`episode_to_jsonable` output."""
    kind = data.get("kind")
    at = data["at"]
    if kind == "link_down":
        return LinkDown(at, src=data["src"], dst=data["dst"])
    if kind == "link_up":
        return LinkUp(at, src=data["src"], dst=data["dst"])
    if kind == "bandwidth_squeeze":
        return BandwidthSqueeze(
            at, duration=data["duration"], src=data["src"],
            dst=data["dst"], factor=data["factor"],
        )
    if kind == "loss_burst":
        return LossBurst(
            at, duration=data["duration"], src=data["src"],
            dst=data["dst"], loss=_loss_from_jsonable(data["loss"]),
        )
    if kind == "node_crash":
        return NodeCrash(at, node=data["node"])
    if kind == "node_restart":
        return NodeRestart(at, node=data["node"])
    raise ValueError(f"unknown episode kind {kind!r}")


def plan_to_jsonable(plan: "FaultPlan") -> List[Dict[str, Any]]:
    """A whole plan as a JSON-serialisable episode list (sorted order)."""
    return [episode_to_jsonable(episode) for episode in plan]


def plan_from_jsonable(data: Iterable[Dict[str, Any]]) -> "FaultPlan":
    """Rebuild a :class:`FaultPlan` from :func:`plan_to_jsonable` output."""
    return FaultPlan(episode_from_jsonable(item) for item in data)


@dataclass
class ChaosPlan:
    """Generator of randomized fault plans (chaos-testing mode).

    Draws a Poisson-ish sequence of episodes over ``[warmup, horizon)``
    from a caller-supplied RNG -- pass a named
    :meth:`repro.sim.random.RandomStreams.stream` so the generated plan
    is a pure function of the runtime seed.  Link targets are drawn
    from ``links``; router crashes from ``routers`` (empty disables
    crashes).
    """

    horizon: float
    links: Sequence[Tuple[str, str]]
    routers: Sequence[str] = ()
    warmup: float = 0.5
    episode_rate: float = 0.2
    min_duration: float = 0.1
    max_duration: float = 1.0
    bidirectional_outages: bool = True

    def __post_init__(self) -> None:
        if self.horizon <= self.warmup:
            raise ValueError("horizon must exceed warmup")
        if not self.links:
            raise ValueError("chaos needs at least one target link")
        if self.episode_rate <= 0:
            raise ValueError("episode_rate must be positive")
        if not 0 < self.min_duration <= self.max_duration:
            raise ValueError("need 0 < min_duration <= max_duration")

    def materialise(self, rng: _random.Random) -> FaultPlan:
        """Draw a concrete :class:`FaultPlan` from ``rng``.

        Interarrival times are exponential with mean
        ``1 / episode_rate``; each episode's kind, target and duration
        are drawn uniformly.  Durations are clipped so every episode
        ends by ``horizon``.
        """
        kinds = ["outage", "squeeze", "loss_burst"]
        if self.routers:
            kinds.append("crash")
        episodes: List[FaultEpisode] = []
        t = self.warmup + rng.expovariate(self.episode_rate)
        while t < self.horizon:
            duration = min(
                rng.uniform(self.min_duration, self.max_duration),
                self.horizon - t,
            )
            kind = rng.choice(kinds)
            if kind == "crash":
                node = rng.choice(list(self.routers))
                episodes.extend(node_outage(node, t, duration))
            else:
                src, dst = rng.choice(list(self.links))
                if kind == "outage":
                    episodes.extend(
                        link_outage(
                            src, dst, t, duration,
                            bidirectional=self.bidirectional_outages,
                        )
                    )
                elif kind == "squeeze":
                    episodes.append(
                        BandwidthSqueeze(
                            t, duration=duration, src=src, dst=dst,
                            factor=rng.uniform(0.1, 0.6),
                        )
                    )
                else:
                    episodes.append(
                        LossBurst(t, duration=duration, src=src, dst=dst)
                    )
            t += rng.expovariate(self.episode_rate)
        return FaultPlan(episodes)
