"""Automatic shrinking of failing fault plans to minimal repros.

A seeded :class:`~repro.faults.plan.ChaosPlan` that breaks an invariant
usually breaks it with one or two of its dozens of episodes; the rest
are noise that makes the failure expensive to understand and replay.
:func:`shrink_plan` reduces a failing plan to a *minimal reproducing*
plan: every episode that can be dropped is dropped, and every timed
episode that can be shortened is shortened, while a caller-supplied
``still_fails`` predicate (typically "rerun the scenario with this
candidate plan and check the invariant still breaks") keeps returning
True.

The algorithm is delta debugging (ddmin) over *atoms* -- episode
groups that only make sense together: a ``LinkDown`` travels with its
matching ``LinkUp``, a ``NodeCrash`` with its ``NodeRestart``, so no
candidate plan ever leaves a link down or a router crashed forever by
accident of shrinking.  A second pass then repeatedly halves the
active duration of each surviving atom (squeeze/burst durations;
down->up and crash->restart gaps) down to ``min_duration``.

Guarantees (unit-tested in ``tests/faults/test_shrink.py``):

- **soundness** -- the returned plan satisfies ``still_fails``, and
  every probed candidate (reproducing or not) is recorded in
  :attr:`ShrinkResult.attempts`, so no rejected plan vanishes silently;
- **termination** -- the ddmin pass strictly shrinks the atom set or
  raises granularity until it exceeds the plan size, the duration pass
  halves geometrically to a fixed floor, and ``max_probes`` backstops
  both (setting :attr:`ShrinkResult.truncated`);
- **idempotence** -- shrinking an already-minimal plan returns an
  identical plan and accepts zero changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Sequence, Tuple

from repro.faults.plan import (
    BandwidthSqueeze,
    FaultEpisode,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
    NodeCrash,
    NodeRestart,
    plan_to_jsonable,
)


@dataclass(frozen=True)
class ShrinkProbe:
    """One candidate plan tried during shrinking, with its outcome."""

    action: str          # e.g. "drop 3 atom(s)", "halve duration c0.a->c0.b"
    episodes: int        # size of the candidate plan
    reproduced: bool     # did ``still_fails`` hold for the candidate?


@dataclass
class ShrinkResult:
    """Outcome of :func:`shrink_plan`."""

    plan: FaultPlan
    original_episodes: int
    probes: List[ShrinkProbe] = field(default_factory=list)
    truncated: bool = False

    @property
    def accepted(self) -> int:
        """Number of probes whose candidate reproduced (was kept)."""
        return sum(1 for probe in self.probes if probe.reproduced)

    @property
    def minimal(self) -> bool:
        """True when shrinking changed nothing (plan was already minimal)."""
        return self.accepted == 0

    def to_jsonable(self) -> dict:
        """Summary + plan as a plain dict (the repro-file payload)."""
        return {
            "episodes": plan_to_jsonable(self.plan),
            "original_episodes": self.original_episodes,
            "probes": len(self.probes),
            "accepted": self.accepted,
            "truncated": self.truncated,
        }


#: An atom: episodes that must be dropped (or kept) together.
Atom = Tuple[FaultEpisode, ...]


def _group_atoms(plan: FaultPlan) -> List[Atom]:
    """Group a plan's episodes into droppable atoms.

    Each ``LinkDown`` pairs with the next ``LinkUp`` on the same
    directed link; each ``NodeCrash`` with the next ``NodeRestart`` of
    the same node.  Unmatched begin/end episodes and all timed episodes
    stand alone.  Atom order follows first-episode time, so dropping a
    contiguous chunk of atoms drops a contiguous stretch of the plan.
    """
    episodes = list(plan)
    used = [False] * len(episodes)
    atoms: List[Atom] = []
    for i, episode in enumerate(episodes):
        if used[i]:
            continue
        used[i] = True
        if isinstance(episode, LinkDown):
            for j in range(i + 1, len(episodes)):
                other = episodes[j]
                if (not used[j] and isinstance(other, LinkUp)
                        and other.src == episode.src
                        and other.dst == episode.dst):
                    used[j] = True
                    atoms.append((episode, other))
                    break
            else:
                atoms.append((episode,))
        elif isinstance(episode, NodeCrash):
            for j in range(i + 1, len(episodes)):
                other = episodes[j]
                if (not used[j] and isinstance(other, NodeRestart)
                        and other.node == episode.node):
                    used[j] = True
                    atoms.append((episode, other))
                    break
            else:
                atoms.append((episode,))
        else:
            atoms.append((episode,))
    return atoms


def _plan_of(atoms: Sequence[Atom]) -> FaultPlan:
    """Flatten atoms back into a plan."""
    return FaultPlan(episode for atom in atoms for episode in atom)


def _atom_duration(atom: Atom) -> float:
    """The atom's active duration (0 for instantaneous atoms)."""
    if len(atom) == 2:
        return atom[1].at - atom[0].at
    episode = atom[0]
    return getattr(episode, "duration", 0.0)


def _halve_atom(atom: Atom) -> Atom:
    """The same fault at half the active duration."""
    if len(atom) == 2:
        begin, end = atom
        return (begin, replace(end, at=begin.at + (end.at - begin.at) / 2))
    episode = atom[0]
    if isinstance(episode, (BandwidthSqueeze, LossBurst)):
        return (replace(episode, duration=episode.duration / 2),)
    return atom


def _atom_label(atom: Atom) -> str:
    """Human-readable atom description for probe records."""
    episode = atom[0]
    if isinstance(episode, (NodeCrash, NodeRestart)):
        return f"{episode.kind}:{episode.node}@{episode.at:g}"
    return f"{episode.kind}:{episode.src}->{episode.dst}@{episode.at:g}"


def shrink_plan(
    plan: FaultPlan,
    still_fails: Callable[[FaultPlan], bool],
    *,
    min_duration: float = 0.05,
    max_probes: int = 500,
) -> ShrinkResult:
    """Reduce ``plan`` to a minimal plan for which ``still_fails`` holds.

    ``still_fails(candidate)`` must be deterministic for a fixed
    candidate (rerunning a seeded scenario qualifies).  The input plan
    itself must fail -- a plan that does not reproduce has nothing to
    shrink and raises ``ValueError``.

    ``min_duration`` floors the duration-halving pass (an episode is
    never shortened below it), and ``max_probes`` bounds the total
    number of predicate evaluations.
    """
    if not still_fails(plan):
        raise ValueError(
            "the input plan does not reproduce the failure; "
            "nothing to shrink"
        )
    result = ShrinkResult(plan=plan, original_episodes=len(plan))

    def probe(candidate: FaultPlan, action: str) -> bool:
        if len(result.probes) >= max_probes:
            result.truncated = True
            return False
        ok = bool(still_fails(candidate))
        result.probes.append(
            ShrinkProbe(action=action, episodes=len(candidate),
                        reproduced=ok)
        )
        return ok

    # Pass 1: ddmin (complement reduction) over atoms.
    atoms = _group_atoms(plan)
    granularity = 2
    while len(atoms) >= 2 and not result.truncated:
        chunk = max(1, len(atoms) // granularity)
        reduced = False
        for start in range(0, len(atoms), chunk):
            candidate_atoms = atoms[:start] + atoms[start + chunk:]
            if not candidate_atoms:
                continue
            candidate = _plan_of(candidate_atoms)
            if probe(candidate, f"drop {len(atoms) - len(candidate_atoms)} "
                                f"atom(s) at {start}"):
                atoms = candidate_atoms
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if result.truncated:
                break
        if not reduced:
            if granularity >= len(atoms):
                break
            granularity = min(granularity * 2, len(atoms))

    # Pass 2: halve surviving atoms' active durations toward the floor.
    changed = True
    while changed and not result.truncated:
        changed = False
        for index, atom in enumerate(atoms):
            duration = _atom_duration(atom)
            if duration / 2 < min_duration:
                continue
            halved = _halve_atom(atom)
            if halved == atom:
                continue
            candidate_atoms = list(atoms)
            candidate_atoms[index] = halved
            candidate = _plan_of(candidate_atoms)
            if probe(candidate, f"halve {_atom_label(atom)}"):
                atoms[index] = halved
                changed = True
            if result.truncated:
                break

    result.plan = _plan_of(atoms)
    return result
