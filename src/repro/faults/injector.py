"""The fault injector: schedules a plan's episodes on the simulator.

One :class:`FaultInjector` arms one :class:`~repro.faults.plan.FaultPlan`
against one :class:`~repro.netsim.topology.Network`.  Every episode is
scheduled as an ordinary simulator callback at plan-build time, so
injection is fully deterministic: no randomness is consumed at fire
time, and an empty plan arms into nothing at all.

Observability: each applied episode bumps ``faults.*`` counters in
``sim.metrics`` and -- when tracing is enabled -- appears on the
``faults`` track as a span covering the episode's active interval
(down..up, crash..restart, squeeze/burst begin..end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.faults.plan import (
    BandwidthSqueeze,
    FaultEpisode,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
    NodeCrash,
    NodeRestart,
)
from repro.netsim import faults as mech
from repro.netsim.topology import Network
from repro.sim.scheduler import Simulator, TimerHandle


@dataclass
class EpisodeRecord:
    """One applied episode, for tests and benchmark reporting."""

    at: float
    kind: str
    target: str


class FaultInjector:
    """Applies a fault plan to a network through the simulator."""

    def __init__(self, sim: Simulator, network: Network, plan: FaultPlan):
        self.sim = sim
        self.network = network
        self.plan = plan
        self.applied: List[EpisodeRecord] = []
        self._handles: List[TimerHandle] = []
        self._armed = False
        # Per-target episode composition: overlapping episodes on one
        # link/node refcount, multiply, or stack instead of each end
        # blindly restoring pre-episode state (which would clobber a
        # still-active later episode on the same target).
        self.ledger = mech.FaultLedger(network)
        # Open trace spans for in-progress episodes: a stack per
        # (label, target) so overlapping same-target spans both close.
        self._open_spans: Dict[Tuple[str, str], List[object]] = {}
        # Undo tokens for interval episodes, keyed by episode identity
        # (two episodes of one kind may share a target and even a start
        # time; identity never collides).
        self._undo_state: Dict[int, object] = {}

    def arm(self) -> "FaultInjector":
        """Schedule every episode; an empty plan schedules nothing."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for episode in self.plan:
            when = max(episode.at, self.sim.now)
            self._handles.append(
                self.sim.call_at(when, lambda e=episode: self._apply(e))
            )
            duration = getattr(episode, "duration", None)
            if duration is not None:
                self._handles.append(
                    self.sim.call_at(
                        when + duration, lambda e=episode: self._end(e)
                    )
                )
        return self

    def cancel(self) -> None:
        """Retract every not-yet-fired episode."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    # -- episode application -------------------------------------------

    def _apply(self, episode: FaultEpisode) -> None:
        """Fire an episode's begin action."""
        target = self._target_of(episode)
        if isinstance(episode, LinkDown):
            self.ledger.link_down(episode.src, episode.dst)
            self._open_span("outage", target)
        elif isinstance(episode, LinkUp):
            self.ledger.link_up(episode.src, episode.dst)
            self._close_span("outage", target)
        elif isinstance(episode, BandwidthSqueeze):
            token = self.ledger.begin_squeeze(
                episode.src, episode.dst, episode.factor
            )
            self._undo_state[id(episode)] = token
            self._open_span("squeeze", target, factor=episode.factor)
        elif isinstance(episode, LossBurst):
            token = self.ledger.begin_loss_burst(
                episode.src, episode.dst, episode.loss
            )
            self._undo_state[id(episode)] = token
            self._open_span("loss-burst", target)
        elif isinstance(episode, NodeCrash):
            self.ledger.crash(episode.node)
            self._open_span("crash", target)
        elif isinstance(episode, NodeRestart):
            self.ledger.restart(episode.node)
            self._close_span("crash", target)
        else:  # pragma: no cover - plan validation prevents this
            raise TypeError(f"unknown episode {episode!r}")
        self._record(episode, target)

    def _end(self, episode: FaultEpisode) -> None:
        """Fire a timed episode's end action (retire its ledger token)."""
        target = self._target_of(episode)
        token = self._undo_state.pop(id(episode), None)
        if token is not None:
            token.restore()
        label = "squeeze" if isinstance(episode, BandwidthSqueeze) else "loss-burst"
        self._close_span(label, target)

    # -- bookkeeping ----------------------------------------------------

    @staticmethod
    def _target_of(episode: FaultEpisode) -> str:
        """Printable target name for counters, spans and records."""
        if isinstance(episode, (NodeCrash, NodeRestart)):
            return episode.node
        return f"{episode.src}->{episode.dst}"

    def _record(self, episode: FaultEpisode, target: str) -> None:
        """Count and log one applied episode."""
        self.applied.append(EpisodeRecord(self.sim.now, episode.kind, target))
        self.sim.metrics.counter("faults.episodes").inc()
        self.sim.metrics.counter(f"faults.{episode.kind}").inc()

    def _open_span(self, label: str, target: str, **args) -> None:
        """Open the episode's trace span (no-op when tracing is off)."""
        trace = self.sim.trace
        if not trace.enabled:
            return
        self._open_spans.setdefault((label, target), []).append(
            trace.span(
                f"fault:{label}:{target}", track="faults", cat="fault",
                args={"target": target, **args},
            )
        )

    def _close_span(self, label: str, target: str) -> None:
        """Close the most recent matching open span, if any."""
        spans = self._open_spans.get((label, target))
        if spans:
            spans.pop().end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Human-readable summary for debugging."""
        return (
            f"FaultInjector({len(self.plan)} episodes, "
            f"{len(self.applied)} applied)"
        )
