"""Scripted fault injection and graceful-degradation drivers.

The *policy* half of the fault subsystem: declarative
:class:`~repro.faults.plan.FaultPlan` scripts of timed episodes, an
optional randomized :class:`~repro.faults.plan.ChaosPlan` generator,
and the :class:`~repro.faults.injector.FaultInjector` that applies them
deterministically through the simulator.  The *mechanisms* the injector
drives live in :mod:`repro.netsim.faults`.

Install a plan on any runtime with ``runtime.with_fault_plan(plan)``;
an empty plan schedules nothing and perturbs nothing.
"""

from repro.faults.injector import EpisodeRecord, FaultInjector
from repro.faults.plan import (
    BandwidthSqueeze,
    ChaosPlan,
    FaultEpisode,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
    NodeCrash,
    NodeRestart,
    episode_from_jsonable,
    episode_to_jsonable,
    link_outage,
    node_outage,
    plan_from_jsonable,
    plan_to_jsonable,
)
from repro.faults.shrink import ShrinkProbe, ShrinkResult, shrink_plan

__all__ = [
    "BandwidthSqueeze",
    "ChaosPlan",
    "EpisodeRecord",
    "FaultEpisode",
    "FaultInjector",
    "FaultPlan",
    "LinkDown",
    "LinkUp",
    "LossBurst",
    "NodeCrash",
    "NodeRestart",
    "ShrinkProbe",
    "ShrinkResult",
    "episode_from_jsonable",
    "episode_to_jsonable",
    "link_outage",
    "node_outage",
    "plan_from_jsonable",
    "plan_to_jsonable",
    "shrink_plan",
]
