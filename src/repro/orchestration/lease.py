"""Worker leases: at-most-one worker per stream, by construction.

The live-broadcast orchestration specs require that each stream's
worker is unique at every instant ("at-most-one worker lease per
stream").  :class:`LeaseTable` enforces that invariant structurally:
``acquire`` raises :class:`LeaseError` while another lease on the same
stream is active, so a double-grant is impossible rather than merely
unlikely.  The full grant/release history is retained so chaos tests
can *prove* the invariant held over a whole run via
:meth:`LeaseTable.max_concurrent`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class LeaseError(Exception):
    """Raised when a lease cannot be granted (stream already leased)."""


@dataclass
class Lease:
    """One grant of a stream to a worker for one stream-session."""

    stream_id: str
    holder: str
    run_id: str
    lease_id: int
    granted_at: float
    released_at: Optional[float] = None
    release_reason: Optional[str] = None

    @property
    def active(self) -> bool:
        """True while the lease has not been released."""
        return self.released_at is None


class LeaseTable:
    """Grant/release registry enforcing one active lease per stream.

    All grants and releases are timestamped with sim time so the
    at-most-one invariant is checkable after the fact, not just
    enforced at grant time.
    """

    def __init__(self, sim=None, metrics_prefix: str = "controlplane.lease"):
        self.sim = sim
        self._prefix = metrics_prefix
        self._active: Dict[str, Lease] = {}
        self._history: List[Lease] = []
        self._next_id = 1

    # -- metrics ---------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.sim is not None:
            self.sim.metrics.counter(f"{self._prefix}.{name}").inc()

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # -- grant / release -------------------------------------------------

    def acquire(self, stream_id: str, holder: str, run_id: str) -> Lease:
        """Grant the stream to ``holder`` for ``run_id``.

        Raises :class:`LeaseError` (and counts a denial) if another
        holder currently leases the stream.
        """
        current = self._active.get(stream_id)
        if current is not None:
            self._count("denied")
            raise LeaseError(
                f"stream {stream_id!r} already leased to {current.holder!r} "
                f"(run {current.run_id!r})"
            )
        lease = Lease(
            stream_id=stream_id,
            holder=holder,
            run_id=run_id,
            lease_id=self._next_id,
            granted_at=self._now(),
        )
        self._next_id += 1
        self._active[stream_id] = lease
        self._history.append(lease)
        self._count("granted")
        return lease

    def release(self, lease: Lease, reason: str = "released") -> None:
        """Release a lease; idempotent on an already-released lease."""
        if not lease.active:
            return
        lease.released_at = self._now()
        lease.release_reason = reason
        if self._active.get(lease.stream_id) is lease:
            del self._active[lease.stream_id]
        self._count("released")

    # -- queries ---------------------------------------------------------

    def holder(self, stream_id: str) -> Optional[Lease]:
        """The active lease on a stream, or None."""
        return self._active.get(stream_id)

    def active_leases(self) -> List[Lease]:
        """All currently active leases, sorted by stream id."""
        return [self._active[k] for k in sorted(self._active)]

    @property
    def history(self) -> List[Lease]:
        """Every lease ever granted, in grant order."""
        return list(self._history)

    def max_concurrent(self, stream_id: str) -> int:
        """Maximum number of simultaneously active leases on a stream.

        Computed from the grant/release history by sweeping the
        interval endpoints; the table's invariant makes this <= 1, and
        chaos tests assert exactly that.
        """
        points = []
        for lease in self._history:
            if lease.stream_id != stream_id:
                continue
            points.append((lease.granted_at, 1))
            end = lease.released_at
            if end is not None:
                points.append((end, -1))
        # Releases at an instant land before grants at the same instant:
        # a handover at time t is sequential, not concurrent.
        points.sort(key=lambda p: (p[0], p[1]))
        peak = count = 0
        for _, delta in points:
            count += delta
            peak = max(peak, count)
        return peak

    def violations(self) -> List[str]:
        """Streams whose history ever held >1 concurrent lease."""
        streams = sorted({lease.stream_id for lease in self._history})
        return [s for s in streams if self.max_concurrent(s) > 1]

    def snapshot(self) -> dict:
        """JSON-friendly dump of active leases and aggregate counts."""
        return {
            "active": [
                {
                    "stream_id": lease.stream_id,
                    "holder": lease.holder,
                    "run_id": lease.run_id,
                    "lease_id": lease.lease_id,
                    "granted_at": lease.granted_at,
                }
                for lease in self.active_leases()
            ],
            "granted_total": len(self._history),
            "violations": self.violations(),
        }
