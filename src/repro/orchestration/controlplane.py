"""A desired-state control plane over the High Level Orchestrator.

The paper's orchestration service (Tables 4-6) is a set of primitives:
T-Connect establishes a CM connection, Orch.Prime/Start/Stop drive a
group.  This module is the thing that *operates* them, in the mold of
production stream routers: a reconciler that consumes ``ready`` /
``unready`` hook events (at-least-once, out-of-order, duplicated --
see :mod:`repro.orchestration.events`) and continuously converges each
stream's **actual** state to its **desired** state.

Per stream, the reconcile loop:

1. acquires the stream's worker lease (at-most-one by construction,
   :mod:`repro.orchestration.lease`);
2. admits the session against :mod:`repro.netsim.reservation`'s link
   capacity accounting;
3. establishes the VC through the :class:`~repro.ansa.stream.StreamFactory`
   (T-Connect), builds the worker (media source + playout sink), and
   drives the Orch group lifecycle (orchestrate -> prime -> start);
4. on ``unready`` (or a superseding run id) tears the session down in
   reverse order and releases the lease;
5. on any failure, releases whatever was acquired, backs off with
   bounded exponential delay, and retries while the stream is still
   desired -- failures never leave the stream's own loop, so one sick
   stream cannot stall its neighbours.

Because desired state is the max-seq reduction of the event stream,
duplicate or reordered events never reach the lifecycle machinery at
all: the reconciler is kicked only by *applied* events, which is what
makes the no-flapping guarantee structural rather than statistical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.scheduler import Simulator, Timeout
from repro.orchestration.events import (
    APPLIED,
    DesiredTable,
    FlakyHookChannel,
    HookDeliveryConfig,
    HookEvent,
    StreamHookSource,
)
from repro.orchestration.lease import Lease, LeaseTable
from repro.orchestration.policy import OrchestrationPolicy


class ControlPlaneError(Exception):
    """Raised when a lifecycle step is refused by a lower layer."""


@dataclass(frozen=True)
class ControlPlanePolicy:
    """Reconciler tuning knobs.

    Attributes:
        backoff_base: first retry delay after a failed reconcile step.
        backoff_factor: multiplier per consecutive failure.
        backoff_cap: upper bound on the retry delay.
        reservation_buffer_bytes: per-hop buffer asked of the admission
            gate alongside the stream's throughput.
        regulate: start HLO regulation when a session starts.
    """

    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_cap: float = 4.0
    reservation_buffer_bytes: int = 0
    regulate: bool = True

    def backoff(self, failures: int) -> float:
        """Delay before retry number ``failures`` (1-based)."""
        if failures <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (failures - 1)
        return min(delay, self.backoff_cap)


@dataclass
class StreamTemplate:
    """Everything needed to start a session for one registered stream.

    ``worker_factory`` (optional) is called as ``factory(controlplane,
    stream, template)`` after the VC exists and must return the
    application-thread object(s) answering the Orch handshake; when
    omitted the control plane builds the default stored-source +
    gated-playout-sink pair.
    """

    stream_id: str
    source: object               # TransportAddress
    sink: object                 # TransportAddress
    media_qos: object            # MediaQoS
    worker_factory: Optional[Callable] = None
    orch_policy: Optional[OrchestrationPolicy] = None


@dataclass
class _StreamState:
    """Mutable per-stream reconcile state (actual side)."""

    template: StreamTemplate
    loop_running: bool = False
    failures: int = 0
    last_error: Optional[str] = None
    # Active session pieces (all None when stopped).
    lease: Optional[Lease] = None
    stream: Optional[object] = None
    worker: Optional[object] = None
    session: Optional[object] = None
    run_id: Optional[str] = None
    outages: int = 0
    recoveries: int = 0
    starts: int = 0
    stops: int = 0


@dataclass
class DefaultWorker:
    """The default per-stream worker: stored source + gated sink."""

    name: str
    source: object
    sink: object


class PublisherHandle:
    """The publish side of one stream's hook contract.

    Returned by :meth:`ControlPlane.publisher`; ``ready()`` /
    ``unready()`` mint correctly-sequenced events and push them through
    the (possibly flaky) delivery channel.
    """

    def __init__(self, controlplane: "ControlPlane", source: StreamHookSource):
        self._cp = controlplane
        self._source = source

    @property
    def stream_id(self) -> str:
        return self._source.stream_id

    def ready(self) -> HookEvent:
        """Publish: the stream's media became available."""
        event = self._source.ready()
        self._cp.channel.publish(event)
        return event

    def unready(self) -> HookEvent:
        """Publish: the stream's media stopped."""
        event = self._source.unready()
        self._cp.channel.publish(event)
        return event

    @property
    def runs(self) -> int:
        """Stream sessions opened so far."""
        return self._source.runs


class ControlPlane:
    """Event-driven desired-state reconciler over the HLO.

    One instance supervises any number of registered streams; each
    stream reconciles in its own coroutine so failure and backoff are
    isolated per stream.
    """

    def __init__(
        self,
        sim: Simulator,
        hlo,
        factory,
        reservations,
        clock_of: Callable[[str], object],
        policy: Optional[ControlPlanePolicy] = None,
        delivery: Optional[HookDeliveryConfig] = None,
        rng=None,
    ):
        self.sim = sim
        self.hlo = hlo
        self.factory = factory
        self.reservations = reservations
        self.clock_of = clock_of
        self.policy = policy or ControlPlanePolicy()
        self.desired = DesiredTable()
        self.leases = LeaseTable(sim)
        self.channel = FlakyHookChannel(
            sim, self.handle_event, rng=rng, config=delivery
        )
        self._streams: Dict[str, _StreamState] = {}
        self._publishers: Dict[str, PublisherHandle] = {}

    # -- metrics helpers -------------------------------------------------

    def _count(self, name: str) -> None:
        self.sim.metrics.counter(f"controlplane.{name}").inc()

    def _set_gauges(self) -> None:
        running = sum(
            1 for s in self._streams.values() if s.session is not None
        )
        self.sim.metrics.gauge("controlplane.streams.registered").set(
            len(self._streams)
        )
        self.sim.metrics.gauge("controlplane.streams.running").set(running)

    # -- registration / publishing ---------------------------------------

    def register(self, template: StreamTemplate) -> PublisherHandle:
        """Register a stream template and return its publisher handle.

        Registering an id twice replaces the template (the handle and
        its event sequencing survive, so desired state is preserved).
        """
        state = self._streams.get(template.stream_id)
        if state is None:
            self._streams[template.stream_id] = _StreamState(template)
        else:
            state.template = template
        if template.stream_id not in self._publishers:
            self._publishers[template.stream_id] = PublisherHandle(
                self, StreamHookSource(template.stream_id)
            )
        self._set_gauges()
        self._kick(template.stream_id)
        return self._publishers[template.stream_id]

    def publisher(self, stream_id: str) -> PublisherHandle:
        """The publisher handle for a registered stream."""
        return self._publishers[stream_id]

    # -- event intake ----------------------------------------------------

    def handle_event(self, event: HookEvent) -> None:
        """Consume one delivered hook event (the channel's sink).

        Safe to call directly for externally-sourced events; duplicate
        and stale deliveries are counted and dropped here, before any
        lifecycle machinery can see them.
        """
        outcome = self.desired.observe(event)
        self._count(f"events.{outcome}")
        if outcome != APPLIED:
            return
        if event.stream_id not in self._streams:
            self._count("events.unregistered")
            return
        self._kick(event.stream_id)

    def _kick(self, stream_id: str) -> None:
        state = self._streams.get(stream_id)
        if state is None or state.loop_running:
            return
        if self.desired.desired(stream_id) is None:
            return
        state.loop_running = True
        self.sim.spawn(
            self._reconcile_loop(stream_id), name=f"cp-reconcile:{stream_id}"
        )

    # -- the reconcile loop ----------------------------------------------

    def _converged(self, state: _StreamState) -> bool:
        desired = self.desired.desired(state.template.stream_id)
        if desired is None:
            return state.session is None
        if desired.running:
            return state.session is not None and state.run_id == desired.run_id
        return state.session is None

    def _reconcile_loop(self, stream_id: str):
        state = self._streams[stream_id]
        try:
            while not self._converged(state):
                desired = self.desired.desired(stream_id)
                self._count("reconcile.steps")
                try:
                    if state.session is not None:
                        # Actual is running but shouldn't be (or is the
                        # wrong run): stop first, then re-evaluate.
                        reason = (
                            "superseded"
                            if desired is not None and desired.running
                            else "unready"
                        )
                        yield from self._stop_session(state, reason)
                    elif desired is not None and desired.running:
                        yield from self._start_session(state, desired.run_id)
                    state.failures = 0
                    state.last_error = None
                except Exception as exc:  # per-stream isolation boundary
                    state.failures += 1
                    state.last_error = f"{type(exc).__name__}: {exc}"
                    self._count("reconcile.failures")
                    delay = self.policy.backoff(state.failures)
                    if delay > 0:
                        self._count("reconcile.backoffs")
                        yield Timeout(self.sim, delay)
        finally:
            state.loop_running = False
        self._count("reconcile.converged")

    # -- lifecycle: start ------------------------------------------------

    def _start_session(self, state: _StreamState, run_id: str):
        template = state.template
        qos = template.media_qos
        lease = self.leases.acquire(
            template.stream_id,
            holder=f"worker:{template.stream_id}",
            run_id=run_id,
        )
        gate = None
        stream = None
        session = None
        try:
            # Admission gate: hold a reservation for the stream's wire
            # throughput while T-Connect runs, so concurrent starts see
            # each other.  The transport commits its own reservation
            # during connect; the gate is released as soon as the VC is
            # up to avoid double-counting the stream's bandwidth.
            try:
                gate = self.reservations.reserve(
                    template.source.node,
                    template.sink.node,
                    qos.throughput_bps,
                    buffer_bytes=self.policy.reservation_buffer_bytes,
                )
            except Exception:
                self._count("admission.rejected")
                raise
            self._count("admission.admitted")
            stream = yield from self.factory.create(
                template.source, template.sink, qos
            )
            self.reservations.release(gate)
            gate = None
            if template.worker_factory is not None:
                worker = template.worker_factory(self, stream, template)
            else:
                worker = self._default_worker(stream, template)
            session = yield from self.hlo.orchestrate(
                [stream.spec()],
                template.orch_policy,
                session_id=f"cp:{template.stream_id}:{run_id}",
            )
            self._wire_outage_hooks(state, session)
            reply = yield from session.prime()
            if not reply.accept:
                raise ControlPlaneError(f"prime refused: {reply.reason}")
            reply = yield from session.start(regulate=self.policy.regulate)
            if not reply.accept:
                raise ControlPlaneError(f"start refused: {reply.reason}")
        except Exception:
            # Unwind partial acquisition in reverse order; the lease is
            # always released so a retry can re-acquire it.
            if gate is not None:
                self.reservations.release(gate)
            if session is not None:
                session.release("start-failed")
            if stream is not None:
                stream.close()
            self.leases.release(lease, "start-failed")
            raise
        state.lease = lease
        state.stream = stream
        state.worker = worker
        state.session = session
        state.run_id = run_id
        state.starts += 1
        self._count("sessions.started")
        self._set_gauges()

    def _default_worker(self, stream, template: StreamTemplate) -> DefaultWorker:
        from repro.media.encodings import CBREncoding
        from repro.media.sink import PlayoutSink
        from repro.media.source import StoredMediaSource

        qos = template.media_qos
        encoding = CBREncoding(
            f"cp-{template.stream_id}", qos.osdu_rate, qos.osdu_bytes
        )
        source = StoredMediaSource(self.sim, stream.send_endpoint, encoding)
        sink = PlayoutSink(
            self.sim,
            stream.recv_endpoint,
            qos.osdu_rate,
            self.clock_of(stream.sink_node),
            mode="gated",
        )
        return DefaultWorker(
            name=f"worker:{template.stream_id}", source=source, sink=sink
        )

    def _wire_outage_hooks(self, state: _StreamState, session) -> None:
        agent = session.agent
        previous_outage = agent.on_outage
        previous_recovery = getattr(agent, "on_recovery", None)

        def on_outage(vc_id: str) -> None:
            state.outages += 1
            self._count("outages.observed")
            if previous_outage is not None:
                previous_outage(vc_id)

        def on_recovery(vc_id: str) -> None:
            state.recoveries += 1
            self._count("outages.recovered")
            if previous_recovery is not None:
                previous_recovery(vc_id)

        agent.on_outage = on_outage
        agent.on_recovery = on_recovery

    # -- lifecycle: stop -------------------------------------------------

    def _stop_session(self, state: _StreamState, reason: str):
        session = state.session
        stream = state.stream
        lease = state.lease
        # Clear the actual state first so a failure below cannot leave
        # a half-recorded session that double-stops on retry.
        state.session = None
        state.stream = None
        state.worker = None
        state.run_id = None
        try:
            yield from session.stop()
        finally:
            session.release(reason)
            if stream is not None:
                stream.close()
            if lease is not None:
                self.leases.release(lease, reason)
            state.lease = None
        state.stops += 1
        self._count("sessions.stopped")
        if reason == "superseded":
            self._count("sessions.superseded")
        self._set_gauges()

    # -- query API -------------------------------------------------------

    def converged(self) -> bool:
        """True when every registered stream matches its desired state."""
        return all(self._converged(s) for s in self._streams.values())

    def path(self, stream_id: str) -> dict:
        """One stream's desired/actual view (MediaMTX-style path entry)."""
        state = self._streams[stream_id]
        desired = self.desired.desired(stream_id)
        lease = self.leases.holder(stream_id)
        return {
            "stream_id": stream_id,
            "desired": (
                {"running": desired.running, "run_id": desired.run_id,
                 "seq": desired.seq}
                if desired is not None else None
            ),
            "actual": {
                "running": state.session is not None,
                "run_id": state.run_id,
                "session_id": (
                    state.session.session_id if state.session else None
                ),
                "orchestrating_node": (
                    state.session.orchestrating_node if state.session else None
                ),
            },
            "lease": (
                {"holder": lease.holder, "lease_id": lease.lease_id,
                 "run_id": lease.run_id}
                if lease is not None else None
            ),
            "converged": self._converged(state),
            "failures": state.failures,
            "last_error": state.last_error,
            "starts": state.starts,
            "stops": state.stops,
            "outages": state.outages,
            "recoveries": state.recoveries,
        }

    def paths(self) -> List[dict]:
        """All registered streams' desired/actual views, sorted by id."""
        return [self.path(stream_id) for stream_id in sorted(self._streams)]

    def sessions(self) -> List[dict]:
        """The currently running sessions only."""
        return [p for p in self.paths() if p["actual"]["running"]]

    def snapshot(self) -> dict:
        """JSON-friendly control-plane state for the audit pipeline."""
        return {
            "converged": self.converged(),
            "paths": self.paths(),
            "leases": self.leases.snapshot(),
            "events": {
                "published": self.channel.published,
                "delivered": self.channel.deliveries,
            },
        }

    def prometheus_text(self) -> str:
        """Prometheus exposition of the simulator's metrics registry."""
        from repro.obs.export import prometheus_text

        return prometheus_text(self.sim.metrics)
