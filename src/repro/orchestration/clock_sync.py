"""Clock synchronisation for orchestration.

The paper's initial implementation restricts orchestrated groups to a
*common node* "either at the source or the sink.  With this restriction
in force, we are able to use the clock at the common node as the datum
for continuous synchronisation across connections, and use a simple
clock synchronisation scheme" (section 5, footnote).  The footnote
continues that the restriction could be lifted "by including a general
purpose clock synchronisation function (e.g. NTP [Mills,89]) within the
orchestrator protocols".

This module implements that future-work extension:
:class:`NTPLikeSynchronizer` runs the classic two-way timestamp
exchange over the simulated network and slews a slave node's clock
toward a master's, enabling orchestration of VC groups with **no**
common node (benchmark E5 exercises both regimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.netsim.packet import Packet, Priority
from repro.netsim.topology import Network
from repro.sim.scheduler import Process, Simulator, Timeout

#: Wire size of one synchronisation probe/reply, bytes.
SYNC_WIRE_BYTES = 48


@dataclass
class SyncProbe:
    """Slave -> master: carries the slave's transmit timestamp."""

    handler_key = "clocksync"

    probe_id: int = 0
    slave: str = ""
    t0_slave: float = 0.0
    reply: bool = False
    t1_master: float = 0.0
    t2_master: float = 0.0


class NTPLikeSynchronizer:
    """Periodic offset estimation and slewing between two hosts.

    The slave sends a probe stamped ``t0`` (slave clock); the master
    stamps receipt ``t1`` and transmit ``t2`` (master clock); the slave
    stamps arrival ``t3``.  The standard estimate

        ``offset = ((t1 - t0) + (t2 - t3)) / 2``

    is then applied to the slave's clock, scaled by ``gain`` for gentle
    slewing.  With symmetric paths the residual error is bounded by the
    path asymmetry plus half the round-trip jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        master: str,
        slave: str,
        period: float = 1.0,
        gain: float = 1.0,
    ):
        if period <= 0:
            raise ValueError("sync period must be positive")
        if not 0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.sim = sim
        self.network = network
        self.master = master
        self.slave = slave
        self.period = period
        self.gain = gain
        self.master_host = network.host(master)
        self.slave_host = network.host(slave)
        self._probe_ids = iter(range(1, 1 << 30))
        self._pending: dict[int, float] = {}
        self.offset_estimates: List[Tuple[float, float]] = []
        self._proc: Optional[Process] = None
        self._install_handlers()

    def _install_handlers(self) -> None:
        # Multiple synchronizers may share a master; register once.
        try:
            self.master_host.register_handler("clocksync", self._on_master_packet)
        except ValueError:
            pass
        try:
            self.slave_host.register_handler("clocksync", self._on_slave_packet)
        except ValueError:
            pass

    def start(self) -> None:
        if self._proc is None or not self._proc.alive:
            self._proc = self.sim.spawn(
                self._probe_loop(), name=f"clocksync:{self.slave}->{self.master}"
            )

    def stop(self) -> None:
        if self._proc is not None and self._proc.alive:
            self._proc.interrupt("stop")
        self._proc = None

    def _probe_loop(self):
        while True:
            probe_id = next(self._probe_ids)
            t0 = self.slave_host.clock.now()
            self._pending[probe_id] = t0
            self.network.send(
                Packet(
                    src=self.slave,
                    dst=self.master,
                    payload=SyncProbe(probe_id=probe_id, slave=self.slave,
                                      t0_slave=t0),
                    size_bits=SYNC_WIRE_BYTES * 8,
                    priority=Priority.CONTROL,
                )
            )
            yield Timeout(self.sim, self.period)

    def _on_master_packet(self, packet: Packet) -> None:
        probe = packet.payload
        if probe.reply:
            return
        t = self.master_host.clock.now()
        self.network.send(
            Packet(
                src=self.master,
                dst=probe.slave,
                payload=SyncProbe(
                    probe_id=probe.probe_id,
                    slave=probe.slave,
                    t0_slave=probe.t0_slave,
                    reply=True,
                    t1_master=t,
                    t2_master=self.master_host.clock.now(),
                ),
                size_bits=SYNC_WIRE_BYTES * 8,
                priority=Priority.CONTROL,
            )
        )

    def _on_slave_packet(self, packet: Packet) -> None:
        probe = packet.payload
        if not probe.reply:
            return
        t0 = self._pending.pop(probe.probe_id, None)
        if t0 is None:
            return
        t3 = self.slave_host.clock.now()
        offset = ((probe.t1_master - t0) + (probe.t2_master - t3)) / 2.0
        self.offset_estimates.append((self.sim.now, offset))
        self.slave_host.clock.adjust(self.gain * offset)

    def current_error(self) -> float:
        """True instantaneous offset slave - master (oracle view)."""
        return self.slave_host.clock.offset_from(self.master_host.clock)
