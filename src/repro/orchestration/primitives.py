"""Orchestration service primitives (paper Tables 4, 5 and 6).

Two groups, as section 6 describes:

- Group 1 operates over a *grouping* of transport connections:
  Orch.Prime / Orch.Start / Orch.Stop / Orch.Add / Orch.Remove (plus
  session request/release, Table 4, and Orch.Deny).
- Group 2 operates on single connections in a grouping:
  Orch.Regulate / Orch.Delayed / Orch.Event (Table 6).

Application threads see the *indication* forms, delivered into their
VC endpoint's orchestration queue paired with a reply event; the HLO
agent sees confirms, denies and the regulate/event indications through
its session queue on the local LLO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class OrchPrimitive:
    """Base class for orchestration primitives."""

    orch_session_id: str


@dataclass(frozen=True)
class OrchReply:
    """Application response to an orchestration indication.

    ``accept=False`` is the Orch.Deny.request of Table 5 ("if any
    application thread is not in a position to do this it can reply
    with a Orch.Deny").
    """

    accept: bool = True
    reason: str = ""


# -- indications delivered to source/sink application threads ---------------


@dataclass(frozen=True)
class PrimeIndication(OrchPrimitive):
    """Orch.Prime.indication: start generating / prepare to accept data."""

    vc_id: str = ""
    role: str = ""  # "source" or "sink"


@dataclass(frozen=True)
class StartIndication(OrchPrimitive):
    """Orch.Start.indication: data flow is being (re-)started."""

    vc_id: str = ""
    role: str = ""


@dataclass(frozen=True)
class StopIndication(OrchPrimitive):
    """Orch.Stop.indication: data flow is being frozen."""

    vc_id: str = ""
    role: str = ""


@dataclass(frozen=True)
class AddIndication(OrchPrimitive):
    """Orch.Add.indication: this VC is joining an orchestrated group."""

    vc_id: str = ""
    role: str = ""


@dataclass(frozen=True)
class RemoveIndication(OrchPrimitive):
    """Orch.Remove.indication: this VC is leaving its orchestrated group.

    "When VCs are removed from an orchestrated group they are not
    disconnected and thus data may still be flowing" (section 6.2.4).
    """

    vc_id: str = ""
    role: str = ""


@dataclass(frozen=True)
class DelayedIndication(OrchPrimitive):
    """Orch.Delayed.indication (Table 6).

    "The thread is not running sufficiently fast to produce/consume
    data at a rate required by the client of the location independent
    orchestration service" (section 6.3.3).
    """

    vc_id: str = ""
    source_or_sink: str = ""
    interval_length: float = 0.0
    osdus_behind: int = 0


# -- indications delivered to the HLO agent ----------------------------------


@dataclass(frozen=True)
class OrchRegulateIndication(OrchPrimitive):
    """Orch.Regulate.indication (Table 6): per-interval report.

    Matches the table's parameter list: vc-id, interval-id, OSDU#,
    dropped#, proto-block-times, app-block-times.  The block-time maps
    are keyed ``"source"`` / ``"sink"``.
    """

    vc_id: str = ""
    interval_id: int = 0
    osdu_seq: int = -1
    dropped: int = 0
    proto_block_times: Dict[str, float] = field(default_factory=dict)
    app_block_times: Dict[str, float] = field(default_factory=dict)
    #: Extra instrumentation (not in the paper's table): OSDUs sitting
    #: undelivered in the sink buffer at interval end.
    sink_buffered: int = 0


@dataclass(frozen=True)
class OrchEventIndication(OrchPrimitive):
    """Orch.Event.indication (Table 6): a registered pattern matched."""

    vc_id: str = ""
    event_pattern: int = 0
    osdu_seq: int = -1
    matched_at: float = 0.0


@dataclass(frozen=True)
class OrchDenyIndication(OrchPrimitive):
    """Orch.Deny.indication: a group operation was refused."""

    vc_id: Optional[str] = None
    reason: str = ""
