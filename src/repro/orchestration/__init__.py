"""The three-level orchestration service (paper sections 5 and 6).

Orchestration co-ordinates multiple related transport connections --
the canonical example being lip synchronisation of separately stored
and transmitted audio and video.  The architecture distributes
functionality over three layers, "each layer provides policy to its
lower neighbour and mechanism to its upper neighbour":

- :class:`HighLevelOrchestrator` (HLO) -- the platform-level ADT
  service: applications hand it Streams and a policy; it selects the
  *orchestrating node* (the node common to the greatest number of VCs)
  and instantiates an agent there.
- :class:`HLOAgent` -- one per orchestrated group, running on the
  orchestrating node: a continuous feedback loop that sets per-interval
  flow-rate targets against the master reference clock, analyses the
  reports (including blocking-time fault attribution) and takes
  compensatory action.
- :class:`LLOInstance` -- one per node: the mechanism layer.  Executes
  the Orch primitives of Tables 4-6 (prime/start/stop/add/remove,
  regulate, delayed, event) against the local transport entity on a
  best-effort basis.

On top of the three paper layers sits the desired-state control plane
(:mod:`repro.orchestration.controlplane`): a reconciler that consumes
at-least-once ``ready``/``unready`` hook events
(:mod:`repro.orchestration.events`), enforces at-most-one worker lease
per stream (:mod:`repro.orchestration.lease`), and drives the
T-Connect -> Orch lifecycles to keep actual state converged with
desired state.
"""

from repro.orchestration.primitives import (
    OrchDenyIndication,
    OrchEventIndication,
    OrchPrimitive,
    OrchRegulateIndication,
    OrchReply,
    PrimeIndication,
    StartIndication,
    StopIndication,
    DelayedIndication,
)
from repro.orchestration.llo import LLOInstance, auto_orch_responder, build_llos
from repro.orchestration.hlo_agent import (
    HLOAgent,
    IntervalReport,
    RegulationConfig,
    StreamSpec,
)
from repro.orchestration.hlo import (
    HighLevelOrchestrator,
    OrchestrationError,
    OrchestrationSession,
    select_orchestrating_node,
)
from repro.orchestration.policy import CompensationAction, OrchestrationPolicy
from repro.orchestration.clock_sync import NTPLikeSynchronizer
from repro.orchestration.events import (
    DesiredTable,
    FlakyHookChannel,
    HookDeliveryConfig,
    HookEvent,
    StreamHookSource,
)
from repro.orchestration.lease import Lease, LeaseError, LeaseTable
from repro.orchestration.controlplane import (
    ControlPlane,
    ControlPlaneError,
    ControlPlanePolicy,
    PublisherHandle,
    StreamTemplate,
)

__all__ = [
    "CompensationAction",
    "ControlPlane",
    "ControlPlaneError",
    "ControlPlanePolicy",
    "DelayedIndication",
    "DesiredTable",
    "FlakyHookChannel",
    "HLOAgent",
    "HighLevelOrchestrator",
    "HookDeliveryConfig",
    "HookEvent",
    "IntervalReport",
    "LLOInstance",
    "Lease",
    "LeaseError",
    "LeaseTable",
    "NTPLikeSynchronizer",
    "OrchDenyIndication",
    "OrchEventIndication",
    "OrchPrimitive",
    "OrchRegulateIndication",
    "OrchReply",
    "OrchestrationError",
    "OrchestrationPolicy",
    "OrchestrationSession",
    "PrimeIndication",
    "PublisherHandle",
    "RegulationConfig",
    "StartIndication",
    "StopIndication",
    "StreamHookSource",
    "StreamSpec",
    "StreamTemplate",
    "auto_orch_responder",
    "build_llos",
    "select_orchestrating_node",
]
