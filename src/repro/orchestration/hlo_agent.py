"""The HLO agent: the feedback-control layer of orchestration.

"For each orchestrated group of connections, a single HLO agent runs
on the orchestrating node ... The HLO agent supplies the LLO with rate
targets for each orchestrated VC over specified intervals.  These
targets ensure that each orchestrated VC runs at the required rate,
relative to the master reference clock maintained at the orchestration
node ... on the basis of these reports, the HLO agent sets new targets
for the next interval which compensate for any relative speed up or
slow down among the orchestrated connections" (paper section 5,
Figure 6).

Design notes:

- Targets are *absolute*: for master media time ``M`` the target OSDU
  sequence is ``floor(M * rate) - 1``.  Anchoring every interval's
  target to the master timeline makes lag compensation automatic --- a
  stream that fell behind receives a proportionally larger quota next
  interval (and catches up if data is available, or spends drop budget).
- The agent issues Orch.Regulate on a strict master-clock timer and
  consumes the matching indications asynchronously, so report latency
  does not stall delivery pacing.
- Escalation follows section 6.3.1.2's blocking-time attribution: a
  blocked *protocol* thread means the application is too slow
  (Orch.Delayed); blocked *application* threads mean protocol
  throughput is too low (QoS renegotiation, via the ``on_renegotiate``
  hook the HLO installs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.scheduler import Process, Simulator, Timer
from repro.orchestration.llo import LLOInstance
from repro.orchestration.policy import CompensationAction, OrchestrationPolicy
from repro.orchestration.primitives import (
    OrchEventIndication,
    OrchRegulateIndication,
)


@dataclass
class StreamSpec:
    """One orchestrated VC as the agent sees it.

    Attributes:
        vc_id: the transport connection.
        source_node / sink_node: end-system names.
        osdu_rate: nominal OSDUs per second of media time (e.g. 25 for
            PAL video frames, 250 for 10:1 audio blocks -- the paper's
            "ten sound samples with each video frame" ratio).
        max_drop_per_interval: Table 6's max-drop#; 0 for no-loss media
            such as voice.
    """

    vc_id: str
    source_node: str
    sink_node: str
    osdu_rate: float
    max_drop_per_interval: int = 0

    def __post_init__(self) -> None:
        if self.osdu_rate <= 0:
            raise ValueError("osdu_rate must be positive")
        if self.max_drop_per_interval < 0:
            raise ValueError("max_drop_per_interval must be non-negative")


@dataclass
class RegulationConfig:
    """Derived, per-run regulation state exposed for inspection."""

    started_at_master: float = 0.0
    timeline_offset: float = 0.0
    intervals_issued: int = 0


@dataclass
class StreamIntervalStats:
    """Per-stream digest of one Orch.Regulate.indication."""

    vc_id: str
    target_seq: int
    delivered_seq: int
    behind_osdus: int
    dropped_delta: int
    src_app_block: float
    src_proto_block: float
    sink_app_block: float
    sink_proto_block: float
    sink_buffered: int
    #: OSDUs newly delivered since the previous interval's report
    #: (<= 0 means the stream made no progress at all).
    delivered_delta: int = 0

    @property
    def media_time(self) -> float:
        """Media seconds delivered, given the stream's rate (filled by
        the report)."""
        return self._media_time

    _media_time: float = 0.0


@dataclass
class IntervalReport:
    """One completed interval across all streams."""

    interval_id: int
    completed_at: float
    streams: Dict[str, StreamIntervalStats]
    skew: float
    actions: List[Tuple[str, CompensationAction]] = field(default_factory=list)


class HLOAgent:
    """Controls one orchestrated group from the orchestrating node."""

    def __init__(
        self,
        sim: Simulator,
        llo: LLOInstance,
        session_id: str,
        streams: List[StreamSpec],
        policy: Optional[OrchestrationPolicy] = None,
    ):
        if not streams:
            raise ValueError("an orchestrated group needs at least one stream")
        self.sim = sim
        self.llo = llo
        self.session_id = session_id
        self._track = sys.intern(f"session:{session_id}")
        self.streams: Dict[str, StreamSpec] = {s.vc_id: s for s in streams}
        if len(self.streams) != len(streams):
            raise ValueError("duplicate vc_id in stream list")
        self.policy = policy or OrchestrationPolicy()
        #: Master reference clock: the orchestrating node's local clock
        #: (paper section 5 footnote).
        self.clock = llo.clock
        self.queue = llo.agent_queue(session_id)
        self.config = RegulationConfig()
        self.reports: List[IntervalReport] = []
        self.skew_series: List[Tuple[float, float]] = []
        self.established = False
        self.running = False
        self._regulate_proc: Optional[Process] = None
        self._report_proc: Optional[Process] = None
        self._pending_reports: Dict[int, Dict[str, OrchRegulateIndication]] = {}
        self._analyzed_up_to = 0
        self._prev_cumulative: Dict[str, Tuple[float, float, float, float, int]] = {}
        self._behind_streak: Dict[str, int] = {}
        # Per-stream base sequence: targets are expressed relative to
        # the sequence already delivered when regulation (re)started,
        # so stop/seek/restart cycles and source-drop sequence gaps do
        # not break the absolute-target arithmetic.
        self._base_seq: Dict[str, int] = {}
        self._last_delivered: Dict[str, int] = {}
        #: Installed by the HLO: called as ``on_renegotiate(vc_id,
        #: behind_seconds)`` when attribution blames protocol throughput.
        self.on_renegotiate: Optional[Callable[[str, float], None]] = None
        #: Called as ``on_outage(vc_id)`` when a stream is declared in
        #: outage (policy.outage_intervals stalled intervals).
        self.on_outage: Optional[Callable[[str], None]] = None
        #: Called as ``on_recovery(vc_id)`` on the first interval with
        #: fresh deliveries after an outage (the control plane's cue
        #: that resynchronisation can settle).
        self.on_recovery: Optional[Callable[[str], None]] = None
        # Outage tracking (see OrchestrationPolicy.outage_intervals).
        self._stall_intervals: Dict[str, int] = {}
        self._outage_vcs: set = set()
        self.outage_events: List[Tuple[float, str]] = []
        self.recovery_events: List[Tuple[float, str]] = []
        self._reprime_proc: Optional[Process] = None
        #: Orch.Event callbacks: (vc_id, pattern) -> callable(indication).
        self._event_handlers: Dict[Tuple[str, int], Callable] = {}
        self.delayed_issued: List[Tuple[str, str]] = []
        self.renegotiations_requested: List[str] = []

    # ------------------------------------------------------------------
    # Session lifecycle (Table 4 / Table 5 wrappers)
    # ------------------------------------------------------------------

    def _group_span(self, op: str):
        """Open a trace span for one group command (None when disabled)."""
        trace = self.sim.trace
        if not trace.enabled:
            return None
        return trace.span(
            f"{op}:{self.session_id}",
            track=self._track,
            cat="orch",
            args={"vcs": sorted(self.streams)},
        )

    def establish(self):
        """Coroutine: Orch.request for the whole group."""
        span = self._group_span("establish")
        vcs = {
            s.vc_id: (s.source_node, s.sink_node) for s in self.streams.values()
        }
        reply = yield from self.llo.orch_request(self.session_id, vcs)
        self.established = reply.accept
        if span is not None:
            span.end(ok=reply.accept)
        return reply

    def release(self, reason: str = "released") -> None:
        self.stop_regulation()
        self.llo.release(self.session_id, reason)
        self.established = False

    def prime(self):
        """Coroutine: Orch.Prime the group (fill sink pipelines)."""
        span = self._group_span("prime")
        reply = yield from self.llo.prime(self.session_id)
        if span is not None:
            span.end(ok=reply.accept)
        return reply

    def start(self, regulate: bool = True):
        """Coroutine: Orch.Start the group; optionally begin regulation."""
        span = self._group_span("start")
        reply = yield from self.llo.start(self.session_id, metered=regulate)
        if span is not None:
            span.end(ok=reply.accept)
        if reply.accept and regulate:
            self.start_regulation()
        return reply

    def stop(self):
        """Coroutine: Orch.Stop the group (freeze data flow)."""
        self.stop_regulation()
        span = self._group_span("stop")
        reply = yield from self.llo.stop(self.session_id)
        if span is not None:
            span.end(ok=reply.accept)
        return reply

    def add_stream(self, spec: StreamSpec):
        """Coroutine: Orch.Add one VC to the running group.

        The stream joins regulation from the *current* group media
        position: its first targets demand catch-up to the timeline, so
        a late-added caption track aligns with the on-going play-out.
        """
        reply = yield from self.llo.add(
            self.session_id, spec.vc_id, spec.source_node, spec.sink_node
        )
        if reply.accept:
            local = self.llo.local_delivered_seq(spec.vc_id)
            self._base_seq[spec.vc_id] = (
                local if local is not None
                else self._last_delivered.get(spec.vc_id, -1)
            )
            self.streams[spec.vc_id] = spec
            self._behind_streak[spec.vc_id] = 0
        return reply

    def remove_stream(self, vc_id: str):
        """Coroutine: Orch.Remove one VC (it keeps flowing, unregulated)."""
        # Stop regulating it *before* the distributed removal so the
        # interval timer cannot target a VC mid-removal.
        spec = self.streams.pop(vc_id, None)
        reply = yield from self.llo.remove(self.session_id, vc_id)
        if reply.accept:
            # Leave the gate open for the now-free-running VC.
            recv_vc = self.llo.entity.recv_vcs.get(vc_id)
            if recv_vc is not None:
                recv_vc.open_gate()
        elif spec is not None:
            self.streams[vc_id] = spec
        return reply

    # ------------------------------------------------------------------
    # Regulation loop (Figure 6)
    # ------------------------------------------------------------------

    def start_regulation(self) -> None:
        if self.running:
            return
        self.running = True
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.register_group(
                self.session_id, bound=self.policy.strictness,
                streams=sorted(self.streams),
                interval_length=self.policy.interval_length,
            )
        self.config = RegulationConfig(started_at_master=self.clock.now())
        self._behind_streak = {vc: 0 for vc in self.streams}
        self._stall_intervals = {vc: 0 for vc in self.streams}
        self._prev_cumulative.clear()
        self._pending_reports.clear()
        self._analyzed_up_to = 0
        for vc_id in self.streams:
            local = self.llo.local_delivered_seq(vc_id)
            if local is not None:
                self._base_seq[vc_id] = local
            else:
                self._base_seq[vc_id] = self._last_delivered.get(vc_id, -1)
        self._regulate_proc = self.sim.spawn(
            self._regulation_loop(), name=f"hlo-regulate:{self.session_id}"
        )
        if self._report_proc is None or not self._report_proc.alive:
            self._report_proc = self.sim.spawn(
                self._report_loop(), name=f"hlo-reports:{self.session_id}"
            )

    def stop_regulation(self) -> None:
        self.running = False
        if self._regulate_proc is not None and self._regulate_proc.alive:
            self._regulate_proc.interrupt("stop")
            self._regulate_proc = None

    def _regulation_loop(self):
        interval_length = self.policy.interval_length
        pace = Timer(self.sim)
        while self.running:
            self.config.intervals_issued += 1
            interval_id = self.config.intervals_issued
            end_master = (
                self.config.started_at_master + interval_id * interval_length
            )
            media_end = (
                end_master
                - self.config.started_at_master
                - self.config.timeline_offset
            )
            for spec in self.streams.values():
                target = self._target_for(spec, media_end)
                self.llo.regulate_request(
                    self.session_id,
                    spec.vc_id,
                    target,
                    spec.max_drop_per_interval,
                    interval_length,
                    interval_id,
                )
            remaining = self.clock.sim_duration(end_master - self.clock.now())
            if remaining > 0:
                yield pace.after(remaining)

    def _target_for(self, spec: StreamSpec, media_time: float) -> int:
        """Target OSDU sequence for a stream at a master media time.

        Unit ``k`` is presented at media time ``k / rate``, so by time
        ``t`` every unit with ``k <= t * rate`` should have been
        delivered -- counted from the per-stream base sequence captured
        when regulation started.
        """
        base = self._base_seq.get(spec.vc_id, -1)
        return max(base + 1 + int(media_time * spec.osdu_rate), -1)

    # ------------------------------------------------------------------
    # Report consumption and analysis
    # ------------------------------------------------------------------

    def _report_loop(self):
        while True:
            indication = yield self.queue.get()
            if isinstance(indication, OrchEventIndication):
                handler = self._event_handlers.get(
                    (indication.vc_id, indication.event_pattern)
                )
                if handler is not None:
                    handler(indication)
                continue
            if not isinstance(indication, OrchRegulateIndication):
                continue
            if indication.vc_id not in self.streams:
                continue
            if indication.interval_id <= self._analyzed_up_to:
                # A straggler from an interval the agent has already
                # moved past -- typically a report that sat blocked on a
                # source-stats query across a network outage.  Its
                # delivered/target snapshot is ancient; analysing it now
                # would mis-rebase the timeline.
                self._pending_reports.pop(indication.interval_id, None)
                continue
            bucket = self._pending_reports.setdefault(indication.interval_id, {})
            bucket[indication.vc_id] = indication
            if len(bucket) == len(self.streams):
                del self._pending_reports[indication.interval_id]
                self._analyzed_up_to = max(
                    self._analyzed_up_to, indication.interval_id
                )
                self._analyze(indication.interval_id, bucket)

    def _analyze(
        self, interval_id: int, reports: Dict[str, OrchRegulateIndication]
    ) -> None:
        interval_length = self.policy.interval_length
        stats: Dict[str, StreamIntervalStats] = {}
        media_times: List[float] = []
        media_end = (
            interval_id * interval_length - self.config.timeline_offset
        )
        for vc_id, indication in reports.items():
            spec = self.streams[vc_id]
            target = self._target_for(spec, media_end)
            prev = self._prev_cumulative.get(
                vc_id, (0.0, 0.0, 0.0, 0.0, 0)
            )
            cumulative = (
                indication.app_block_times.get("source", 0.0),
                indication.proto_block_times.get("source", 0.0),
                indication.app_block_times.get("sink", 0.0),
                indication.proto_block_times.get("sink", 0.0),
                indication.dropped,
            )
            self._prev_cumulative[vc_id] = cumulative
            prev_delivered = self._last_delivered.get(vc_id, -1)
            self._last_delivered[vc_id] = max(prev_delivered, indication.osdu_seq)
            dropped_delta = max(cumulative[4] - prev[4], 0)
            excess = indication.osdu_seq - target - dropped_delta
            if excess > 0:
                # A jump past the target *beyond* what regulation drops
                # explain comes from administrative sequence gaps (the
                # prime-after-seek flush): rebase upward so pacing
                # resumes at the nominal rate instead of stalling until
                # the timeline catches up.  Drop-induced jumps must NOT
                # rebase -- they are the catch-up mechanism itself.
                self._base_seq[vc_id] = self._base_seq.get(vc_id, -1) + excess
            digest = StreamIntervalStats(
                vc_id=vc_id,
                target_seq=target,
                delivered_seq=indication.osdu_seq,
                behind_osdus=max(target - indication.osdu_seq, 0),
                dropped_delta=max(cumulative[4] - prev[4], 0),
                src_app_block=max(cumulative[0] - prev[0], 0.0),
                src_proto_block=max(cumulative[1] - prev[1], 0.0),
                sink_app_block=max(cumulative[2] - prev[2], 0.0),
                sink_proto_block=max(cumulative[3] - prev[3], 0.0),
                sink_buffered=indication.sink_buffered,
                delivered_delta=indication.osdu_seq - prev_delivered,
            )
            base = self._base_seq.get(vc_id, -1)
            digest._media_time = max(indication.osdu_seq - (base + 1), 0) / spec.osdu_rate
            stats[vc_id] = digest
            media_times.append(digest._media_time)
        skew = max(media_times) - min(media_times) if len(media_times) > 1 else 0.0
        report = IntervalReport(
            interval_id=interval_id,
            completed_at=self.sim.now,
            streams=stats,
            skew=skew,
        )
        self.skew_series.append((self.sim.now, skew))
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.record_skew(self.session_id, skew)
        self._apply_policy(report)
        self.reports.append(report)

    def _apply_policy(self, report: IntervalReport) -> None:
        interval_length = self.policy.interval_length
        threshold_block = self.policy.block_fraction_threshold * interval_length
        worst_behind_seconds = 0.0
        resync_seconds = 0.0
        for vc_id, digest in report.streams.items():
            spec = self.streams[vc_id]
            behind_seconds = digest.behind_osdus / spec.osdu_rate
            stalled = (
                digest.delivered_delta <= 0
                and digest.behind_osdus > self.policy.delayed_threshold_osdus
            )
            if stalled:
                streak = self._stall_intervals.get(vc_id, 0) + 1
                self._stall_intervals[vc_id] = streak
                if (
                    streak >= self.policy.outage_intervals
                    and vc_id not in self._outage_vcs
                ):
                    self._declare_outage(vc_id, digest)
                if vc_id in self._outage_vcs:
                    # An outaged stream is exempt from blocking-time
                    # escalation: while nothing arrives, neither side's
                    # blocking profile is attributable.  Nudge the
                    # source every interval so its send window re-opens
                    # the moment the path heals (fire-and-forget, so a
                    # nudge lost to the fault is retried next interval).
                    self.llo.nudge_request(self.session_id, vc_id)
                    self._behind_streak[vc_id] = 0
                    report.actions.append((vc_id, CompensationAction.OUTAGE))
                    continue
            else:
                self._stall_intervals[vc_id] = 0
                if vc_id in self._outage_vcs and digest.delivered_delta > 0:
                    self._record_recovery(vc_id, digest)
                    if self.policy.resync_after_outage:
                        resync_seconds = max(resync_seconds, behind_seconds)
                    self._behind_streak[vc_id] = 0
                    continue
            if digest.behind_osdus <= self.policy.delayed_threshold_osdus:
                self._behind_streak[vc_id] = 0
                continue
            self._behind_streak[vc_id] = self._behind_streak.get(vc_id, 0) + 1
            worst_behind_seconds = max(worst_behind_seconds, behind_seconds)
            if self._behind_streak[vc_id] < self.policy.patience_intervals:
                report.actions.append((vc_id, CompensationAction.RETARGET))
                continue
            action = self._attribute(digest, threshold_block)
            report.actions.append((vc_id, action))
            self._escalate(vc_id, action, behind_seconds, interval_length, digest)
            self._behind_streak[vc_id] = 0
        if resync_seconds > self.policy.strictness:
            # Shift the shared timeline past the outage gap: the
            # recovered stream resumes at the nominal rate and the
            # survivors re-align to it, instead of the timeline
            # demanding an unbounded catch-up burst.
            self.config.timeline_offset += resync_seconds
            report.actions.append(("*", CompensationAction.OUTAGE_RESYNC))
            if self.policy.reprime_after_outage and self.established:
                if self._reprime_proc is None or not self._reprime_proc.alive:
                    self._reprime_proc = self.sim.spawn(
                        self._reprime(),
                        name=f"hlo-reprime:{self.session_id}",
                    )
        if (
            self.policy.rebase_to_slowest
            and worst_behind_seconds > self.policy.strictness
        ):
            # Slow the group's shared timeline down to the laggard, so
            # streams stay synchronised at a reduced effective rate.
            self.config.timeline_offset += worst_behind_seconds
            report.actions.append(("*", CompensationAction.REBASE))

    def _declare_outage(self, vc_id: str, digest: StreamIntervalStats) -> None:
        """Mark a stream as in outage and notify the application.

        The ``on_outage`` hook is the Orch.Event-style escalation path:
        the HLO (or application) learns that continuous synchronisation
        on this VC has stopped entirely, as opposed to merely degraded.
        """
        self._outage_vcs.add(vc_id)
        self.outage_events.append((self.sim.now, vc_id))
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.record_group_outage(self.session_id, vc_id)
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "orch.outage",
                track=self._track,
                cat="fault",
                args={"vc": vc_id, "behind_osdus": digest.behind_osdus},
            )
        if self.on_outage is not None:
            self.on_outage(vc_id)

    def _record_recovery(self, vc_id: str, digest: StreamIntervalStats) -> None:
        """First interval with fresh deliveries after an outage."""
        self._outage_vcs.discard(vc_id)
        self.recovery_events.append((self.sim.now, vc_id))
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.record_group_recovery(self.session_id, vc_id)
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "orch.outage.end",
                track=self._track,
                cat="fault",
                args={"vc": vc_id, "behind_osdus": digest.behind_osdus},
            )
        if self.on_recovery is not None:
            self.on_recovery(vc_id)

    def _reprime(self):
        """Coroutine: stop / prime / start after an outage recovery.

        Refills the sink pipelines before regulation resumes
        (``policy.reprime_after_outage``); restarting regulation also
        re-captures base sequences and zeroes the timeline offset, so
        the group restarts cleanly from the recovered position.
        """
        yield from self.stop()
        yield from self.prime()
        yield from self.start()

    def _attribute(
        self, digest: StreamIntervalStats, threshold: float
    ) -> CompensationAction:
        """Blocking-time fault attribution (section 6.3.1.2)."""
        if digest.src_proto_block > threshold:
            # The source protocol starved: the source application is
            # not producing fast enough.
            return CompensationAction.DELAYED_SOURCE
        if digest.sink_proto_block > threshold:
            # The sink buffer sat full: the sink application is not
            # consuming fast enough.
            return CompensationAction.DELAYED_SINK
        if (
            digest.src_app_block > threshold
            or digest.sink_app_block > threshold
        ):
            # Applications blocked on the protocol: throughput too low.
            return CompensationAction.RENEGOTIATE
        return CompensationAction.RETARGET

    def _escalate(
        self,
        vc_id: str,
        action: CompensationAction,
        behind_seconds: float,
        interval_length: float,
        digest: StreamIntervalStats,
    ) -> None:
        if action is CompensationAction.DELAYED_SOURCE:
            self.delayed_issued.append((vc_id, "source"))
            self.sim.spawn(
                self.llo.delayed_request(
                    self.session_id, vc_id, "source", interval_length,
                    digest.behind_osdus,
                ),
                name=f"hlo-delayed:{vc_id}",
            )
        elif action is CompensationAction.DELAYED_SINK:
            self.delayed_issued.append((vc_id, "sink"))
            self.sim.spawn(
                self.llo.delayed_request(
                    self.session_id, vc_id, "sink", interval_length,
                    digest.behind_osdus,
                ),
                name=f"hlo-delayed:{vc_id}",
            )
        elif action is CompensationAction.RENEGOTIATE:
            if self.policy.escalate_renegotiate:
                self.renegotiations_requested.append(vc_id)
                if self.on_renegotiate is not None:
                    self.on_renegotiate(vc_id, behind_seconds)

    # ------------------------------------------------------------------
    # Event-driven synchronisation (section 6.3.4)
    # ------------------------------------------------------------------

    def register_event(
        self, vc_id: str, pattern: int, handler: Callable[[OrchEventIndication], None]
    ) -> None:
        """Orch.Event.request: call ``handler`` when ``pattern`` appears
        in the event field of an OSDU arriving on ``vc_id``."""
        if vc_id not in self.streams:
            raise ValueError(f"unknown stream {vc_id!r}")
        self._event_handlers[(vc_id, pattern)] = handler
        self.llo.event_register(self.session_id, vc_id, pattern)

    # ------------------------------------------------------------------
    # Introspection helpers used by benchmarks and the HLO
    # ------------------------------------------------------------------

    def current_skew(self) -> float:
        return self.skew_series[-1][1] if self.skew_series else 0.0

    def max_skew(self, since: float = 0.0) -> float:
        values = [s for t, s in self.skew_series if t >= since]
        return max(values) if values else 0.0

    def mean_skew(self, since: float = 0.0) -> float:
        values = [s for t, s in self.skew_series if t >= since]
        return sum(values) / len(values) if values else 0.0
