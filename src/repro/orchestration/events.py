"""Stream hook events: the control plane's trigger substrate.

The live-broadcast orchestration specs this module follows (MediaMTX
``runOnReady`` / ``runOnNotReady`` hooks) deliver two event kinds for an
ingest path: *ready* (a publisher started sending media) and *unready*
(the publisher stopped).  Delivery is **at-least-once** (duplicates
possible) and may be **out of order** across restarts.  Everything the
reconciler needs to survive that is concentrated here:

- :class:`HookEvent` -- one immutable event, carrying a per-stream
  publisher-side sequence number ``seq`` that totally orders the
  publisher's intent for the stream.
- :class:`DesiredTable` -- the pure state-reduction: folds any
  permutation / duplication of a stream's events into the same final
  desired state (the max-``seq`` event wins; everything else is
  classified duplicate or stale and ignored).
- :class:`StreamHookSource` -- the publisher side: mints ready/unready
  events with fresh run ids and monotonic sequence numbers.
- :class:`FlakyHookChannel` -- a delivery channel that *deliberately*
  reorders, delays and duplicates events on their way to a consumer,
  deterministically from a named RNG stream, so chaos tests exercise
  the full at-least-once contract.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

READY = "ready"
UNREADY = "unready"

_KINDS = (READY, UNREADY)


@dataclass(frozen=True)
class HookEvent:
    """One stream lifecycle hook event.

    Attributes:
        stream_id: the logical ingest path (``live/<streamId>/in``).
        run_id: the stream session this event belongs to -- one live
            session of a stream from first ready to final stop.
        kind: ``"ready"`` or ``"unready"``.
        seq: publisher-side per-stream sequence number.  Duplicates of
            the same event share a ``seq``; a re-delivered old event
            keeps its original (lower) ``seq``, which is how the
            reducer recognises it as stale.
    """

    stream_id: str
    run_id: str
    kind: str
    seq: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown hook event kind {self.kind!r}")
        if self.seq < 0:
            raise ValueError(f"seq must be non-negative, got {self.seq}")
        if not self.stream_id:
            raise ValueError("stream_id must be non-empty")


@dataclass(frozen=True)
class DesiredState:
    """The reduced per-stream desire: run or stop, and for which run."""

    running: bool
    run_id: Optional[str]
    seq: int


#: Classification of one observed event against the table.
APPLIED = "applied"
DUPLICATE = "duplicate"
STALE = "stale"


class DesiredTable:
    """Order/duplicate-tolerant reduction of hook events to desired state.

    The invariant that makes convergence provable: the desired state of
    a stream is a pure function of the **maximum-sequence event seen so
    far**.  Observing events in any order, with any duplication,
    therefore always converges to the same final state once the same
    event set has been delivered -- exactly the at-least-once,
    out-of-order contract of the hook sources.
    """

    def __init__(self) -> None:
        self._latest: Dict[str, DesiredState] = {}
        self._seen_seqs: Dict[str, Set[int]] = {}

    def observe(self, event: HookEvent) -> str:
        """Fold one event in; returns ``applied | duplicate | stale``."""
        seen = self._seen_seqs.setdefault(event.stream_id, set())
        if event.seq in seen:
            return DUPLICATE
        seen.add(event.seq)
        current = self._latest.get(event.stream_id)
        if current is not None and event.seq <= current.seq:
            return STALE
        self._latest[event.stream_id] = DesiredState(
            running=event.kind == READY,
            run_id=event.run_id if event.kind == READY else event.run_id,
            seq=event.seq,
        )
        return APPLIED

    def desired(self, stream_id: str) -> Optional[DesiredState]:
        """Current desired state, or None when no event was ever seen."""
        return self._latest.get(stream_id)

    def streams(self) -> List[str]:
        """Every stream with at least one observed event."""
        return sorted(self._latest)

    def __len__(self) -> int:
        return len(self._latest)


class StreamHookSource:
    """The publisher side of one stream's hook contract.

    Mints events with monotonically increasing ``seq`` and a fresh
    ``run_id`` per ready/unready cycle, mirroring how a media router
    assigns one *stream session* (runId) per live session.
    """

    def __init__(self, stream_id: str):
        self.stream_id = stream_id
        self._seq = 0
        self._runs = 0
        self._current_run: Optional[str] = None
        self.emitted: List[HookEvent] = []

    def _next(self, kind: str, run_id: str) -> HookEvent:
        event = HookEvent(self.stream_id, run_id, kind, self._seq)
        self._seq += 1
        self.emitted.append(event)
        return event

    def ready(self) -> HookEvent:
        """A publisher (re)started: opens a new run unless one is live."""
        if self._current_run is None:
            self._runs += 1
            self._current_run = f"{self.stream_id}#r{self._runs}"
        return self._next(READY, self._current_run)

    def unready(self) -> HookEvent:
        """The publisher stopped: closes the current run."""
        run = self._current_run or f"{self.stream_id}#r{self._runs}"
        self._current_run = None
        return self._next(UNREADY, run)

    @property
    def runs(self) -> int:
        """Number of runs (ready cycles) started so far."""
        return self._runs


@dataclass
class HookDeliveryConfig:
    """Flakiness knobs for :class:`FlakyHookChannel`.

    With the defaults the channel is perfectly well behaved (zero
    delay, no duplicates); chaos tests turn the knobs up.
    """

    base_delay: float = 0.0
    jitter: float = 0.0
    duplicate_probability: float = 0.0
    max_extra_copies: int = 2
    duplicate_lag: float = 0.5

    def __post_init__(self) -> None:
        if self.base_delay < 0 or self.jitter < 0 or self.duplicate_lag < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be in [0, 1]")
        if self.max_extra_copies < 0:
            raise ValueError("max_extra_copies must be non-negative")


class FlakyHookChannel:
    """At-least-once, out-of-order hook delivery over the simulator.

    Each published event is delivered to ``deliver`` after
    ``base_delay + U(0, jitter)`` seconds; with probability
    ``duplicate_probability`` up to ``max_extra_copies`` additional
    copies land within a further ``duplicate_lag`` window.  Jitter
    means two events published back-to-back can arrive swapped -- the
    reorder case the reducer must tolerate.  All randomness comes from
    the supplied RNG, so a seeded run replays identically.
    """

    def __init__(
        self,
        sim,
        deliver: Callable[[HookEvent], object],
        rng: Optional[_random.Random] = None,
        config: Optional[HookDeliveryConfig] = None,
    ):
        self.sim = sim
        self.deliver = deliver
        self.rng = rng or _random.Random(0)
        self.config = config or HookDeliveryConfig()
        self.published = 0
        self.deliveries = 0

    def publish(self, event: HookEvent) -> None:
        """Schedule the event's delivery (plus any duplicate copies)."""
        self.published += 1
        cfg = self.config
        copies = 1
        if cfg.duplicate_probability > 0 and cfg.max_extra_copies > 0:
            while (
                copies <= cfg.max_extra_copies
                and self.rng.random() < cfg.duplicate_probability
            ):
                copies += 1
        for _ in range(copies):
            delay = cfg.base_delay
            if cfg.jitter > 0:
                delay += self.rng.uniform(0.0, cfg.jitter)
            if _ > 0 and cfg.duplicate_lag > 0:
                delay += self.rng.uniform(0.0, cfg.duplicate_lag)
            self.sim.call_at(
                self.sim.now + delay, lambda e=event: self._deliver(e)
            )

    def _deliver(self, event: HookEvent) -> None:
        self.deliveries += 1
        self.deliver(event)


def replay(
    events: Iterable[HookEvent], table: Optional[DesiredTable] = None
) -> Tuple[DesiredTable, Dict[str, int]]:
    """Feed events into a table; returns it plus outcome counts.

    A convenience for property tests: any permutation/duplication of
    the same event set leaves the returned table in the same state.
    """
    table = table or DesiredTable()
    outcomes = {APPLIED: 0, DUPLICATE: 0, STALE: 0}
    for event in events:
        outcomes[table.observe(event)] += 1
    return table, outcomes
