"""Orchestration policies (the HLO's policy layer).

"Applications pass Stream interfaces to these operations and the HLO
arranges to have the required continuous synchronisation performed by
the lower layers according to a policy specified by the application.
Policies include constraints on how 'strict' the continuous
synchronisation should be and actions to take on failure" (paper
section 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CompensationAction(enum.Enum):
    """What the HLO agent did (or recommends) about a lagging stream."""

    NONE = "none"
    RETARGET = "retarget"          # targets rebased automatically
    DROP = "drop"                  # drop budget was spent at the source
    DELAYED_SOURCE = "delayed-source"  # Orch.Delayed to the source app
    DELAYED_SINK = "delayed-sink"      # Orch.Delayed to the sink app
    RENEGOTIATE = "renegotiate"        # T-Renegotiate the VC's QoS
    REBASE = "rebase"              # slow the whole group to the laggard
    OUTAGE = "outage"              # stream stopped delivering entirely
    OUTAGE_RESYNC = "outage-resync"    # timeline shifted past an outage gap


@dataclass
class OrchestrationPolicy:
    """Tunable policy for one orchestrated group.

    Attributes:
        interval_length: regulation interval in master-clock seconds
            (the paper's Figure 6 ``interval``).
        strictness: target bound on inter-stream skew in media seconds;
            the canonical lip-sync threshold is 80 ms.
        patience_intervals: how many consecutive intervals a stream may
            miss its target before the agent escalates beyond
            retargeting.
        delayed_threshold_osdus: behindness (in OSDUs) below which the
            agent never escalates.
        block_fraction_threshold: fraction of the interval a thread
            must have spent blocked for the blocking-time attribution
            to accuse it.
        rebase_to_slowest: when True and a no-drop stream lags
            persistently, slow the whole group's timeline to the
            laggard instead of letting skew grow (the paper's "linking
            QoS degradations on one VC to corresponding compensations
            on another", section 3.6).
        escalate_renegotiate: allow the agent to request QoS
            renegotiation (via its ``on_renegotiate`` hook) when
            attribution blames protocol throughput.
        outage_intervals: consecutive regulation intervals with zero
            new deliveries (while behind target) before the agent
            declares the stream in outage.  An outaged stream is
            exempt from blocking-time escalation until data flows
            again -- nothing it reports is attributable.
        resync_after_outage: when a stream recovers from an outage,
            shift the group timeline past the gap (like ``REBASE``) so
            the survivors stay synchronised with the recovered stream
            instead of demanding an unbounded catch-up burst.
        reprime_after_outage: additionally run a full
            stop / prime / start cycle on recovery to refill the sink
            pipelines before regulation resumes.
    """

    interval_length: float = 0.2
    strictness: float = 0.080
    patience_intervals: int = 3
    delayed_threshold_osdus: int = 2
    block_fraction_threshold: float = 0.5
    rebase_to_slowest: bool = False
    escalate_renegotiate: bool = True
    outage_intervals: int = 2
    resync_after_outage: bool = True
    reprime_after_outage: bool = False

    def __post_init__(self) -> None:
        if self.interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if self.strictness <= 0:
            raise ValueError("strictness must be positive")
        if self.patience_intervals < 1:
            raise ValueError("patience_intervals must be at least 1")
        if self.outage_intervals < 1:
            raise ValueError("outage_intervals must be at least 1")
