"""The Low Level Orchestrator (paper section 6).

One :class:`LLOInstance` runs on every node that terminates an
orchestrated VC.  The instance on the *orchestrating node* is driven
directly by the HLO agent through coroutine methods; instances on other
nodes are driven by OPDUs over guaranteed-bandwidth control channels.

The LLO is pure **mechanism** ("the LLO operates on a best effort
principle; it is the responsibility of the HLO agent to take
appropriate action ... if the LLO consistently fails to meet
targets"):

- Group 1 primitives (Table 5): prime, start, stop, add, remove --
  atomic over the grouping, implemented through the receive-buffer
  delivery gate and the transport's credit-based backpressure.
- Group 2 primitives (Table 6): regulate (per-interval delivery pacing
  with source-side drops, ahead-blocking, and end-of-interval reports
  including blocking-time statistics), delayed, and event matching.

Interval timing uses the *local node clock*, so clock drift between
nodes produces real divergence that the HLO agent's feedback loop must
correct -- exactly the problem setting of paper section 3.6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.netsim.packet import Packet, Priority
from repro.netsim.topology import Network
from repro.sim.scheduler import AllOf, AnyOf, Event, Simulator, Timeout, Timer
from repro.sim.sync import Queue
from repro.transport.buffers import ROLE_APPLICATION, ROLE_PROTOCOL
from repro.transport.entity import TransportEntity, VCEndpoint
from repro.orchestration.opdu import (
    ControlOPDU,
    DelayedCmdOPDU,
    DropRequestOPDU,
    EventNotifyOPDU,
    EventRegisterOPDU,
    GroupCmdOPDU,
    NudgeCmdOPDU,
    OPDU_WIRE_BYTES,
    RegulateCmdOPDU,
    RegulateReportOPDU,
    ReplyOPDU,
    SessionReleaseOPDU,
    SessionRequestOPDU,
    StatsQueryOPDU,
    StatsReplyOPDU,
)
from repro.orchestration.primitives import (
    AddIndication,
    DelayedIndication,
    OrchEventIndication,
    OrchRegulateIndication,
    OrchReply,
    PrimeIndication,
    RemoveIndication,
    StartIndication,
    StopIndication,
)

#: Reasons the paper names for orchestration rejection (section 6.1).
REASON_NO_TABLE_SPACE = "no-table-space"
REASON_NO_SUCH_VC = "vc-does-not-exist"
REASON_TIMEOUT = "timeout"
REASON_APP_DENY = "application-denied"


@dataclass
class _Session:
    session_id: str
    vcs: Dict[str, Tuple[str, str]]  # vc_id -> (source node, sink node)
    origin: str  # orchestrating node
    event_patterns: Dict[str, Set[int]] = field(default_factory=dict)

    def nodes(self, vc_ids: Optional[List[str]] = None) -> Set[str]:
        relevant = self.vcs if vc_ids is None else {
            v: self.vcs[v] for v in vc_ids if v in self.vcs
        }
        involved: Set[str] = set()
        for src, sink in relevant.values():
            involved.add(src)
            involved.add(sink)
        return involved


@dataclass
class _PendingAggregate:
    """Fan-out request waiting for replies from several nodes."""

    waiting: Set[str]
    done: Event
    ok: bool = True
    reason: str = ""


class LLOError(Exception):
    """Raised for misuse of the LLO interface."""


def auto_orch_responder(sim: Simulator, endpoint: VCEndpoint):
    """Spawn a process that accepts every orchestration indication.

    Applications with no special priming/stopping behaviour attach this
    so Orch.Prime/Start/Stop confirm immediately.
    """

    def responder():
        while True:
            primitive, reply = yield endpoint.next_orch()
            reply.set(OrchReply(accept=True))

    return sim.spawn(responder(), name=f"orch-auto:{endpoint.vc_id}")


class LLOInstance:
    """Low-level orchestrator for one node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        entity: TransportEntity,
        max_sessions: int = 8,
        app_reply_timeout: float = 5.0,
        prime_fill_timeout: float = 30.0,
        prime_quiesce: float = 0.05,
    ):
        self.sim = sim
        self.network = network
        self.entity = entity
        self.node_name = entity.node_name
        self.host = network.host(self.node_name)
        self.clock = self.host.clock
        self.host.register_handler("opdu", self._on_packet)
        self.max_sessions = max_sessions
        self.app_reply_timeout = app_reply_timeout
        self.prime_fill_timeout = prime_fill_timeout
        self.prime_quiesce = prime_quiesce
        self.sessions: Dict[str, _Session] = {}
        self._agent_queues: Dict[str, Queue] = {}
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingAggregate] = {}
        self._stats_pending: Dict[int, Event] = {}
        self._delayed_pending: Dict[int, Event] = {}
        # Per-VC serialisation of regulation intervals: back-to-back
        # Orch.Regulate commands queue rather than overlap.
        self._regulating: Set[str] = set()
        self._regulate_backlog: Dict[str, List[RegulateCmdOPDU]] = {}
        self._event_matchers: Set[Tuple[str, str]] = set()
        self.drops_requested = 0
        self.drops_performed = 0

    # ------------------------------------------------------------------
    # Agent-facing interface (used on the orchestrating node)
    # ------------------------------------------------------------------

    def agent_queue(self, session_id: str) -> Queue:
        """Indication queue for the HLO agent controlling ``session_id``."""
        if session_id not in self._agent_queues:
            self._agent_queues[session_id] = Queue(self.sim)
        return self._agent_queues[session_id]

    def orch_request(
        self, session_id: str, vcs: Dict[str, Tuple[str, str]]
    ) -> Generator:
        """Coroutine implementing Orch.request (Table 4).

        Propagates the request to the LLO instance at each source and
        sink of all VCs; returns an :class:`OrchReply`.
        """
        if len(self.sessions) >= self.max_sessions:
            return OrchReply(False, REASON_NO_TABLE_SPACE)
        session = _Session(session_id, dict(vcs), origin=self.node_name)
        nodes = session.nodes()
        request_id = next(self._req_ids)
        aggregate = _PendingAggregate(set(nodes), Event(self.sim))
        self._pending[request_id] = aggregate
        for node in sorted(nodes):
            opdu = SessionRequestOPDU(
                session_id=session_id,
                request_id=request_id,
                origin=self.node_name,
                vcs=dict(vcs),
            )
            if node == self.node_name:
                self._handle_session_request(opdu)
            else:
                self._send_opdu(node, opdu)
        reply = yield from self._await_aggregate(request_id, aggregate)
        if reply.accept:
            # The orchestrating node tracks the session even when it
            # terminates no VC itself (the HLO agent lives here).
            self.sessions.setdefault(session_id, session)
        else:
            self._release_everywhere(session, reply.reason)
        return reply

    def release(self, session_id: str, reason: str = "released") -> None:
        """Orch.Release.request (Table 4)."""
        session = self.sessions.pop(session_id, None)
        if session is None:
            return
        self._release_everywhere(session, reason)

    def _release_everywhere(self, session: _Session, reason: str) -> None:
        for node in sorted(session.nodes() | {session.origin}):
            opdu = SessionReleaseOPDU(
                session_id=session.session_id,
                request_id=next(self._req_ids),
                origin=self.node_name,
                reason=reason,
            )
            if node == self.node_name:
                self.sessions.pop(session.session_id, None)
            else:
                self._send_opdu(node, opdu)

    def group_command(
        self, session_id: str, kind: str, vc_ids: Optional[List[str]] = None,
        vcs: Optional[Dict[str, Tuple[str, str]]] = None,
        metered: bool = False,
    ) -> Generator:
        """Coroutine: run a Group-1 command over (part of) the group.

        ``kind`` is one of ``prime | start | stop | add | remove``.
        Returns an :class:`OrchReply`; a negative reply corresponds to
        the Orch.Deny.indication of Table 5.
        """
        session = self.sessions.get(session_id)
        if session is None:
            return OrchReply(False, REASON_NO_SUCH_VC)
        if kind == "add" and vcs:
            session.vcs.update(vcs)
        target_vcs = vc_ids if vc_ids is not None else list(session.vcs)
        nodes = session.nodes(target_vcs)
        request_id = next(self._req_ids)
        aggregate = _PendingAggregate(set(nodes), Event(self.sim))
        self._pending[request_id] = aggregate
        for node in sorted(nodes):
            opdu = GroupCmdOPDU(
                session_id=session_id,
                request_id=request_id,
                origin=self.node_name,
                kind=kind,
                vc_ids=list(target_vcs),
                vcs=dict(vcs or {}),
                metered=metered,
            )
            if node == self.node_name:
                self._handle_group_cmd(opdu)
            else:
                self._send_opdu(node, opdu)
        reply = yield from self._await_aggregate(request_id, aggregate)
        if kind == "remove" and reply.accept:
            for vc_id in target_vcs:
                session.vcs.pop(vc_id, None)
                session.event_patterns.pop(vc_id, None)
        return reply

    def prime(self, session_id: str) -> Generator:
        """Orch.Prime over the whole group (section 6.2.1).

        Two distributed phases behind one primitive:

        1. *clean*: every sink closes its gate and flushes -- including
           a quiescence wait so in-flight stragglers from the previous
           play-out (which the CONTROL-priority command can overtake on
           the wire) are also discarded; every source flushes its send
           buffer.  Sink applications get their Orch.Prime.indication
           here ("preparing to accept data").
        2. *fill*: source applications get their Orch.Prime.indication
           ("start generating data"); sinks confirm once their buffers
           are full.

        Without the barrier between the phases, a source could refill
        the pipeline while a sink is still cleaning it out.
        """
        reply = yield from self.group_command(session_id, "prime-clean")
        if not reply.accept:
            return reply
        return (yield from self.group_command(session_id, "prime-fill"))

    def start(self, session_id: str, metered: bool = False) -> Generator:
        """Orch.Start over the whole group (section 6.2.2).

        With ``metered`` the sink gates move straight into the
        regulation (credit-paced) state, so the primed pipeline drains
        on the HLO agent's release schedule rather than in one burst.
        """
        return (
            yield from self.group_command(session_id, "start", metered=metered)
        )

    def stop(self, session_id: str) -> Generator:
        """Orch.Stop over the whole group (section 6.2.3)."""
        return (yield from self.group_command(session_id, "stop"))

    def add(self, session_id: str, vc_id: str, src: str, sink: str) -> Generator:
        """Orch.Add of one VC (section 6.2.4)."""
        return (
            yield from self.group_command(
                session_id, "add", [vc_id], {vc_id: (src, sink)}
            )
        )

    def remove(self, session_id: str, vc_id: str) -> Generator:
        """Orch.Remove of one VC (section 6.2.4)."""
        return (yield from self.group_command(session_id, "remove", [vc_id]))

    def regulate_request(
        self,
        session_id: str,
        vc_id: str,
        target_osdu: int,
        max_drop: int,
        interval_length: float,
        interval_id: int,
    ) -> None:
        """Orch.Regulate.request (section 6.3.1.1): set an interval target.

        Fire-and-forget; the matching Orch.Regulate.indication arrives
        in the agent queue at the end of the interval.
        """
        session = self.sessions.get(session_id)
        if session is None or vc_id not in session.vcs:
            # The VC may have just been removed from the group; the
            # races inherent in distributed membership make this a
            # silent no-op rather than an error.
            return
        sink = session.vcs[vc_id][1]
        opdu = RegulateCmdOPDU(
            session_id=session_id,
            request_id=next(self._req_ids),
            origin=self.node_name,
            vc_id=vc_id,
            target_osdu=target_osdu,
            max_drop=max_drop,
            interval_length=interval_length,
            interval_id=interval_id,
        )
        if sink == self.node_name:
            self._handle_regulate_cmd(opdu)
        else:
            self._send_opdu(sink, opdu)

    def nudge_request(self, session_id: str, vc_id: str) -> None:
        """Ask the source of an outaged VC to re-open its send window.

        Fire-and-forget, sent at CONTROL priority each interval the HLO
        agent observes the stream in outage; losing one is harmless
        because the next interval resends and the probe is idempotent.
        """
        session = self.sessions.get(session_id)
        if session is None or vc_id not in session.vcs:
            return
        src = session.vcs[vc_id][0]
        opdu = NudgeCmdOPDU(
            session_id=session_id,
            request_id=next(self._req_ids),
            origin=self.node_name,
            vc_id=vc_id,
        )
        if src == self.node_name:
            self._handle_nudge_cmd(opdu)
        else:
            self._send_opdu(src, opdu)

    def _handle_nudge_cmd(self, opdu: NudgeCmdOPDU) -> None:
        """Source-side nudge: start the transport credit probe."""
        if opdu.vc_id in self.entity.send_vcs:
            self.entity.begin_outage_probe(opdu.vc_id)

    def delayed_request(
        self,
        session_id: str,
        vc_id: str,
        source_or_sink: str,
        interval_length: float,
        osdus_behind: int,
    ) -> Generator:
        """Coroutine implementing Orch.Delayed (section 6.3.3)."""
        session = self.sessions.get(session_id)
        if session is None or vc_id not in session.vcs:
            return OrchReply(False, REASON_NO_SUCH_VC)
        src, sink = session.vcs[vc_id]
        node = src if source_or_sink == "source" else sink
        request_id = next(self._req_ids)
        done = Event(self.sim)
        self._delayed_pending[request_id] = done
        opdu = DelayedCmdOPDU(
            session_id=session_id,
            request_id=request_id,
            origin=self.node_name,
            vc_id=vc_id,
            source_or_sink=source_or_sink,
            interval_length=interval_length,
            osdus_behind=osdus_behind,
        )
        if node == self.node_name:
            self._handle_delayed_cmd(opdu)
        else:
            self._send_opdu(node, opdu)
        index, value = yield AnyOf(
            self.sim, [done, Timeout(self.sim, self.app_reply_timeout)]
        )
        self._delayed_pending.pop(request_id, None)
        if index == 1:
            return OrchReply(False, REASON_TIMEOUT)
        return value

    def local_delivered_seq(self, vc_id: str):
        """Delivered OSDU sequence for a locally-terminated sink VC.

        Returns None when this node is not the VC's sink; the agent
        then falls back to the last regulation report.
        """
        recv_vc = self.entity.recv_vcs.get(vc_id)
        if recv_vc is None:
            return None
        return recv_vc.delivered_seq()

    def event_register(self, session_id: str, vc_id: str, pattern: int) -> None:
        """Orch.Event.request (section 6.3.4): watch for ``pattern``."""
        session = self.sessions.get(session_id)
        if session is None or vc_id not in session.vcs:
            raise LLOError(f"event register for unknown VC {vc_id!r}")
        sink = session.vcs[vc_id][1]
        opdu = EventRegisterOPDU(
            session_id=session_id,
            request_id=next(self._req_ids),
            origin=self.node_name,
            vc_id=vc_id,
            event_pattern=pattern,
        )
        if sink == self.node_name:
            self._handle_event_register(opdu)
        else:
            self._send_opdu(sink, opdu)

    # ------------------------------------------------------------------
    # Aggregation plumbing
    # ------------------------------------------------------------------

    def _await_aggregate(
        self, request_id: int, aggregate: _PendingAggregate
    ) -> Generator:
        index, _value = yield AnyOf(
            self.sim,
            [aggregate.done, Timeout(self.sim, self.prime_fill_timeout)],
        )
        self._pending.pop(request_id, None)
        if index == 1:
            return OrchReply(False, REASON_TIMEOUT)
        return OrchReply(aggregate.ok, aggregate.reason)

    def _reply_to(self, origin: str, opdu: ControlOPDU, ok: bool, reason: str) -> None:
        reply = ReplyOPDU(
            session_id=opdu.session_id,
            request_id=opdu.request_id,
            origin=self.node_name,
            ok=ok,
            reason=reason,
            node=self.node_name,
        )
        if origin == self.node_name:
            self._handle_reply(reply)
        else:
            self._send_opdu(origin, reply)

    def _handle_reply(self, reply: ReplyOPDU) -> None:
        if reply.request_id in self._delayed_pending:
            self._handle_delayed_reply(reply)
            return
        aggregate = self._pending.get(reply.request_id)
        if aggregate is None:
            return
        aggregate.waiting.discard(reply.node)
        if not reply.ok and aggregate.ok:
            aggregate.ok = False
            aggregate.reason = reply.reason
            # A deny aborts the group operation immediately ("the
            # result is passed back", section 6.2.1) -- other legs may
            # be waiting on pipelines that will now never fill.
            if not aggregate.done.is_set:
                aggregate.done.set(None)
                return
        if not aggregate.waiting and not aggregate.done.is_set:
            aggregate.done.set(None)

    # ------------------------------------------------------------------
    # OPDU handlers (this node as a *participant*)
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        opdu = packet.payload
        handlers = {
            SessionRequestOPDU: self._handle_session_request,
            SessionReleaseOPDU: self._handle_session_release,
            GroupCmdOPDU: self._handle_group_cmd,
            ReplyOPDU: self._handle_reply,
            RegulateCmdOPDU: self._handle_regulate_cmd,
            RegulateReportOPDU: self._handle_regulate_report,
            DropRequestOPDU: self._handle_drop_request,
            NudgeCmdOPDU: self._handle_nudge_cmd,
            StatsQueryOPDU: self._handle_stats_query,
            StatsReplyOPDU: self._handle_stats_reply,
            DelayedCmdOPDU: self._handle_delayed_cmd,
            EventRegisterOPDU: self._handle_event_register,
            EventNotifyOPDU: self._handle_event_notify,
        }
        handler = handlers.get(type(opdu))
        if handler is not None:
            handler(opdu)

    def _handle_session_request(self, opdu: SessionRequestOPDU) -> None:
        if opdu.session_id in self.sessions:
            self._reply_to(opdu.origin, opdu, True, "")
            return
        if len(self.sessions) >= self.max_sessions:
            # "Rejection may occur because some LLO instance has no
            # table space available" (section 6.1).
            self._reply_to(opdu.origin, opdu, False, REASON_NO_TABLE_SPACE)
            return
        for vc_id, (src, sink) in opdu.vcs.items():
            local_roles = self._local_roles(vc_id)
            expects_source = src == self.node_name
            expects_sink = sink == self.node_name
            if (expects_source and "source" not in local_roles) or (
                expects_sink and "sink" not in local_roles
            ):
                # "... or because one or more of the specified VCs do
                # not exist" (section 6.1).
                self._reply_to(opdu.origin, opdu, False, REASON_NO_SUCH_VC)
                return
        self.sessions[opdu.session_id] = _Session(
            opdu.session_id, dict(opdu.vcs), origin=opdu.origin
        )
        self._reply_to(opdu.origin, opdu, True, "")

    def _handle_session_release(self, opdu: SessionReleaseOPDU) -> None:
        self.sessions.pop(opdu.session_id, None)

    def _local_roles(self, vc_id: str) -> Set[str]:
        roles: Set[str] = set()
        if vc_id in self.entity.send_vcs:
            roles.add("source")
        if vc_id in self.entity.recv_vcs:
            roles.add("sink")
        return roles

    def _handle_group_cmd(self, opdu: GroupCmdOPDU) -> None:
        session = self.sessions.get(opdu.session_id)
        if session is None:
            if opdu.kind == "add" and opdu.vcs:
                # Orch.Add can bring a node into the session for the
                # first time (a new source joining a running group).
                if len(self.sessions) >= self.max_sessions:
                    self._reply_to(opdu.origin, opdu, False,
                                   REASON_NO_TABLE_SPACE)
                    return
                session = _Session(
                    opdu.session_id, dict(opdu.vcs), origin=opdu.origin
                )
                self.sessions[opdu.session_id] = session
            else:
                self._reply_to(opdu.origin, opdu, False, REASON_NO_SUCH_VC)
                return
        if opdu.kind == "add":
            session.vcs.update(opdu.vcs)
        self.sim.spawn(
            self._run_group_cmd(session, opdu),
            name=f"llo-{opdu.kind}:{self.node_name}",
        )

    def _run_group_cmd(self, session: _Session, opdu: GroupCmdOPDU):
        if opdu.kind == "add":
            for vc_id, (src, sink) in opdu.vcs.items():
                local_roles = self._local_roles(vc_id)
                if (src == self.node_name and "source" not in local_roles) or (
                    sink == self.node_name and "sink" not in local_roles
                ):
                    session.vcs.pop(vc_id, None)
                    self._reply_to(opdu.origin, opdu, False, REASON_NO_SUCH_VC)
                    return
        # Every local (vc, role) leg runs concurrently: priming one VC
        # can take seconds (the pipeline fills at the media rate), and
        # serialising legs would leave later VCs' gates open meanwhile,
        # breaking the atomic-start guarantee of section 6.2.
        legs = [
            self.sim.spawn(
                self._apply_cmd(opdu.kind, session, vc_id, role,
                                metered=opdu.metered),
                name=f"llo-{opdu.kind}-leg:{vc_id}/{role}",
            )
            for vc_id in opdu.vc_ids
            for role in sorted(self._local_roles(vc_id))
        ]
        results = yield AllOf(self.sim, legs)
        ok = all(sub_ok for sub_ok, _reason in results)
        reason = next(
            (sub_reason for sub_ok, sub_reason in results if not sub_ok), ""
        )
        if opdu.kind == "remove":
            for vc_id in opdu.vc_ids:
                session.vcs.pop(vc_id, None)
                session.event_patterns.pop(vc_id, None)
        self._reply_to(opdu.origin, opdu, ok, reason)

    def _apply_cmd(self, kind: str, session: _Session, vc_id: str, role: str,
                   metered: bool = False):
        """Coroutine: execute one command leg; returns (ok, reason)."""
        trace = self.sim.trace
        span = (
            trace.span(
                f"{kind}:{vc_id}",
                track=f"orch:{vc_id}/{role}",
                cat="orch",
                args={"role": role, "node": self.node_name},
            )
            if trace.enabled
            else None
        )
        ok, reason = yield from self._apply_cmd_leg(
            kind, session, vc_id, role, metered
        )
        if span is not None:
            span.end(ok=ok, reason=reason)
        return ok, reason

    def _apply_cmd_leg(self, kind: str, session: _Session, vc_id: str,
                       role: str, metered: bool = False):
        endpoint = self.entity.endpoint_for(vc_id)
        if kind == "prime-clean":
            return (yield from self._prime_clean(session, vc_id, role,
                                                 endpoint))
        if kind == "prime-fill":
            return (yield from self._prime_fill(session, vc_id, role,
                                                endpoint))
        indication_cls = {
            "start": StartIndication,
            "stop": StopIndication,
            "add": AddIndication,
            "remove": RemoveIndication,
        }[kind]
        if kind == "stop" and role == "sink":
            self.entity.recv_vcs[vc_id].close_gate()
        reply = yield from self._indicate(
            endpoint,
            indication_cls(
                orch_session_id=session.session_id, vc_id=vc_id, role=role
            ),
        )
        if not reply.accept:
            return False, reply.reason or REASON_APP_DENY
        if kind == "start" and role == "sink":
            recv_vc = self.entity.recv_vcs[vc_id]
            if metered:
                recv_vc.meter_gate()
            else:
                recv_vc.open_gate()
        return True, ""

    def _prime_clean(self, session: _Session, vc_id: str, role: str,
                     endpoint):
        """Phase 1 of Orch.Prime: gates closed, buffers cleaned out."""
        if role == "sink":
            recv_vc = self.entity.recv_vcs[vc_id]
            recv_vc.close_gate()
            # Quiesce: stragglers still on the wire (the prime command
            # travels at CONTROL priority and can overtake data) must
            # land and be flushed before the pipeline refills.
            deposited = recv_vc.buffer.deposited
            quiesce = Timer(self.sim)
            while True:
                recv_vc.flush()
                yield quiesce.after(self.prime_quiesce)
                if recv_vc.buffer.deposited == deposited:
                    break
                deposited = recv_vc.buffer.deposited
            recv_vc.flush()
            reply = yield from self._indicate(
                endpoint,
                PrimeIndication(
                    orch_session_id=session.session_id, vc_id=vc_id,
                    role=role,
                ),
            )
            if not reply.accept:
                return False, reply.reason or REASON_APP_DENY
        else:
            self.entity.send_vcs[vc_id].flush()
        return True, ""

    def _prime_fill(self, session: _Session, vc_id: str, role: str,
                    endpoint):
        """Phase 2 of Orch.Prime: sources generate, sinks fill."""
        if role == "source":
            reply = yield from self._indicate(
                endpoint,
                PrimeIndication(
                    orch_session_id=session.session_id, vc_id=vc_id,
                    role=role,
                ),
            )
            if not reply.accept:
                return False, reply.reason or REASON_APP_DENY
            return True, ""
        recv_vc = self.entity.recv_vcs[vc_id]
        index, _value = yield AnyOf(
            self.sim,
            [recv_vc.when_primed(), Timeout(self.sim, self.prime_fill_timeout)],
        )
        if index == 1:
            return False, REASON_TIMEOUT
        return True, ""

    def _indicate(self, endpoint: Optional[VCEndpoint], primitive):
        """Coroutine: deliver an indication to the app thread, await reply."""
        if endpoint is None:
            # No application attached; treat as auto-accept so that
            # bare-transport tests can orchestrate without app threads.
            if False:
                yield None
            return OrchReply(True)
        reply_event = Event(self.sim)
        endpoint.orch_queue.put_nowait((primitive, reply_event))
        index, value = yield AnyOf(
            self.sim, [reply_event, Timeout(self.sim, self.app_reply_timeout)]
        )
        if index == 1:
            return OrchReply(False, REASON_TIMEOUT)
        return value

    # ------------------------------------------------------------------
    # Regulation (section 6.3.1)
    # ------------------------------------------------------------------

    def _handle_regulate_cmd(self, opdu: RegulateCmdOPDU) -> None:
        session = self.sessions.get(opdu.session_id)
        if session is None:
            return
        if opdu.vc_id in self._regulating:
            self._regulate_backlog.setdefault(opdu.vc_id, []).append(opdu)
            return
        self._regulating.add(opdu.vc_id)
        self.sim.spawn(
            self._run_interval(session, opdu),
            name=f"llo-regulate:{opdu.vc_id}@{self.node_name}",
        )

    def _finish_interval(self, vc_id: str) -> None:
        backlog = self._regulate_backlog.get(vc_id)
        if backlog:
            next_cmd = backlog.pop(0)
            session = self.sessions.get(next_cmd.session_id)
            if session is not None:
                self.sim.spawn(
                    self._run_interval(session, next_cmd),
                    name=f"llo-regulate:{vc_id}@{self.node_name}",
                )
                return
        self._regulating.discard(vc_id)

    def _run_interval(self, session: _Session, cmd: RegulateCmdOPDU):
        recv_vc = self.entity.recv_vcs.get(cmd.vc_id)
        if recv_vc is None:
            self._finish_interval(cmd.vc_id)
            return
        trace = self.sim.trace
        span = (
            trace.span(
                f"regulate:{cmd.vc_id}",
                track=f"regulate:{cmd.vc_id}",
                cat="orch",
                args={
                    "interval_id": cmd.interval_id,
                    "target_osdu": cmd.target_osdu,
                    "max_drop": cmd.max_drop,
                },
            )
            if trace.enabled
            else None
        )
        source_node = session.vcs[cmd.vc_id][0]
        # (Re-)meter at every interval start: stale credits left over
        # from a previous interval are drained, otherwise unconsumed
        # grants accumulate and the stream overshoots its targets.
        recv_vc.meter_gate()
        start_seq = recv_vc.delivered_seq()
        n_due = max(0, cmd.target_osdu - start_seq)
        drops_requested = 0
        # Interval timing runs on the *local* clock: the sink believes
        # it is pacing `interval_length` seconds, but its clock may
        # drift relative to the orchestrating node's master clock.
        interval_start_local = self.clock.now()
        # One reusable timer paces the whole interval: the per-OSDU loop
        # re-arms it instead of allocating a Timeout + closures per tick.
        pace = Timer(self.sim)
        for k in range(1, n_due + 1):
            tick_local = interval_start_local + cmd.interval_length * k / n_due
            remaining_local = tick_local - self.clock.now()
            if remaining_local > 0:
                yield pace.after(self.clock.sim_duration(remaining_local))
            pace_target = start_seq + k
            if recv_vc.delivered_seq() >= pace_target:
                # Already at pace (source drops advance the sequence
                # line without consuming grants): ahead-of-target means
                # block, i.e. simply withhold the grant.
                continue
            if len(recv_vc.buffer) == 0 and drops_requested < cmd.max_drop:
                # Behind target with nothing to deliver: spend one unit
                # of the drop budget at the source (section 6.3.1.1).
                drops_requested += 1
                self.drops_requested += 1
                self._request_drop(source_node, session.session_id, cmd.vc_id)
            recv_vc.grant(1)
        end_local = interval_start_local + cmd.interval_length
        remaining_local = end_local - self.clock.now()
        if remaining_local > 0:
            yield pace.after(self.clock.sim_duration(remaining_local))
        # Snapshot the delivered sequence *before* chaining the next
        # interval: its early grants must not leak into this report.
        final_seq = recv_vc.delivered_seq()
        sink_buffered = len(recv_vc.buffer)
        if span is not None:
            span.end(
                delivered=final_seq - start_seq,
                drops_requested=drops_requested,
            )
        self._finish_interval(cmd.vc_id)
        yield from self._report_interval(
            session, cmd, recv_vc, source_node, final_seq, sink_buffered
        )

    def _request_drop(self, source_node: str, session_id: str, vc_id: str) -> None:
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "drop.request", track=f"regulate:{vc_id}", cat="orch",
                args={"source": source_node},
            )
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.record_regulation_drop(session_id, vc_id)
        opdu = DropRequestOPDU(
            session_id=session_id,
            request_id=next(self._req_ids),
            origin=self.node_name,
            vc_id=vc_id,
            count=1,
        )
        if source_node == self.node_name:
            self._handle_drop_request(opdu)
        else:
            self._send_opdu(source_node, opdu)

    def _handle_drop_request(self, opdu: DropRequestOPDU) -> None:
        send_vc = self.entity.send_vcs.get(opdu.vc_id)
        if send_vc is None:
            return
        for _ in range(opdu.count):
            if send_vc.drop_oldest_unsent() is not None:
                self.drops_performed += 1

    def _report_interval(
        self, session: _Session, cmd: RegulateCmdOPDU, recv_vc,
        source_node: str, final_seq: int, sink_buffered: int,
    ):
        """Coroutine: gather both ends' statistics and report to the agent."""
        app_block_src, proto_block_src, dropped_src = yield from self._query_source(
            source_node, session.session_id, cmd.vc_id, cmd.interval_id
        )
        report = RegulateReportOPDU(
            session_id=session.session_id,
            request_id=cmd.request_id,
            origin=self.node_name,
            vc_id=cmd.vc_id,
            interval_id=cmd.interval_id,
            osdu_seq=final_seq,
            dropped=dropped_src,
            proto_block_times={
                "source": proto_block_src,
                "sink": recv_vc.blocked_time(ROLE_PROTOCOL),
            },
            app_block_times={
                "source": app_block_src,
                "sink": recv_vc.blocked_time(ROLE_APPLICATION),
            },
            sink_buffered=sink_buffered,
        )
        if session.origin == self.node_name:
            self._handle_regulate_report(report)
        else:
            self._send_opdu(session.origin, report)

    def _query_source(
        self, source_node: str, session_id: str, vc_id: str, interval_id: int
    ):
        """Coroutine: fetch cumulative blocking/drop stats from the source."""
        if source_node == self.node_name:
            send_vc = self.entity.send_vcs.get(vc_id)
            if send_vc is None:
                return 0.0, 0.0, 0
            return (
                send_vc.blocked_time(ROLE_APPLICATION),
                send_vc.blocked_time(ROLE_PROTOCOL),
                send_vc.buffer.dropped_at_source,
            )
        request_id = next(self._req_ids)
        done = Event(self.sim)
        self._stats_pending[request_id] = done
        self._send_opdu(
            source_node,
            StatsQueryOPDU(
                session_id=session_id,
                request_id=request_id,
                origin=self.node_name,
                vc_id=vc_id,
                interval_id=interval_id,
            ),
        )
        index, value = yield AnyOf(
            self.sim, [done, Timeout(self.sim, self.app_reply_timeout)]
        )
        self._stats_pending.pop(request_id, None)
        if index == 1:
            return 0.0, 0.0, 0
        return value

    def _handle_stats_query(self, opdu: StatsQueryOPDU) -> None:
        send_vc = self.entity.send_vcs.get(opdu.vc_id)
        if send_vc is None:
            app_block = proto_block = 0.0
            dropped = 0
        else:
            app_block = send_vc.blocked_time(ROLE_APPLICATION)
            proto_block = send_vc.blocked_time(ROLE_PROTOCOL)
            dropped = send_vc.buffer.dropped_at_source
        self._send_opdu(
            opdu.origin,
            StatsReplyOPDU(
                session_id=opdu.session_id,
                request_id=opdu.request_id,
                origin=self.node_name,
                vc_id=opdu.vc_id,
                interval_id=opdu.interval_id,
                app_block=app_block,
                proto_block=proto_block,
                dropped=dropped,
            ),
        )

    def _handle_stats_reply(self, opdu: StatsReplyOPDU) -> None:
        done = self._stats_pending.get(opdu.request_id)
        if done is not None and not done.is_set:
            done.set((opdu.app_block, opdu.proto_block, opdu.dropped))

    def _handle_regulate_report(self, opdu: RegulateReportOPDU) -> None:
        queue = self._agent_queues.get(opdu.session_id)
        if queue is None:
            return
        queue.put_nowait(
            OrchRegulateIndication(
                orch_session_id=opdu.session_id,
                vc_id=opdu.vc_id,
                interval_id=opdu.interval_id,
                osdu_seq=opdu.osdu_seq,
                dropped=opdu.dropped,
                proto_block_times=dict(opdu.proto_block_times),
                app_block_times=dict(opdu.app_block_times),
                sink_buffered=opdu.sink_buffered,
            )
        )

    # ------------------------------------------------------------------
    # Orch.Delayed (section 6.3.3)
    # ------------------------------------------------------------------

    def _handle_delayed_cmd(self, opdu: DelayedCmdOPDU) -> None:
        self.sim.spawn(
            self._run_delayed(opdu), name=f"llo-delayed:{opdu.vc_id}"
        )

    def _run_delayed(self, opdu: DelayedCmdOPDU):
        endpoint = self.entity.endpoint_for(opdu.vc_id)
        reply = yield from self._indicate(
            endpoint,
            DelayedIndication(
                orch_session_id=opdu.session_id,
                vc_id=opdu.vc_id,
                source_or_sink=opdu.source_or_sink,
                interval_length=opdu.interval_length,
                osdus_behind=opdu.osdus_behind,
            ),
        )
        reply_opdu = ReplyOPDU(
            session_id=opdu.session_id,
            request_id=opdu.request_id,
            origin=self.node_name,
            ok=reply.accept,
            reason=reply.reason,
            node=self.node_name,
        )
        if opdu.origin == self.node_name:
            self._handle_delayed_reply(reply_opdu)
        else:
            self._send_opdu(opdu.origin, reply_opdu)

    def _handle_delayed_reply(self, opdu: ReplyOPDU) -> None:
        done = self._delayed_pending.get(opdu.request_id)
        if done is not None and not done.is_set:
            done.set(OrchReply(opdu.ok, opdu.reason))

    # ------------------------------------------------------------------
    # Orch.Event (section 6.3.4)
    # ------------------------------------------------------------------

    def _handle_event_register(self, opdu: EventRegisterOPDU) -> None:
        session = self.sessions.get(opdu.session_id)
        if session is None:
            return
        patterns = session.event_patterns.setdefault(opdu.vc_id, set())
        patterns.add(opdu.event_pattern)
        recv_vc = self.entity.recv_vcs.get(opdu.vc_id)
        if recv_vc is None:
            return
        key = (opdu.session_id, opdu.vc_id)
        if key not in self._event_matchers:
            self._event_matchers.add(key)
            recv_vc.add_release_observer(
                lambda osdu, vc_id=opdu.vc_id, sid=opdu.session_id:
                self._match_event(sid, vc_id, osdu)
            )

    def _match_event(self, session_id: str, vc_id: str, osdu) -> None:
        session = self.sessions.get(session_id)
        if session is None:
            return
        patterns = session.event_patterns.get(vc_id, set())
        if osdu.event is None or osdu.event not in patterns:
            return
        notify = EventNotifyOPDU(
            session_id=session_id,
            request_id=next(self._req_ids),
            origin=self.node_name,
            vc_id=vc_id,
            event_pattern=osdu.event,
            osdu_seq=osdu.seq,
        )
        if session.origin == self.node_name:
            self._handle_event_notify(notify)
        else:
            self._send_opdu(session.origin, notify)

    def _handle_event_notify(self, opdu: EventNotifyOPDU) -> None:
        queue = self._agent_queues.get(opdu.session_id)
        if queue is None:
            return
        queue.put_nowait(
            OrchEventIndication(
                orch_session_id=opdu.session_id,
                vc_id=opdu.vc_id,
                event_pattern=opdu.event_pattern,
                osdu_seq=opdu.osdu_seq,
                matched_at=self.sim.now,
            )
        )

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _send_opdu(self, node: str, opdu: ControlOPDU) -> None:
        self.network.send(
            Packet(
                src=self.node_name,
                dst=node,
                payload=opdu,
                size_bits=OPDU_WIRE_BYTES * 8,
                priority=Priority.CONTROL,
            )
        )


def build_llos(
    sim: Simulator,
    network: Network,
    entities: Dict[str, TransportEntity],
    **kwargs,
) -> Dict[str, LLOInstance]:
    """Instantiate one LLO per host carrying a transport entity."""
    return {
        name: LLOInstance(sim, network, entity, **kwargs)
        for name, entity in entities.items()
    }
