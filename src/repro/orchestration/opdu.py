"""Orchestrator PDUs exchanged between LLO instances.

"The multiple LLO instances interact with each other via Orchestrator
PDUs (OPDUs), on out of band connections.  These connections must have
guaranteed bandwidth" (paper section 5) -- so every OPDU travels at
:class:`~repro.netsim.packet.Priority.CONTROL`, which our links serve
ahead of all data traffic.

(The per-OSDU OPDU fields -- sequence number and event field -- ride
*inside* data TPDUs and are defined in :mod:`repro.transport.osdu`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Nominal wire size of one control OPDU, bytes.
OPDU_WIRE_BYTES = 96


@dataclass
class ControlOPDU:
    """Base class for LLO-to-LLO control messages."""

    handler_key = "opdu"

    session_id: str = ""
    request_id: int = 0
    origin: str = ""  # node name of the requesting LLO


@dataclass
class SessionRequestOPDU(ControlOPDU):
    """Orch.request propagated to each involved source/sink node.

    ``vcs`` maps vc-id to ``(source_node, sink_node)``.
    """

    vcs: Dict[str, Tuple[str, str]] = field(default_factory=dict)


@dataclass
class SessionReleaseOPDU(ControlOPDU):
    reason: str = ""


@dataclass
class GroupCmdOPDU(ControlOPDU):
    """Prime / Start / Stop / Add / Remove command for local endpoints."""

    kind: str = ""  # "prime" | "start" | "stop" | "add" | "remove"
    vc_ids: List[str] = field(default_factory=list)
    #: For add: source/sink of VCs newly joining the session.
    vcs: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: For start: leave sink gates metered (regulation takes over the
    #: release schedule immediately) instead of fully open.
    metered: bool = False


@dataclass
class ReplyOPDU(ControlOPDU):
    """Positive/negative reply to a session or group command."""

    ok: bool = True
    reason: str = ""
    node: str = ""


@dataclass
class RegulateCmdOPDU(ControlOPDU):
    """Orch.Regulate.request relayed to the sink LLO of one VC."""

    vc_id: str = ""
    target_osdu: int = 0
    max_drop: int = 0
    interval_length: float = 0.0
    interval_id: int = 0


@dataclass
class RegulateReportOPDU(ControlOPDU):
    """The sink LLO's end-of-interval report toward the agent's LLO."""

    vc_id: str = ""
    interval_id: int = 0
    osdu_seq: int = -1
    dropped: int = 0
    proto_block_times: Dict[str, float] = field(default_factory=dict)
    app_block_times: Dict[str, float] = field(default_factory=dict)
    sink_buffered: int = 0


@dataclass
class DropRequestOPDU(ControlOPDU):
    """Sink LLO -> source LLO: discard ``count`` queued OSDUs."""

    vc_id: str = ""
    count: int = 1


@dataclass
class StatsQueryOPDU(ControlOPDU):
    """Sink LLO -> source LLO: report blocking stats for the interval."""

    vc_id: str = ""
    interval_id: int = 0


@dataclass
class StatsReplyOPDU(ControlOPDU):
    vc_id: str = ""
    interval_id: int = 0
    app_block: float = 0.0
    proto_block: float = 0.0
    dropped: int = 0


@dataclass
class DelayedCmdOPDU(ControlOPDU):
    """Orch.Delayed toward the application thread causing a delay."""

    vc_id: str = ""
    source_or_sink: str = ""
    interval_length: float = 0.0
    osdus_behind: int = 0


@dataclass
class NudgeCmdOPDU(ControlOPDU):
    """Agent LLO -> source LLO: re-open the send window after an outage.

    A network fault can strand a rate-based VC with zero send credits
    (every in-flight TPDU lost, every refund waiting on an arrival that
    cannot happen).  The source entity breaks the deadlock by probing
    one credit per interval until grants resume
    (:meth:`~repro.transport.entity.TransportEntity.begin_outage_probe`).
    """

    vc_id: str = ""


@dataclass
class EventRegisterOPDU(ControlOPDU):
    """Orch.Event.request relayed to the sink LLO of one VC."""

    vc_id: str = ""
    event_pattern: int = 0


@dataclass
class EventNotifyOPDU(ControlOPDU):
    """Sink LLO -> agent LLO: a registered event pattern matched."""

    vc_id: str = ""
    event_pattern: int = 0
    osdu_seq: int = -1
