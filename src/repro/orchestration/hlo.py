"""The High Level Orchestrator (platform level).

"The HLO is responsible for finding the physical locations of the
connections underlying the given Stream interfaces, and thus choosing
the node from which the lower levels of orchestration will be
co-ordinated.  The node selected, known as the orchestrating node, is
that common to the greatest number of VCs ... Having identified the
orchestrating node, the HLO creates an ADT interface onto the selected
HLO agent.  This is passed back to the initiating application, and
enables the application to control the on-going orchestration session
via invocation" (paper section 5, Figure 5).

Our initial implementation reproduces the paper's restriction that the
group must share a common node (where the master clock lives); passing
``require_common_node=False`` lifts it using the NTP-like clock
synchronisation of :mod:`repro.orchestration.clock_sync`, the
extension the paper's footnote anticipates.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.scheduler import Simulator
from repro.orchestration.clock_sync import NTPLikeSynchronizer
from repro.orchestration.hlo_agent import HLOAgent, StreamSpec
from repro.orchestration.llo import LLOInstance
from repro.orchestration.policy import OrchestrationPolicy


class OrchestrationError(Exception):
    """Raised when a group cannot be orchestrated."""


def select_orchestrating_node(
    endpoints: Iterable[Tuple[str, str]], require_common: bool = True
) -> str:
    """Pick the orchestrating node for a set of ``(source, sink)`` pairs.

    Returns the node "common to the greatest number of VCs".  With
    ``require_common`` (the paper's initial restriction) the winner
    must appear in *every* VC, else :class:`OrchestrationError` is
    raised.  Sinks win ties (regulation is cheapest sink-side).
    """
    pairs = list(endpoints)
    if not pairs:
        raise OrchestrationError("empty orchestration group")
    counts: Counter[str] = Counter()
    sink_counts: Counter[str] = Counter()
    for src, sink in pairs:
        nodes = {src, sink}  # a loopback VC counts its node once
        for node in nodes:
            counts[node] += 1
        sink_counts[sink] += 1
    best = max(counts, key=lambda n: (counts[n], sink_counts[n], n))
    if require_common and counts[best] < len(pairs):
        raise OrchestrationError(
            f"no node is common to all {len(pairs)} VCs (best: {best!r} "
            f"on {counts[best]})"
        )
    return best


_session_ids = itertools.count(1)


class OrchestrationSession:
    """The ADT interface handed back to the initiating application."""

    def __init__(self, hlo: "HighLevelOrchestrator", agent: HLOAgent,
                 synchronizers: List[NTPLikeSynchronizer]):
        self.hlo = hlo
        self.agent = agent
        self.synchronizers = synchronizers

    @property
    def session_id(self) -> str:
        return self.agent.session_id

    @property
    def orchestrating_node(self) -> str:
        return self.agent.llo.node_name

    # The operations the application invokes on the session interface.

    def prime(self):
        """Coroutine: Orch.Prime the group."""
        return (yield from self.agent.prime())

    def start(self, regulate: bool = True):
        """Coroutine: Orch.Start the group (atomic, near-instantaneous)."""
        return (yield from self.agent.start(regulate=regulate))

    def stop(self):
        """Coroutine: Orch.Stop the group."""
        return (yield from self.agent.stop())

    def add(self, spec: StreamSpec):
        return (yield from self.agent.add_stream(spec))

    def remove(self, vc_id: str):
        return (yield from self.agent.remove_stream(vc_id))

    def register_event(self, vc_id: str, pattern: int, handler) -> None:
        self.agent.register_event(vc_id, pattern, handler)

    def release(self, reason: str = "released") -> None:
        for sync in self.synchronizers:
            sync.stop()
        self.agent.release(reason)

    # Status / instrumentation.

    def skew(self) -> float:
        return self.agent.current_skew()

    def max_skew(self, since: float = 0.0) -> float:
        return self.agent.max_skew(since)

    def reports(self):
        return self.agent.reports

    @property
    def outage_events(self):
        """``(sim_time, vc_id)`` pairs for each declared stream outage."""
        return self.agent.outage_events

    @property
    def recovery_events(self):
        """``(sim_time, vc_id)`` pairs for each post-outage recovery."""
        return self.agent.recovery_events


class HighLevelOrchestrator:
    """Creates orchestration sessions over a set of LLO instances."""

    def __init__(
        self,
        sim: Simulator,
        llos: Dict[str, LLOInstance],
        clock_sync_period: float = 1.0,
    ):
        self.sim = sim
        self.llos = llos
        self.clock_sync_period = clock_sync_period
        self.sessions: Dict[str, OrchestrationSession] = {}

    def orchestrate(
        self,
        streams: List[StreamSpec],
        policy: Optional[OrchestrationPolicy] = None,
        require_common_node: bool = True,
        session_id: Optional[str] = None,
    ):
        """Coroutine: build, place and establish an orchestrated group.

        Returns the :class:`OrchestrationSession` ADT interface, or
        raises :class:`OrchestrationError` when the group is rejected.
        When ``require_common_node`` is False and the group has no
        common node, NTP-like synchronizers are started from every
        non-orchestrating endpoint node toward the orchestrating node's
        master clock (the footnote extension).
        """
        if not streams:
            raise OrchestrationError("empty orchestration group")
        endpoints = [(s.source_node, s.sink_node) for s in streams]
        node = select_orchestrating_node(
            endpoints, require_common=require_common_node
        )
        if node not in self.llos:
            raise OrchestrationError(f"no LLO instance on {node!r}")
        llo = self.llos[node]
        session_id = session_id or f"orch-{next(_session_ids)}"
        agent = HLOAgent(self.sim, llo, session_id, streams, policy)
        synchronizers: List[NTPLikeSynchronizer] = []
        if not require_common_node:
            other_nodes = {n for pair in endpoints for n in pair} - {node}
            for other in sorted(other_nodes):
                sync = NTPLikeSynchronizer(
                    self.sim,
                    llo.network,
                    master=node,
                    slave=other,
                    period=self.clock_sync_period,
                )
                sync.start()
                synchronizers.append(sync)
        reply = yield from agent.establish()
        if not reply.accept:
            for sync in synchronizers:
                sync.stop()
            raise OrchestrationError(f"orchestration rejected: {reply.reason}")
        session = OrchestrationSession(self, agent, synchronizers)
        self.sessions[session_id] = session
        return session


def make_default_renegotiator(entities, records_by_vc, factor: float = 1.25):
    """Build an ``on_renegotiate`` hook that raises throughput by ``factor``.

    ``records_by_vc`` maps vc_id to the original
    :class:`~repro.transport.primitives.TConnectRequest`, which supplies
    the addresses the T-Renegotiate.request needs.  Used by examples and
    benchmarks; real applications install their own policy.
    """
    from repro.transport.primitives import TRenegotiateRequest

    def on_renegotiate(vc_id: str, behind_seconds: float) -> None:
        request = records_by_vc.get(vc_id)
        if request is None:
            return
        entity = entities.get(request.src.node)
        if entity is None or vc_id not in entity.send_vcs:
            return
        current = entity.send_vcs[vc_id].contract
        new_qos = request.qos.with_throughput(
            current.throughput_bps * factor, current.throughput_bps
        )
        entity.request(
            TRenegotiateRequest(
                initiator=request.src,
                src=request.src,
                dst=request.dst,
                new_qos=new_qos,
                vc_id=vc_id,
            )
        )

    return on_renegotiate
