"""Connectionless (datagram) transport service.

Paper section 4 assumes "the more traditional constituents of a
complete transport system such as TSAP allocation, datagram services
and priority mechanisms ... will be available in the standard protocol
matrix that we have proposed".  This module supplies the datagram
constituent: an unconfirmed, unsequenced ``T-Unitdata`` service used by
management-plane odds and ends (and available to applications that
want fire-and-forget messaging beside their CM streams).

Semantics are the classical CLTS ones: no connection, no ordering or
delivery guarantee, at-most-once per transmission; a priority may be
requested, mapping straight onto the link scheduling bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.netsim.packet import Packet, Priority
from repro.netsim.topology import Network
from repro.sim.scheduler import Simulator
from repro.transport.addresses import TransportAddress

#: Wire overhead of a unitdata TPDU header, bytes.
UNITDATA_HEADER_BYTES = 16


@dataclass
class UnitdataTPDU:
    """UD: one connectionless transport PDU."""

    handler_key = "unitdata"

    src: TransportAddress = None  # type: ignore[assignment]
    dst: TransportAddress = None  # type: ignore[assignment]
    payload: Any = None
    size_bytes: int = 0


@dataclass(frozen=True)
class TUnitdataIndication:
    """Delivered to the listener bound at the destination TSAP."""

    src: TransportAddress
    dst: TransportAddress
    payload: Any
    size_bytes: int


class DatagramService:
    """Per-node T-Unitdata provider.

    Listeners register a callback per TSAP; senders call
    :meth:`unitdata_request` and get nothing back (unconfirmed
    service).
    """

    def __init__(self, sim: Simulator, network: Network, node_name: str):
        self.sim = sim
        self.network = network
        self.node_name = node_name
        self.host = network.host(node_name)
        self.host.register_handler("unitdata", self._on_packet)
        self._listeners: Dict[int, Callable[[TUnitdataIndication], None]] = {}
        self.sent = 0
        self.delivered = 0
        self.dropped_no_listener = 0

    def listen(
        self, tsap: int, handler: Callable[[TUnitdataIndication], None]
    ) -> None:
        """Attach ``handler`` for datagrams addressed to ``tsap``."""
        if tsap in self._listeners:
            raise ValueError(
                f"datagram listener already bound at {self.node_name}:{tsap}"
            )
        self._listeners[tsap] = handler

    def unlisten(self, tsap: int) -> None:
        self._listeners.pop(tsap, None)

    def unitdata_request(
        self,
        src_tsap: int,
        dst: TransportAddress,
        payload: Any,
        size_bytes: int = 64,
        priority: Priority = Priority.BEST_EFFORT,
    ) -> None:
        """T-Unitdata.request: fire-and-forget one datagram."""
        if size_bytes <= 0:
            raise ValueError(f"datagram size must be positive, got {size_bytes}")
        self.sent += 1
        tpdu = UnitdataTPDU(
            src=TransportAddress(self.node_name, src_tsap),
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
        )
        self.network.send(
            Packet(
                src=self.node_name,
                dst=dst.node,
                payload=tpdu,
                size_bits=(size_bytes + UNITDATA_HEADER_BYTES) * 8,
                priority=priority,
            )
        )

    def _on_packet(self, packet: Packet) -> None:
        tpdu = packet.payload
        handler = self._listeners.get(tpdu.dst.tsap)
        if handler is None:
            self.dropped_no_listener += 1
            return
        self.delivered += 1
        handler(
            TUnitdataIndication(
                src=tpdu.src,
                dst=tpdu.dst,
                payload=tpdu.payload,
                size_bytes=tpdu.size_bytes,
            )
        )


def build_datagram_services(
    sim: Simulator, network: Network
) -> Dict[str, DatagramService]:
    """One datagram service per host."""
    return {
        host.name: DatagramService(sim, network, host.name)
        for host in network.hosts()
    }
