"""Transport addressing.

"The addresses contain a network address to identify the end-system,
and a TSAP to identify a unique endpoint within the addressed
end-system" (paper section 4.1.1).  Connection primitives carry *three*
such addresses -- initiator, source and destination -- to support the
remote-connect facility of section 3.5.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class TransportAddress:
    """A (network address, TSAP) pair.

    Attributes:
        node: end-system (host) name -- the network address.
        tsap: transport service access point number, unique within the
            end-system.
    """

    node: str
    tsap: int

    def __post_init__(self) -> None:
        if self.tsap < 0:
            raise ValueError(f"TSAP must be non-negative, got {self.tsap}")
        if not self.node:
            raise ValueError("node name must be non-empty")

    def __str__(self) -> str:
        return f"{self.node}:{self.tsap}"
