"""Shared circular buffers for continuous-media data transfer.

Paper section 3.7 rejects per-unit ``send()``/``recv()`` calls in
favour of "shared circular buffers with access contention between
separate application and protocol threads controlled by semaphores",
because:

- data location is implicit in the buffer pointers and no copying is
  involved;
- with compatible rates, no explicit producer/consumer synchronisation
  takes place (the semaphores never block);
- the blocking time of both the application and the transport entity
  can be measured by monitoring the semaphores -- statistics consumed
  by the orchestration service (section 6.3.1.2).

:class:`SharedCircularBuffer` is the source-side buffer.  It supports
the source-side *drop* used by ``Orch.Regulate``: "all such discards
are performed at the source by incrementing the source shared buffer
pointer" (section 6.3.1.1) -- :meth:`drop_oldest_unsent`.

:class:`GatedReceiveBuffer` is the sink-side buffer.  Delivery to the
application passes through a credit gate so the LLO can hold back data
while priming, stop it instantly, and pace it toward a regulation
target (sections 6.2 and 6.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.obs.registry import SpanAccumulator
from repro.sim.scheduler import Event, SimulationError, Simulator, Waitable
from repro.sim.sync import TimedSemaphore
from repro.transport.osdu import OSDU

#: Conventional role labels for the blocking-time statistics.
ROLE_APPLICATION = "application"
ROLE_PROTOCOL = "protocol"


class SharedCircularBuffer:
    """Source-side circular buffer between application and protocol.

    The application *puts* OSDUs (blocking while full); the protocol
    sender *gets* them (blocking while empty).  Both directions use
    :class:`~repro.sim.sync.TimedSemaphore` so blocked time per role is
    accounted.
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity <= 0:
            raise SimulationError(f"buffer capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._slots: Deque[OSDU] = deque()
        self._space = TimedSemaphore(sim, capacity)
        self._items = TimedSemaphore(sim, 0)
        self.put_count = 0
        self.get_count = 0
        self.dropped_at_source = 0
        self.overwrites = 0

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._slots)

    def put(self, osdu: OSDU, role: str = ROLE_APPLICATION) -> Generator:
        """Coroutine: write one OSDU, blocking while the buffer is full."""
        yield self._space.acquire(role)
        self._commit_put(osdu)

    def try_put(self, osdu: OSDU) -> bool:
        """Non-blocking write; False when the buffer is full."""
        if not self._space.try_acquire():
            return False
        self._commit_put(osdu)
        return True

    def _commit_put(self, osdu: OSDU) -> None:
        self._slots.append(osdu)
        self.put_count += 1
        self._items.release()

    def get(self, role: str = ROLE_PROTOCOL) -> Generator:
        """Coroutine: read the oldest OSDU, blocking while empty."""
        yield self._items.acquire(role)
        osdu = self._slots.popleft()
        self.get_count += 1
        self._space.release()
        return osdu

    def try_get(self) -> Optional[OSDU]:
        if not self._items.try_acquire():
            return None
        osdu = self._slots.popleft()
        self.get_count += 1
        self._space.release()
        return osdu

    def drop_oldest_unsent(self) -> Optional[OSDU]:
        """Discard the oldest queued OSDU (Orch.Regulate source drop).

        Frees a slot immediately, so "the source application thread
        [may] immediately insert another OSDU".  Returns the discarded
        OSDU, or None when nothing was queued.
        """
        if not self._items.try_acquire():
            return None
        osdu = self._slots.popleft()
        self.dropped_at_source += 1
        self._space.release()
        return osdu

    def flush(self) -> int:
        """Discard everything queued (Orch.Prime buffer clean-out)."""
        flushed = 0
        while self.drop_oldest_unsent() is not None:
            flushed += 1
        # Flushes are administrative, not regulation drops.
        self.dropped_at_source -= flushed
        self.overwrites += flushed
        return flushed

    def retract(self, osdu: OSDU) -> bool:
        """Remove a specific just-committed OSDU (stale-write retraction).

        Used when a writer that was blocked in :meth:`put` across a
        flush commits a unit from before the flush.  Fails (False) when
        the unit is gone or its item grant has already been handed to a
        waiting consumer.
        """
        if osdu not in self._slots:
            return False
        if not self._items.try_acquire():
            return False
        self._slots.remove(osdu)
        self.overwrites += 1
        self._space.release()
        return True

    def blocked_time(self, role: str) -> float:
        """Seconds ``role`` has spent blocked on this buffer."""
        return self._space.blocked_time(role) + self._items.blocked_time(role)

    def reset_blocking_stats(self) -> None:
        self._space.reset_stats()
        self._items.reset_stats()


class GatedReceiveBuffer:
    """Sink-side buffer with an LLO-controlled delivery gate.

    The protocol *deposits* arriving OSDUs (never blocking -- overflow
    is dropped and counted, since a CM receiver cannot push back on the
    wire instantaneously).  The application *takes* OSDUs, which blocks
    while the buffer is empty **or the gate withholds credit**.

    Gate states:

    - *open* (default): credits are infinite; delivery is immediate.
    - *closed*: no delivery at all (``Orch.Prime`` filling phase,
      ``Orch.Stop``).
    - *metered*: the LLO grants explicit per-OSDU credits to pace
      delivery toward a regulation target.
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity <= 0:
            raise SimulationError(f"buffer capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._slots: Deque[OSDU] = deque()
        self._items = TimedSemaphore(sim, 0)
        self._credits = TimedSemaphore(sim, 0)
        self._metered = False
        self._open = True
        self.deposited = 0
        self.overflow_drops = 0
        self.delivered = 0
        # Full/congested occupancy accounting: open-interval spans in a
        # windowed accumulator (repro.obs), so in-progress intervals are
        # included when the orchestrator samples mid-interval.
        self._occupancy = SpanAccumulator("recvbuf.occupancy", self._now)
        self._full_token: Optional[int] = None
        self._congested_token: Optional[int] = None
        self.last_delivered_seq: Optional[int] = None
        self._full_event: Optional[Event] = None
        #: Invoked after every successful application take; the receive
        #: VC uses it to return flow-control credits to the source.
        self.on_take: Optional[Any] = None

    def _now(self) -> float:
        return self.sim.now

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    @property
    def congested(self) -> bool:
        """Effectively full: within one slot of capacity."""
        return len(self._slots) >= max(self.capacity - 1, 1)

    # -- protocol side ---------------------------------------------------

    def deposit(self, osdu: OSDU) -> bool:
        """Protocol-side insert; False (and a drop) on overflow."""
        if self.full:
            self.overflow_drops += 1
            return False
        self._slots.append(osdu)
        self.deposited += 1
        self._items.release()
        if self.congested and self._congested_token is None:
            self._congested_token = self._occupancy.begin("congested")
        if self.full:
            if self._full_token is None:
                self._full_token = self._occupancy.begin("full")
            if self._full_event is not None and not self._full_event.is_set:
                self._full_event.set(None)
        return True

    def when_full(self) -> Waitable:
        """Waitable that fires when the buffer reaches capacity.

        Used by the LLO's priming logic: "the sink LLOs allow the
        receiver's communications buffers to fill ... When the receive
        buffers are eventually full, each sink LLO notifies the LLO"
        (section 6.2.1).
        """
        ev = Event(self.sim)
        if self.full:
            ev.set(None)
        else:
            self._full_event = ev
        return ev

    # -- gate control (LLO) ------------------------------------------------

    def close_gate(self) -> None:
        """Withhold all delivery (prime / stop)."""
        self._open = False
        self._metered = False
        self._drain_credits()

    def open_gate(self) -> None:
        """Unrestricted delivery."""
        self._open = True
        self._metered = False
        self._drain_credits()
        self._wake_credit_waiters()

    def meter(self) -> None:
        """Switch to explicit credit pacing (regulation)."""
        self._open = False
        self._metered = True
        self._drain_credits()

    def grant(self, n: int = 1) -> None:
        """Grant ``n`` delivery credits while metered.

        Grants against a non-metered gate are ignored: a regulation
        interval may still be draining when Orch.Stop closes the gate,
        and its late grants must not leak through.
        """
        if not self._metered:
            return
        for _ in range(n):
            self._credits.release()

    @property
    def gate_state(self) -> str:
        if self._open:
            return "open"
        return "metered" if self._metered else "closed"

    def _drain_credits(self) -> None:
        while self._credits.try_acquire():
            pass

    def _wake_credit_waiters(self) -> None:
        # Waiters parked on the credit semaphore while the gate was
        # closed/metered must be released when it opens.
        while self._credits.waiting > 0:
            self._credits.release()

    # -- application side --------------------------------------------------

    def take(self, role: str = ROLE_APPLICATION) -> Generator:
        """Coroutine: deliver the next OSDU to the application.

        Blocks while no item is available or the gate withholds credit.
        Credit is consumed *before* the item wait so that a closed gate
        blocks even when data is sitting in the buffer.  When the gate
        is open no credit is needed -- but if the gate closes while the
        taker is parked on the item semaphore, the item is handed back
        and the taker re-queues through the credit path (otherwise one
        delivery would leak past every gate closure).
        """
        while True:
            if not self._open:
                yield self._credits.acquire(role)
                yield self._items.acquire(role)
                break
            yield self._items.acquire(role)
            if self._open:
                break
            self._items.release()
        osdu = self._slots.popleft()
        self._note_not_full()
        self.delivered += 1
        if osdu.opdu is not None:
            self.last_delivered_seq = osdu.opdu.osdu_seq
        if self.on_take is not None:
            self.on_take()
        return osdu

    def try_take(self) -> Optional[OSDU]:
        """Non-blocking take, honouring the gate."""
        if not self._open:
            if not self._credits.try_acquire():
                return None
        if not self._items.try_acquire():
            if not self._open:
                self._credits.release()
            return None
        osdu = self._slots.popleft()
        self._note_not_full()
        self.delivered += 1
        if osdu.opdu is not None:
            self.last_delivered_seq = osdu.opdu.osdu_seq
        if self.on_take is not None:
            self.on_take()
        return osdu

    def flush(self) -> int:
        """Discard buffered OSDUs (seek: "without old data being left
        in the communications buffers", section 3.6)."""
        flushed = 0
        while self._items.try_acquire():
            self._slots.popleft()
            flushed += 1
        self._note_not_full()
        self._full_event = None
        return flushed

    def _note_not_full(self) -> None:
        if self._full_token is not None and not self.full:
            self._occupancy.end(self._full_token)
            self._full_token = None
        if self._congested_token is not None and not self.congested:
            self._occupancy.end(self._congested_token)
            self._congested_token = None

    def full_time(self) -> float:
        """Cumulative seconds the buffer has been completely full.

        Used as the sink-side *protocol* blocking statistic: a full
        receive buffer means the protocol could not hand data onward
        because the application was slow to consume (section 6.3.1.2).
        Includes a still-open full interval up to now.
        """
        return self._occupancy.total("full")

    def congested_time(self) -> float:
        """Cumulative seconds the buffer sat effectively full.

        The sink-side congestion statistic: a persistently near-full
        receive buffer means the application is the bottleneck.
        Includes a still-open congested interval up to now.
        """
        return self._occupancy.total("congested")

    def blocked_time(self, role: str) -> float:
        return self._items.blocked_time(role) + self._credits.blocked_time(role)

    def reset_blocking_stats(self) -> None:
        self._items.reset_stats()
        self._credits.reset_stats()
