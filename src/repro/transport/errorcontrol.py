"""Receiver-side error control (paper section 3.4 class-of-service options).

Continuous media cannot wait indefinitely for retransmissions, so the
correction machinery is *time-bounded*: a sequence gap triggers an
immediate NACK (selective retransmission request); if the hole is not
filled within ``gap_timeout`` the receiver skips past it, counts the
units as lost, and carries on.  This keeps the isochronous delivery
commitment while still recovering most losses -- the standard design
point for CM transports of the period (e.g. the cited Wolfinger/Moran
service).

:class:`ReorderBuffer` implements the in-order delivery line:
out-of-order arrivals are stashed, in-order prefixes are released.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.scheduler import Simulator, TimerHandle
from repro.transport.osdu import OSDU

#: (osdu, was_recovered) pairs released in order; a ``None`` osdu marks
#: a unit finally declared lost (the position is skipped).
Release = Tuple[Optional[OSDU], int]


class ReorderBuffer:
    """In-order release line with NACK-based recovery and bounded skips.

    Args:
        sim: simulator (for the skip timers).
        correction_enabled: when False, gaps are never NACKed or waited
            for -- arrivals past a gap immediately advance the line and
            missing units count as lost (pure detection).
        gap_timeout: how long to hold delivery waiting for a
            retransmission before skipping (seconds).
        nack: callback ``nack(missing_seqs)`` requesting retransmission.
        nack_retries: how many times an unfilled gap is re-NACKed when
            the gap timer fires before the receiver gives up and skips
            (NACKs and retransmissions can themselves be lost).
        max_stash: bound on out-of-order stash size; beyond it the
            oldest gap is force-skipped (protects memory under heavy
            reordering).
        reliable: never skip -- out-of-order arrivals are stashed and
            the line waits indefinitely for retransmission.  This is
            the window-profile (go-back-N + cumulative ACK) receiver,
            whose sender retransmits on its own timer.
    """

    def __init__(
        self,
        sim: Simulator,
        correction_enabled: bool,
        gap_timeout: float = 0.05,
        nack: Optional[Callable[[List[int]], None]] = None,
        nack_retries: int = 2,
        max_stash: int = 256,
        reliable: bool = False,
        name: str = "vc",
    ):
        if gap_timeout <= 0:
            raise ValueError(f"gap timeout must be positive, got {gap_timeout}")
        if nack_retries < 0:
            raise ValueError(f"nack retries must be non-negative, got {nack_retries}")
        self.sim = sim
        self.name = name
        self._track = sys.intern(f"vc:{name}")
        self.correction_enabled = correction_enabled or reliable
        self.reliable = reliable
        self.gap_timeout = gap_timeout
        self.nack = nack
        self.nack_retries = nack_retries
        self.max_stash = max_stash
        self.next_expected = 0
        self._stash: Dict[int, OSDU] = {}
        # One persistent gap timer for the life of the buffer, re-armed
        # per gap instead of allocating a fresh scheduled call each time.
        self._skip_timer = TimerHandle(sim, self._on_skip)
        self._nacked: set[int] = set()
        self._nack_attempts: Dict[int, int] = {}
        self.lost_count = 0
        self.recovered_count = 0
        self.duplicate_count = 0
        self.on_release: Optional[Callable[[Optional[OSDU], int], None]] = None

    def on_arrival(self, seq: int, osdu: OSDU) -> List[Release]:
        """Process an arriving unit; returns the in-order releases.

        Each release is ``(osdu_or_None, seq)``; None marks a skipped
        (lost) position so the caller can count it.
        """
        if seq < self.next_expected or seq in self._stash:
            self.duplicate_count += 1
            return []
        if not self.correction_enabled:
            return self._release_without_correction(seq, osdu)
        releases: List[Release] = []
        if seq == self.next_expected:
            if seq in self._nacked:
                self._mark_recovered(seq)
            releases.append((osdu, seq))
            self.next_expected += 1
            releases.extend(self._drain_stash())
            self._rearm_or_cancel_timer()
        else:
            self._stash[seq] = osdu
            if seq in self._nacked:
                self._mark_recovered(seq)
            self._request_missing(seq)
            if not self.reliable and len(self._stash) > self.max_stash:
                releases.extend(self._skip_gap())
        self._emit(releases)
        return releases

    def _mark_recovered(self, seq: int) -> None:
        self.recovered_count += 1
        self._nacked.discard(seq)
        self._nack_attempts.pop(seq, None)
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "recovered", track=self._track, cat="recovery",
                args={"seq": seq},
            )

    def _release_without_correction(self, seq: int, osdu: OSDU) -> List[Release]:
        releases: List[Release] = []
        while self.next_expected < seq:
            self.lost_count += 1
            releases.append((None, self.next_expected))
            self.next_expected += 1
        releases.append((osdu, seq))
        self.next_expected += 1
        self._emit(releases)
        return releases

    def _drain_stash(self) -> List[Release]:
        releases: List[Release] = []
        while self.next_expected in self._stash:
            releases.append((self._stash.pop(self.next_expected), self.next_expected))
            self.next_expected += 1
        return releases

    def _request_missing(self, up_to_seq: int) -> None:
        missing = [
            s
            for s in range(self.next_expected, up_to_seq)
            if s not in self._stash and s not in self._nacked
        ]
        if missing:
            self._nacked.update(missing)
            for s in missing:
                self._nack_attempts[s] = 0
            if self.nack is not None:
                self.nack(missing)
        if not self._skip_timer.scheduled:
            self._skip_timer.reschedule_after(self.gap_timeout)

    def _on_skip(self) -> None:
        if not self._gap_open():
            return
        first_stashed = min(self._stash)
        gap = [
            s for s in range(self.next_expected, first_stashed)
            if s not in self._stash
        ]
        retryable = [
            s for s in gap
            if self.reliable or self._nack_attempts.get(s, 0) < self.nack_retries
        ]
        if retryable:
            # The NACK or its retransmission may have been lost: ask
            # again before giving up ("reliable" receivers ask forever;
            # the go-back-N sender also retransmits on its own timer).
            for s in retryable:
                self._nack_attempts[s] = self._nack_attempts.get(s, 0) + 1
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "nack.retry", track=self._track, cat="recovery",
                    args={"missing": list(retryable)},
                )
            if self.nack is not None and not self.reliable:
                self.nack(retryable)
            self._skip_timer.reschedule_after(self.gap_timeout)
            return
        releases = self._skip_gap()
        self._emit(releases)

    def _skip_gap(self) -> List[Release]:
        """Abandon the oldest gap: skip to the first stashed unit."""
        if not self._stash:
            return []
        first_stashed = min(self._stash)
        trace = self.sim.trace
        if trace.enabled and first_stashed > self.next_expected:
            trace.instant(
                "skip", track=self._track, cat="recovery",
                args={"from_seq": self.next_expected, "to_seq": first_stashed},
            )
        releases: List[Release] = []
        while self.next_expected < first_stashed:
            self.lost_count += 1
            self._nacked.discard(self.next_expected)
            self._nack_attempts.pop(self.next_expected, None)
            releases.append((None, self.next_expected))
            self.next_expected += 1
        releases.extend(self._drain_stash())
        self._rearm_or_cancel_timer()
        return releases

    def _gap_open(self) -> bool:
        return bool(self._stash)

    def _rearm_or_cancel_timer(self) -> None:
        if self._gap_open():
            self._skip_timer.reschedule_after(self.gap_timeout)
        else:
            self._skip_timer.cancel()

    def _emit(self, releases: List[Release]) -> None:
        if self.on_release is not None:
            for osdu, seq in releases:
                self.on_release(osdu, seq)

    def reset(self, next_expected: int = 0) -> None:
        """Forget all state (stop + seek, re-establishment)."""
        self.next_expected = next_expected
        self._stash.clear()
        self._nacked.clear()
        self._nack_attempts.clear()
        self._skip_timer.cancel()
