"""The continuous-media transport service (paper section 4).

Highlights, mapped to the paper:

- **Simplex VCs** (section 3.1): every connection is unidirectional,
  source to sink, with QoS negotiated for that direction only.
- **Extended QoS** (section 3.2): throughput, end-to-end delay, delay
  jitter, packet error rate and bit error rate, each expressed as
  preferred / acceptable tolerance levels and subject to full end-to-end
  option negotiation (:mod:`repro.transport.qos`).
- **Dynamic QoS control** (section 3.3, Table 3): in-service
  renegotiation via ``T-Renegotiate``; a refused renegotiation leaves the
  existing VC untouched.
- **Profiles and classes of service** (section 3.4): rate-based CM
  profile and window-based baseline; error control selectable as
  detection/indication, detection/correction, or both.
- **Remote connect** (section 3.5, Figures 2 and 3): three-address
  connection establishment where initiator, source and sink may all be
  distinct nodes.
- **Shared circular-buffer data transfer** (section 3.7): no per-OSDU
  system call, semaphore-mediated access, blocking-time statistics
  consumed by the orchestrator.
- **OSDU framing** (section 5): logical-data-unit boundaries preserved
  end to end, with the orchestrator's OPDU (sequence number + event
  field) carried alongside every OSDU.
"""

from repro.transport.addresses import TransportAddress
from repro.transport.qos import (
    QoSContract,
    QoSSpec,
    QoSViolation,
    Tolerance,
    UNCONSTRAINED,
)
from repro.transport.profiles import ClassOfService, Guarantee, ProtocolProfile
from repro.transport.osdu import OPDU, OSDU
from repro.transport.primitives import (
    TConnectConfirm,
    TConnectIndication,
    TConnectRequest,
    TConnectResponse,
    TDisconnectIndication,
    TDisconnectRequest,
    TQoSIndication,
    TRenegotiateConfirm,
    TRenegotiateIndication,
    TRenegotiateRequest,
    TRenegotiateResponse,
)
from repro.transport.buffers import GatedReceiveBuffer, SharedCircularBuffer
from repro.transport.entity import TransportEntity, TSAPBinding, VCEndpoint
from repro.transport.multicast import MulticastGroup, create_multicast
from repro.transport.service import TransportService, build_transport

__all__ = [
    "ClassOfService",
    "GatedReceiveBuffer",
    "Guarantee",
    "MulticastGroup",
    "OPDU",
    "OSDU",
    "ProtocolProfile",
    "QoSContract",
    "QoSSpec",
    "QoSViolation",
    "SharedCircularBuffer",
    "TConnectConfirm",
    "TConnectIndication",
    "TConnectRequest",
    "TConnectResponse",
    "TDisconnectIndication",
    "TDisconnectRequest",
    "TQoSIndication",
    "TRenegotiateConfirm",
    "TRenegotiateIndication",
    "TRenegotiateRequest",
    "TRenegotiateResponse",
    "Tolerance",
    "TransportAddress",
    "TransportEntity",
    "TransportService",
    "TSAPBinding",
    "UNCONSTRAINED",
    "VCEndpoint",
    "build_transport",
    "create_multicast",
]
