"""Transport protocol data units (wire messages between entities).

These are internal to the protocol; service users only ever see the
primitives of :mod:`repro.transport.primitives`.  All TPDUs share the
host handler key ``"tpdu"`` so a single
:class:`~repro.transport.entity.TransportEntity` per node receives them.

The remote-connect TPDUs implement Figure 3 of the paper: the
initiator's entity relays the T-Connect.request to the *source* entity,
which runs the conventional connect protocol toward the destination and
relays the outcome back to the initiator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, List, Optional

from repro.sim.pool import Freelist
from repro.transport.addresses import TransportAddress
from repro.transport.osdu import OSDU
from repro.transport.primitives import (
    TConnectRequest,
    TDisconnectRequest,
    TRenegotiateRequest,
)
from repro.transport.qos import QoSContract, QoSOffer, QoSSpec

#: Wire overhead of a data TPDU header (bytes): vc-id, sequence,
#: timestamps, checksum.
DATA_HEADER_BYTES = 32

#: Shared empty drop-notice list.  Used as the ``dropped_seqs`` of
#: every data TPDU that carries no notices (the overwhelmingly common
#: case) so the hot path allocates nothing.  MUST never be mutated;
#: receivers only iterate it.
_EMPTY_DROPS: List[int] = []
#: Nominal wire size of a control TPDU (bytes).
CONTROL_TPDU_BYTES = 64


@dataclass(slots=True)
class TPDU:
    """Base class: everything routed to the transport entity."""

    handler_key = "tpdu"


# -- connection establishment ------------------------------------------------


@dataclass(slots=True)
class ConnectRequestTPDU(TPDU):
    """CR: source entity -> destination entity."""

    request: TConnectRequest = None  # type: ignore[assignment]
    #: What the network could offer when the CR left the source; the
    #: destination clamps further.
    offer: QoSOffer = None  # type: ignore[assignment]


@dataclass(slots=True)
class ConnectConfirmTPDU(TPDU):
    """CC: destination entity -> source entity (call accepted)."""

    vc_id: str = ""
    contract: QoSContract = None  # type: ignore[assignment]
    responder_qos: Optional[QoSSpec] = None


@dataclass(slots=True)
class ConnectRejectTPDU(TPDU):
    """Destination refuses the call (maps to T-Disconnect.indication)."""

    vc_id: str = ""
    reason: str = ""


# -- remote connect (Figures 2 and 3) ----------------------------------------


@dataclass(slots=True)
class RemoteConnectTPDU(TPDU):
    """Initiator entity -> source entity: please establish this VC."""

    request: TConnectRequest = None  # type: ignore[assignment]


@dataclass(slots=True)
class RemoteOutcomeTPDU(TPDU):
    """Source entity -> initiator entity: final outcome of the call.

    "It is necessary that the transport service passes all management
    responses, such as connects or disconnects, to both the initiator
    and source addresses" (section 3.5).
    """

    vc_id: str = ""
    accepted: bool = False
    contract: Optional[QoSContract] = None
    reason: str = ""
    request: Optional[TConnectRequest] = None


@dataclass(slots=True)
class RemoteDisconnectTPDU(TPDU):
    """Initiator entity -> source/destination entity: release the VC."""

    request: TDisconnectRequest = None  # type: ignore[assignment]


# -- release ------------------------------------------------------------------


@dataclass(slots=True)
class DisconnectTPDU(TPDU):
    """DR: one end releases; the peer raises T-Disconnect.indication."""

    vc_id: str = ""
    initiator: Optional[TransportAddress] = None
    reason: str = ""


# -- renegotiation (Table 3) ---------------------------------------------------


@dataclass(slots=True)
class RenegotiateRequestTPDU(TPDU):
    """Source entity -> destination entity, carrying the new tolerances."""

    request: TRenegotiateRequest = None  # type: ignore[assignment]
    offer: QoSOffer = None  # type: ignore[assignment]


@dataclass(slots=True)
class RenegotiateConfirmTPDU(TPDU):
    vc_id: str = ""
    contract: QoSContract = None  # type: ignore[assignment]


@dataclass(slots=True)
class RenegotiateRejectTPDU(TPDU):
    vc_id: str = ""
    reason: str = ""


@dataclass(slots=True)
class RemoteRenegotiateTPDU(TPDU):
    """Initiator entity -> source entity (remote renegotiation)."""

    request: TRenegotiateRequest = None  # type: ignore[assignment]


@dataclass(slots=True)
class RemoteRenegotiateOutcomeTPDU(TPDU):
    vc_id: str = ""
    accepted: bool = False
    contract: Optional[QoSContract] = None
    reason: str = ""
    request: Optional[TRenegotiateRequest] = None


# -- data path ------------------------------------------------------------------


@dataclass(slots=True)
class DataTPDU(TPDU):
    """DT: one OSDU plus its OPDU fields.

    ``sent_at_sim`` is simulator (true) time, used by the omniscient
    QoS monitor; ``sent_at_local`` is the sender's drifting local
    clock, which is all a real receiver would have.

    Hot-path note: data TPDUs that nobody retains (no retransmit cache)
    are recycled through a freelist -- build them with :meth:`acquire`;
    the receiving entity returns them after the VC consumed the fields
    it keeps.  TPDUs parked in a sender's retransmit cache MUST be
    built with the plain constructor (never pooled), because the cached
    object and the in-flight object are the same reference.
    """

    vc_id: str = ""
    osdu: OSDU = None  # type: ignore[assignment]
    seq: int = 0
    sent_at_sim: float = 0.0
    sent_at_local: float = 0.0
    is_retransmission: bool = False
    #: Sequence numbers discarded at the source (regulation drops or
    #: seek flushes) since the previous data TPDU.  Piggybacked so the
    #: notices can never overtake in-flight data and the sink's release
    #: line skips them instead of counting loss.
    dropped_seqs: List[int] = field(default_factory=list)
    #: True when more data was queued behind this unit at the source.
    #: The sink's monitor only trusts throughput observations made
    #: while the source was backlogged -- otherwise low delivered
    #: throughput just means the application had nothing to send.
    backlogged: bool = False
    #: True while owned by the pooled data path; set only by
    #: :meth:`acquire`, cleared by :meth:`release`.
    _pooled: bool = field(default=False, repr=False, compare=False)

    _POOL: ClassVar[Freelist] = Freelist()

    @classmethod
    def acquire(
        cls,
        vc_id: str,
        osdu: OSDU,
        seq: int,
        sent_at_sim: float,
        sent_at_local: float,
        dropped_seqs: Optional[List[int]] = None,
        backlogged: bool = False,
    ) -> "DataTPDU":
        """A recycled (or fresh) data TPDU, marked for pool return.

        Only for TPDUs the sender does not retain; retransmissions come
        out of the retransmit cache and are never pooled.
        """
        tpdu = cls._POOL.get()
        drops = _EMPTY_DROPS if dropped_seqs is None else dropped_seqs
        if tpdu is None:
            return cls(vc_id, osdu, seq, sent_at_sim, sent_at_local,
                       False, drops, backlogged, _pooled=True)
        tpdu.vc_id = vc_id
        tpdu.osdu = osdu
        tpdu.seq = seq
        tpdu.sent_at_sim = sent_at_sim
        tpdu.sent_at_local = sent_at_local
        tpdu.is_retransmission = False
        tpdu.dropped_seqs = drops
        tpdu.backlogged = backlogged
        tpdu._pooled = True
        return tpdu

    @classmethod
    def release(cls, tpdu: "DataTPDU") -> None:
        """Return a pooled data TPDU; no-op for constructor-made ones."""
        if not tpdu._pooled:
            return
        tpdu._pooled = False
        tpdu.osdu = None
        tpdu.dropped_seqs = _EMPTY_DROPS
        cls._POOL.put(tpdu)


@dataclass(slots=True)
class CreditTPDU(TPDU):
    """Receiver -> sender: cumulative flow-control credit grant.

    ``credits`` is the *running total* of grants since the connection
    started, so a lost credit message is repaired by any later one.

    The credit loop is what lets ``Orch.Prime``/``Orch.Stop`` block the
    source through the protocol's own flow control (sections 6.2.1 and
    6.2.3): when the sink gate is closed the application stops
    consuming, credits stop flowing, and the sender stalls with the
    pipeline full.
    """

    vc_id: str = ""
    credits: int = 0
    _pooled: bool = field(default=False, repr=False, compare=False)

    _POOL: ClassVar[Freelist] = Freelist()

    @classmethod
    def acquire(cls, vc_id: str, credits: int) -> "CreditTPDU":
        """A recycled (or fresh) credit grant, marked for pool return."""
        tpdu = cls._POOL.get()
        if tpdu is None:
            return cls(vc_id, credits, _pooled=True)
        tpdu.vc_id = vc_id
        tpdu.credits = credits
        tpdu._pooled = True
        return tpdu

    @classmethod
    def release(cls, tpdu: "CreditTPDU") -> None:
        """Return a pooled credit TPDU; no-op for constructor-made ones."""
        if not tpdu._pooled:
            return
        tpdu._pooled = False
        cls._POOL.put(tpdu)


@dataclass(slots=True)
class NackTPDU(TPDU):
    """Receiver -> sender: selective retransmission request."""

    vc_id: str = ""
    missing: List[int] = field(default_factory=list)


@dataclass(slots=True)
class AckTPDU(TPDU):
    """Receiver -> sender: cumulative ACK (window profile only).

    ``advertised`` is the receiver's free buffer space in OSDUs -- the
    window advertisement every period window transport carried (TP4,
    TCP); without it a sender would overrun a gated receiver.
    """

    vc_id: str = ""
    cumulative_seq: int = 0
    advertised: int = 1 << 16
    _pooled: bool = field(default=False, repr=False, compare=False)

    _POOL: ClassVar[Freelist] = Freelist()

    @classmethod
    def acquire(cls, vc_id: str, cumulative_seq: int,
                advertised: int) -> "AckTPDU":
        """A recycled (or fresh) cumulative ACK, marked for pool return."""
        tpdu = cls._POOL.get()
        if tpdu is None:
            return cls(vc_id, cumulative_seq, advertised, _pooled=True)
        tpdu.vc_id = vc_id
        tpdu.cumulative_seq = cumulative_seq
        tpdu.advertised = advertised
        tpdu._pooled = True
        return tpdu

    @classmethod
    def release(cls, tpdu: "AckTPDU") -> None:
        """Return a pooled ACK TPDU; no-op for constructor-made ones."""
        if not tpdu._pooled:
            return
        tpdu._pooled = False
        cls._POOL.put(tpdu)


@dataclass(slots=True)
class QoSReportTPDU(TPDU):
    """Sink entity -> initiator entity: degradation report payload."""

    vc_id: str = ""
    indication: object = None
