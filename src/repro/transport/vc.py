"""Simplex virtual-circuit protocol machines.

:class:`SendVC` runs at the source: it drains the shared circular
buffer, paces transmission with the selected flow-control machine, and
serves retransmission requests.  :class:`RecvVC` runs at the sink: it
reorders/recovers arriving units, deposits them into the gated receive
buffer, returns credits, and feeds the QoS monitor.

Orchestration coupling (paper section 6.2.1: "a close implementation
relationship between the LLO and the transport service") is exposed as
narrow methods on these classes -- gate control, prime-full waiting,
source drops, buffer flushes, and blocking-time statistics -- which the
local LLO instance invokes.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional

from repro.netsim.packet import Packet, Priority
from repro.sim.scheduler import Process, Simulator
from repro.transport.addresses import TransportAddress
from repro.transport.buffers import (
    GatedReceiveBuffer,
    ROLE_APPLICATION,
    ROLE_PROTOCOL,
    SharedCircularBuffer,
)
from repro.transport.errorcontrol import ReorderBuffer
from repro.transport.flowcontrol import RateBasedFlowControl, WindowBasedFlowControl
from repro.transport.monitor import QoSMonitor
from repro.transport.osdu import OPDU, OSDU
from repro.transport.profiles import ClassOfService, Guarantee, ProtocolProfile
from repro.transport.qos import QoSContract
from repro.transport.tpdu import (
    AckTPDU,
    CreditTPDU,
    DATA_HEADER_BYTES,
    CONTROL_TPDU_BYTES,
    DataTPDU,
    NackTPDU,
)
from repro.sim.sync import TimedSemaphore

#: Default depth (in OSDUs) of source and sink buffers when the user
#: does not override it at connect time.
DEFAULT_BUFFER_OSDUS = 16
#: Retransmission cache depth at the source.
RETRANSMIT_CACHE = 256


def _data_priority(guarantee: Guarantee) -> Priority:
    if guarantee is Guarantee.BEST_EFFORT:
        return Priority.BEST_EFFORT
    return Priority.RESERVED


class SendVC:
    """Source-side protocol machine for one simplex VC."""

    def __init__(
        self,
        sim: Simulator,
        send_packet: Callable[[Packet], None],
        vc_id: str,
        local: TransportAddress,
        remote: TransportAddress,
        contract: QoSContract,
        profile: ProtocolProfile,
        cos: ClassOfService,
        buffer_osdus: int = DEFAULT_BUFFER_OSDUS,
        initial_credits: int = DEFAULT_BUFFER_OSDUS,
    ):
        self.sim = sim
        self._send_packet = send_packet
        self.vc_id = vc_id
        self.local = local
        self.remote = remote
        self.contract = contract
        self.profile = profile
        self.cos = cos
        self.buffer = SharedCircularBuffer(sim, buffer_osdus)
        self.open = True
        self._next_seq = 0
        #: Interned tracer track + per-packet constants, hoisted off
        #: the per-OSDU path.
        self._track = sys.intern(f"vc:{vc_id}")
        self._priority = _data_priority(cos.guarantee)
        #: Whether transmitted TPDUs are parked in the retransmit
        #: cache.  Cached TPDUs are aliased by in-flight packets, so
        #: only uncached sends may use the recycled-TPDU fast path.
        self._cache_sends = (cos.error_correction
                             or profile is ProtocolProfile.WINDOW_BASED)
        self._cache: Dict[int, DataTPDU] = {}
        self.sent_count = 0
        self.retransmit_count = 0
        self._pending_drop_notices: List[int] = []
        # Bumped by flush(): invalidates the unit the sender loop may
        # already hold, so no pre-seek data leaks out after a flush.
        self._epoch = 0
        if profile is ProtocolProfile.CM_RATE_BASED:
            self.flow: RateBasedFlowControl = RateBasedFlowControl(
                sim, contract.throughput_bps
            )
            self.window: Optional[WindowBasedFlowControl] = None
            self._credits = TimedSemaphore(sim, initial_credits)
            self._credits_seen = 0
        else:
            self.flow = None  # type: ignore[assignment]
            self.window = WindowBasedFlowControl(sim)
            self.window.on_retransmit = self._go_back_n
            self._credits = None  # type: ignore[assignment]
        self._proc: Process = sim.spawn(self._sender_loop(), name=f"send:{vc_id}")

    # -- user side ---------------------------------------------------------

    def alloc_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def write(self, osdu: OSDU):
        """Coroutine: application writes one OSDU into the shared buffer.

        The OSDU sequence number is assigned here -- at write time -- so
        that source-side regulation drops leave sequence gaps the sink
        can skip over (section 6.3.1.1).
        """
        if osdu.size_bytes > self.contract.max_osdu_bytes:
            raise ValueError(
                f"OSDU of {osdu.size_bytes} B exceeds negotiated maximum "
                f"{self.contract.max_osdu_bytes} B"
            )
        stamped = osdu.with_opdu(self.alloc_seq())
        if stamped.created_at is None:
            stamped.created_at = self.sim.now
        epoch = self._epoch
        yield from self.buffer.put(stamped, ROLE_APPLICATION)
        if epoch != self._epoch:
            # A flush (stop + seek) ran while this write was blocked:
            # the unit belongs to the pre-seek epoch and must not leak.
            if self.buffer.retract(stamped):
                self._pending_drop_notices.append(stamped.seq)

    def try_write(self, osdu: OSDU) -> bool:
        """Non-blocking write; False when the shared buffer is full."""
        if osdu.size_bytes > self.contract.max_osdu_bytes:
            raise ValueError(
                f"OSDU of {osdu.size_bytes} B exceeds negotiated maximum "
                f"{self.contract.max_osdu_bytes} B"
            )
        stamped = osdu.with_opdu(self.alloc_seq())
        if stamped.created_at is None:
            stamped.created_at = self.sim.now
        if self.buffer.try_put(stamped):
            return True
        # The slot was not taken: roll the sequence back so numbering
        # stays dense for callers that retry.
        self._next_seq -= 1
        return False

    # -- protocol loop -------------------------------------------------------

    def _sender_loop(self):
        while True:
            osdu = yield from self.buffer.get(ROLE_PROTOCOL)
            if not self.open:
                return
            epoch = self._epoch
            size_bits = (osdu.size_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES) * 8
            if self.profile is ProtocolProfile.CM_RATE_BASED:
                yield self._credits.acquire(ROLE_PROTOCOL)
                yield from self.flow.acquire_slot(int(size_bits))
            else:
                yield from self.window.acquire_slot(int(size_bits))
            if not self.open:
                return
            if epoch != self._epoch:
                # A flush ran while this unit was waiting for its send
                # slot: it is pre-seek data and must not leak out.
                self._pending_drop_notices.append(osdu.seq)
                if self.profile is ProtocolProfile.CM_RATE_BASED:
                    self._credits.release()
                continue
            self._transmit(osdu)

    def _transmit(self, osdu: OSDU) -> None:
        if self._pending_drop_notices:
            notices, self._pending_drop_notices = self._pending_drop_notices, []
        else:
            notices = None
        now = self.sim._now
        backlogged = len(self.buffer) > 0
        if self._cache_sends:
            # Cached for retransmission: the in-flight object and the
            # cache entry are the same reference, so it must never be
            # pooled (the receiver's release becomes a no-op).
            tpdu = DataTPDU(
                vc_id=self.vc_id,
                osdu=osdu,
                seq=osdu.seq,
                sent_at_sim=now,
                sent_at_local=now,
                backlogged=backlogged,
                dropped_seqs=notices if notices is not None else [],
            )
            self._cache[osdu.seq] = tpdu
            if len(self._cache) > RETRANSMIT_CACHE:
                self._cache.pop(min(self._cache))
        else:
            tpdu = DataTPDU.acquire(
                self.vc_id, osdu, osdu.seq, now, now,
                dropped_seqs=notices, backlogged=backlogged,
            )
        self.sent_count += 1
        self._send(tpdu, osdu.size_bytes)

    def _send(self, tpdu: DataTPDU, payload_bytes: int) -> None:
        size_bits = int((payload_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES) * 8)
        packet = Packet.acquire(
            self.local.node,
            self.remote.node,
            tpdu,
            size_bits,
            self._priority,
            self.vc_id,
        )
        trace = self.sim.trace
        if trace.packets:
            # Causal parent: TPDU -> netsim packet id (the auditor's
            # drill-down joins on packet_id end to end).
            trace.instant(
                "tpdu.tx", track=self._track, cat="causal",
                args={
                    "packet_id": packet.packet_id,
                    "vc": self.vc_id,
                    "seq": tpdu.seq,
                    "kind": "data",
                },
            )
        self._send_packet(packet)

    # -- feedback from the receiver -------------------------------------------

    def on_credit(self, cumulative_credits: int,
                  from_node: Optional[str] = None) -> None:
        """Apply a (cumulative) credit grant from the receiver.

        Credits are carried as a running total so that lost CreditTPDUs
        are repaired by any later one.  ``from_node`` identifies the
        granting receiver; a unicast VC has exactly one and ignores it.
        """
        if self._credits is None:
            return
        fresh = cumulative_credits - self._credits_seen
        if fresh <= 0:
            return
        self._credits_seen = cumulative_credits
        for _ in range(fresh):
            self._credits.release()

    def on_nack(self, missing: List[int],
                from_node: Optional[str] = None) -> None:
        """Selective retransmission (rate profile with correction)."""
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "nack.recv", track=self._track, cat="recovery",
                args={"missing": list(missing)},
            )
        for seq in missing:
            cached = self._cache.get(seq)
            if cached is None:
                continue
            retransmission = DataTPDU(
                vc_id=cached.vc_id,
                osdu=cached.osdu,
                seq=cached.seq,
                sent_at_sim=self.sim.now,
                sent_at_local=self.sim.now,
                is_retransmission=True,
            )
            self.retransmit_count += 1
            if trace.enabled:
                trace.instant(
                    "retransmit", track=self._track, cat="recovery",
                    args={"seq": seq},
                )
            self._send(retransmission, cached.osdu.size_bytes)

    def on_ack(self, cumulative_seq: int,
               advertised: Optional[int] = None) -> None:
        if self.window is None:
            return
        self.window.on_ack(cumulative_seq, advertised)
        for seq in [s for s in self._cache if s < cumulative_seq]:
            del self._cache[seq]

    def _go_back_n(self, base: int, next_seq: int) -> None:
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "go-back-n", track=self._track, cat="recovery",
                args={"base": base, "next_seq": next_seq},
            )
        for seq in range(base, next_seq):
            cached = self._cache.get(seq)
            if cached is None:
                continue
            self.retransmit_count += 1
            retransmission = DataTPDU(
                vc_id=cached.vc_id,
                osdu=cached.osdu,
                seq=cached.seq,
                sent_at_sim=self.sim.now,
                sent_at_local=self.sim.now,
                is_retransmission=True,
            )
            self._send(retransmission, cached.osdu.size_bytes)

    # -- outage recovery (source side) ------------------------------------------

    @property
    def credits_seen(self) -> int:
        """Cumulative credit total acknowledged from the sink.

        Monotonic while the credit loop is alive; the degradation
        machinery uses *progress* of this value as its path-recovered
        signal (0 for non-credit profiles).
        """
        if self._credits is None:
            return 0
        return self._credits_seen

    def probe_credit(self) -> None:
        """Release one out-of-band send credit (outage probing).

        A network outage can park the whole credit window: every
        in-flight unit is lost, its credit is only refunded once a
        *later* arrival exposes the gap at the sink, and the sender has
        no credit left to send that exposing unit -- a tail-loss
        deadlock.  The entity breaks it by releasing one probe credit
        per probe interval; the first unit through after recovery
        exposes the gap and the parked credits flow back.  Each probe
        inflates the window by at most one credit; the sink's
        overflow rule (failed deposits do not refund) bounds and
        re-absorbs the excess.
        """
        if self._credits is not None:
            self._credits.release()

    # -- orchestration hooks (source side) --------------------------------------

    def drop_oldest_unsent(self) -> Optional[int]:
        """Discard one queued OSDU; returns its sequence number.

        The sequence gap is announced to the sink piggybacked on the
        next data TPDU so it can never overtake in-flight data and is
        not mistaken for network loss (nor NACKed).
        """
        dropped = self.buffer.drop_oldest_unsent()
        if dropped is None:
            return None
        self._pending_drop_notices.append(dropped.seq)
        return dropped.seq

    def flush(self) -> int:
        """Clean out unsent data (prime after seek, section 6.2.1).

        Every discarded sequence number is announced in-band so the
        sink's release line skips it instead of counting network loss
        (which would also corrupt the credit accounting).
        """
        flushed = 0
        while True:
            dropped = self.buffer.drop_oldest_unsent()
            if dropped is None:
                break
            self._pending_drop_notices.append(dropped.seq)
            flushed += 1
        # Flushes are administrative, not regulation drops.
        self.buffer.dropped_at_source -= flushed
        self.buffer.overwrites += flushed
        self._epoch += 1
        return flushed

    def blocked_time(self, role: str) -> float:
        """Blocking time of ``role`` at the source.

        For the protocol role, only *data starvation* (waiting on the
        shared buffer for the application to produce) is counted:
        waiting for flow-control credits is downstream backpressure and
        must not be attributed to the source application (section
        6.3.1.2's fault attribution depends on this distinction).
        """
        if role == ROLE_PROTOCOL:
            return self.buffer.blocked_time(role)
        total = self.buffer.blocked_time(role)
        if self._credits is not None:
            total += self._credits.blocked_time(role)
        return total

    def backpressure_time(self) -> float:
        """Time the sender spent waiting for flow-control credits."""
        if self._credits is None:
            return 0.0
        return self._credits.blocked_time(ROLE_PROTOCOL)

    def reset_blocking_stats(self) -> None:
        self.buffer.reset_blocking_stats()
        if self._credits is not None:
            self._credits.reset_stats()

    # -- lifecycle ----------------------------------------------------------------

    def set_rate(self, rate_bps: float) -> None:
        if self.flow is not None:
            self.flow.set_rate(rate_bps)

    def close(self) -> None:
        self.open = False
        if self.window is not None:
            self.window.reset()
        self._proc.interrupt("closed")


class RecvVC:
    """Sink-side protocol machine for one simplex VC."""

    def __init__(
        self,
        sim: Simulator,
        send_packet: Callable[[Packet], None],
        vc_id: str,
        local: TransportAddress,
        remote: TransportAddress,
        contract: QoSContract,
        profile: ProtocolProfile,
        cos: ClassOfService,
        buffer_osdus: int = DEFAULT_BUFFER_OSDUS,
        monitor: Optional[QoSMonitor] = None,
        gap_timeout: float = 0.05,
    ):
        self.sim = sim
        self._send_packet = send_packet
        self.vc_id = vc_id
        self._track = sys.intern(f"vc:{vc_id}")
        self.local = local
        self.remote = remote
        self.contract = contract
        self.profile = profile
        self.cos = cos
        self.buffer = GatedReceiveBuffer(sim, buffer_osdus)
        self.buffer.on_take = self._on_app_take  # type: ignore[attr-defined]
        self.monitor = monitor
        self.open = True
        self.reorder = ReorderBuffer(
            sim,
            correction_enabled=cos.error_correction
            and profile is ProtocolProfile.CM_RATE_BASED,
            gap_timeout=gap_timeout,
            # The CM profile recovers by selective NACK; the window
            # profile is the classic baseline -- cumulative ACKs and the
            # sender's go-back-N timer only, no receiver-driven repair.
            nack=(
                self._send_nack
                if profile is ProtocolProfile.CM_RATE_BASED
                else None
            ),
            reliable=profile is ProtocolProfile.WINDOW_BASED,
            name=vc_id,
        )
        self.reorder.on_release = self._on_release
        self._skipped: set[int] = set()
        self.highest_released_seq: Optional[int] = None
        self.source_dropped_count = 0
        self.lost_count = 0
        self.corrupted_discards = 0
        self._credits_granted_total = 0
        self._credits_unsent = 0
        self._credit_batch = max(1, buffer_osdus // 4)
        self._delay_by_seq: Dict[int, tuple[float, bool, int, bool]] = {}
        #: Observers invoked with every in-order released OSDU; the LLO
        #: registers its Orch.Event matcher here (section 6.3.4) and
        #: instrumentation may add its own.
        self._release_observers: List[Callable[[OSDU], None]] = []

    # -- arrival path ---------------------------------------------------------

    def on_data(self, tpdu: DataTPDU, corrupted: bool) -> None:
        if not self.open:
            return
        if tpdu.dropped_seqs:
            # Piggybacked source-drop notices: apply them and the data
            # unit in ascending sequence order so the release line never
            # advances past data carried in this same TPDU.
            below = sorted(s for s in tpdu.dropped_seqs if s < tpdu.seq)
            above = sorted(s for s in tpdu.dropped_seqs if s > tpdu.seq)
            for seq in below:
                self._skipped.add(seq)
                self.reorder.on_arrival(seq, None)
            self._on_data_unit(tpdu, corrupted)
            for seq in above:
                self._skipped.add(seq)
                self.reorder.on_arrival(seq, None)
            return
        if tpdu.osdu is None:
            # Standalone drop notice (no data followed).
            self._skipped.add(tpdu.seq)
            self.reorder.on_arrival(tpdu.seq, None)
            return
        self._on_data_unit(tpdu, corrupted)

    def _on_data_unit(self, tpdu: DataTPDU, corrupted: bool) -> None:
        if tpdu.osdu is None:
            self._skipped.add(tpdu.seq)
            self.reorder.on_arrival(tpdu.seq, None)
            return
        if corrupted and self.cos.error_detection:
            self.corrupted_discards += 1
            if (
                self.reorder.correction_enabled
                and self.profile is ProtocolProfile.CM_RATE_BASED
            ):
                self._send_nack([tpdu.seq])
            # Without correction the discarded unit will surface as a
            # gap and its credit is returned at release time; with
            # correction the retransmission reuses the original credit.
            return
        self._delay_by_seq[tpdu.seq] = (
            self.sim.now - tpdu.sent_at_sim,
            corrupted,
            int(tpdu.osdu.size_bytes),
            tpdu.backlogged,
        )
        if len(self._delay_by_seq) > 4 * RETRANSMIT_CACHE:
            self._delay_by_seq.pop(min(self._delay_by_seq))
        self.reorder.on_arrival(tpdu.seq, tpdu.osdu)
        if self.profile is ProtocolProfile.WINDOW_BASED:
            self._send_control(
                AckTPDU.acquire(
                    self.vc_id,
                    self.reorder.next_expected,
                    self.buffer.free_slots,
                )
            )

    def _on_release(self, osdu: Optional[OSDU], seq: int) -> None:
        self.highest_released_seq = seq
        if osdu is None:
            if seq in self._skipped:
                self._skipped.discard(seq)
                self.source_dropped_count += 1
                # Source drops never consumed a sender credit, so none
                # is returned.
            else:
                self.lost_count += 1
                if self.monitor is not None:
                    self.monitor.record_loss()
                # The lost unit consumed a sender credit but will never
                # occupy a buffer slot; return the credit so the credit
                # loop does not leak.
                self._return_credit()
            return
        delay_info = self._delay_by_seq.pop(seq, None)
        if self.monitor is not None and delay_info is not None:
            delay, corrupted, size_bytes, backlogged = delay_info
            # Account wire bits (payload + headers) so the throughput
            # observation is commensurate with the contracted rate,
            # which the sender's pacing applies to wire bits.
            wire_bits = (size_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES) * 8
            self.monitor.record_delivery(
                size_bits=wire_bits, delay_s=delay, corrupted=corrupted,
                backlogged=backlogged,
            )
        for observer in self._release_observers:
            observer(osdu)
        # A failed deposit (overflow) deliberately does NOT return the
        # credit: refunding it would license the sender to keep
        # overrunning the full buffer at line rate.
        self.buffer.deposit(osdu)

    # -- application consumption → credits ---------------------------------------

    def _on_app_take(self) -> None:
        if self.profile is ProtocolProfile.WINDOW_BASED:
            # Window update: the application freed a buffer slot; a
            # zero-window-stalled sender needs to hear about it.
            self._send_control(
                AckTPDU.acquire(
                    self.vc_id,
                    self.reorder.next_expected,
                    self.buffer.free_slots,
                )
            )
            return
        self._return_credit()

    def _return_credit(self) -> None:
        if self.profile is not ProtocolProfile.CM_RATE_BASED or not self.open:
            return
        self._credits_granted_total += 1
        self._credits_unsent += 1
        # Flush credits in batches, or immediately once the buffer has
        # drained (otherwise a blocked sender and an idle receiver could
        # deadlock on sub-batch credit remainders).  The TPDU carries the
        # *cumulative* grant so lost credit messages heal on the next one.
        if self._credits_unsent >= self._credit_batch or len(self.buffer) == 0:
            self._send_control(
                CreditTPDU.acquire(self.vc_id, self._credits_granted_total)
            )
            self._credits_unsent = 0

    # -- control transmission ------------------------------------------------------

    def _send_nack(self, missing: List[int]) -> None:
        relevant = [s for s in missing if s not in self._skipped]
        if relevant:
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "nack.send", track=self._track, cat="recovery",
                    args={"missing": list(relevant)},
                )
            self._send_control(NackTPDU(vc_id=self.vc_id, missing=relevant))

    def _send_control(self, tpdu) -> None:
        packet = Packet.acquire(
            self.local.node,
            self.remote.node,
            tpdu,
            CONTROL_TPDU_BYTES * 8,
            Priority.CONTROL,
            self.vc_id,
        )
        trace = self.sim.trace
        if trace.packets:
            trace.instant(
                "tpdu.tx", track=self._track, cat="causal",
                args={
                    "packet_id": packet.packet_id,
                    "vc": self.vc_id,
                    "kind": type(tpdu).__name__,
                },
            )
        self._send_packet(packet)

    # -- orchestration hooks (sink side) -----------------------------------------------

    def close_gate(self) -> None:
        self._trace_gate("closed")
        self.buffer.close_gate()

    def open_gate(self) -> None:
        self._trace_gate("open")
        self.buffer.open_gate()

    def meter_gate(self) -> None:
        self._trace_gate("metered")
        self.buffer.meter()

    def _trace_gate(self, state: str) -> None:
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                f"gate:{state}", track=self._track, cat="gate",
            )

    def grant(self, n: int = 1) -> None:
        self.buffer.grant(n)

    def when_primed(self):
        return self.buffer.when_full()

    def flush(self) -> int:
        """Discard buffered data and skip state (stop + seek).

        Every flushed OSDU consumed a sender credit when it was
        deposited; the credits are returned so the source can refill
        the pipeline for the subsequent primed start.
        """
        flushed = self.buffer.flush()
        for _ in range(flushed):
            self._return_credit()
        return flushed

    def add_release_observer(self, observer: Callable[[OSDU], None]) -> None:
        """Subscribe to every in-order released OSDU."""
        self._release_observers.append(observer)

    def delivered_seq(self) -> int:
        """Highest OSDU sequence number delivered to the application."""
        if self.buffer.last_delivered_seq is None:
            return -1
        return self.buffer.last_delivered_seq

    def blocked_time(self, role: str) -> float:
        if role == ROLE_PROTOCOL:
            # The sink protocol never parks on a semaphore in this
            # implementation; report buffer-congestion time instead --
            # the time deliveries could not progress because the
            # application left the buffer (effectively) full.
            return self.buffer.congested_time()
        return self.buffer.blocked_time(role)

    def reset_blocking_stats(self) -> None:
        self.buffer.reset_blocking_stats()

    # -- lifecycle ------------------------------------------------------------------------

    def close(self) -> None:
        self.open = False
        if self.monitor is not None:
            self.monitor.stop()
        self.reorder.reset()
