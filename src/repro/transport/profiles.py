"""Protocol profiles and classes of service (paper section 3.4).

The paper envisages "horizontal and vertical subdivisions in a protocol
matrix": the user selects a *protocol profile* suited to the traffic
type, plus a *class of service* extending the traditional OSI notion
with user-oriented error-control options:

    (i)   error detection and indication,
    (ii)  error detection and correction,
    (iii) error detection, correction, and indication.

We provide two profiles -- the paper's rate-based CM protocol
[Shepherd,91] and a conventional window-based protocol as the implicit
baseline -- and a :class:`ClassOfService` record combining the error
options with the guarantee class (hard vs soft, section 3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ProtocolProfile(enum.Enum):
    """Which protocol machine carries the VC's data."""

    #: Rate-based flow control, decoupled error control; the CM protocol
    #: the paper's transport runs (section 7).
    CM_RATE_BASED = "cm-rate-based"
    #: Sliding-window with cumulative acknowledgements and go-back
    #: retransmission; the traditional baseline (TCP-like).
    WINDOW_BASED = "window-based"


class Guarantee(enum.Enum):
    """How firmly the negotiated QoS is held (section 3.2)."""

    #: Resources reserved end-to-end; admission control refuses the
    #: connection rather than risk violation.
    HARD = "hard"
    #: Resources reserved, but violations are possible and are reported
    #: through T-QoS.indication ("an indication should be provided if
    #: the contracted values are violated").
    SOFT = "soft"
    #: No reservation at all; the VC competes with other traffic.
    BEST_EFFORT = "best-effort"


@dataclass(frozen=True)
class ClassOfService:
    """Error-control options plus guarantee class for one VC.

    ``error_detection`` is implied by either correction or indication
    and is kept explicit only so that the degenerate "no error control
    at all" class can be expressed.
    """

    error_detection: bool = True
    error_correction: bool = False
    error_indication: bool = True
    guarantee: Guarantee = Guarantee.SOFT

    def __post_init__(self) -> None:
        if (self.error_correction or self.error_indication) and not self.error_detection:
            raise ValueError(
                "error correction/indication require error detection"
            )

    # The paper's three named options:

    @staticmethod
    def detect_and_indicate(guarantee: Guarantee = Guarantee.SOFT) -> "ClassOfService":
        """Option (i): error detection and indication."""
        return ClassOfService(True, False, True, guarantee)

    @staticmethod
    def detect_and_correct(guarantee: Guarantee = Guarantee.SOFT) -> "ClassOfService":
        """Option (ii): error detection and correction."""
        return ClassOfService(True, True, False, guarantee)

    @staticmethod
    def detect_correct_indicate(
        guarantee: Guarantee = Guarantee.SOFT,
    ) -> "ClassOfService":
        """Option (iii): error detection, correction, and indication."""
        return ClassOfService(True, True, True, guarantee)

    @staticmethod
    def raw(guarantee: Guarantee = Guarantee.BEST_EFFORT) -> "ClassOfService":
        """No error control: corrupted data delivered, gaps ignored."""
        return ClassOfService(False, False, False, guarantee)
