"""OSDUs and OPDUs (paper section 5).

An OSDU (*orchestrated service data unit*) is the unit of continuous
media meaningful to applications -- "e.g. video frame or text
paragraph".  The transport service preserves OSDU boundaries
irrespective of size (section 3.7: logical data units), and the
orchestration service attaches an :class:`OPDU` to every OSDU carrying:

- an **OSDU sequence number**, starting from zero when the connection
  is first used, and
- an **event field**, an uninterpreted application value matched by the
  ``Orch.Event`` mechanism (section 6.3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class OPDU:
    """Orchestrator PDU riding alongside one OSDU."""

    osdu_seq: int
    event: Optional[int] = None

    def __post_init__(self) -> None:
        if self.osdu_seq < 0:
            raise ValueError(f"OSDU sequence must be non-negative, got {self.osdu_seq}")

    #: Wire overhead of the OPDU fields, bytes.
    WIRE_BYTES = 8


@dataclass
class OSDU:
    """One logical unit of continuous media.

    Attributes:
        size_bytes: the OSDU's size; variable for VBR media.  Boundaries
            are preserved end-to-end whatever the size.
        payload: opaque application data (frame contents, text, ...).
        opdu: the orchestration fields; filled in by the transport
            sender if the application leaves it None, preserving the
            sender-assigned sequence numbering of section 5.
        media_time: optional presentation timestamp in media seconds,
            used by sinks and the lip-sync metric (not on the wire in
            the paper; carried here for instrumentation).
        created_at: simulator time the source generated the unit.
    """

    size_bytes: int
    payload: Any = None
    opdu: Optional[OPDU] = None
    media_time: Optional[float] = None
    created_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"OSDU size must be positive, got {self.size_bytes}")

    @property
    def seq(self) -> int:
        """The OSDU sequence number (requires an assigned OPDU)."""
        if self.opdu is None:
            raise ValueError("OSDU has no OPDU assigned yet")
        return self.opdu.osdu_seq

    @property
    def event(self) -> Optional[int]:
        return self.opdu.event if self.opdu is not None else None

    def with_opdu(self, osdu_seq: int, event: Optional[int] = None) -> "OSDU":
        """Return a copy carrying the given OPDU fields.

        The event field set by the source application is preserved if
        already present (section 6.3.4: "the event fields of OSDUs may
        optionally be set by the source application thread").
        """
        preserved_event = self.opdu.event if self.opdu is not None else event
        return OSDU(
            size_bytes=self.size_bytes,
            payload=self.payload,
            opdu=OPDU(osdu_seq, preserved_event),
            media_time=self.media_time,
            created_at=self.created_at,
        )
