"""1:N multicast CM connections (paper sections 3.8 and 7).

"In a CM based multicast session a simple 1:N topology is usually all
that is required.  Appropriate support for group addressing must be
provided in the transport layer, but multicast support will be the
responsibility of the underlying communications sub-system."

The network substrate replicates packets along the source-rooted
shortest-path tree (:meth:`repro.netsim.topology.Network.send_multicast`)
and reserves each tree edge exactly once
(:meth:`~repro.netsim.reservation.ReservationManager.reserve_multicast`).
This module adds the transport layer on top:

- :class:`MulticastSendVC` -- a rate-paced group sender whose flow
  control tracks *per-receiver* cumulative credits and advances on the
  minimum (the slowest receiver gates the group);
- selective retransmission repaired **unicast** to the NACKing
  receiver, so one lossy branch does not re-flood the whole tree;
- per-sink :class:`~repro.transport.vc.RecvVC` instances sharing the
  group vc-id, installed by :func:`create_multicast`.

Multicast *orchestration* remains future work, exactly as the paper
leaves it ("the efficient handling of multicast orchestration",
section 7); the receive VCs here still expose the standard gate hooks,
so an orchestrating layer could be added without changing this module.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.netsim.packet import Packet
from repro.netsim.reservation import AdmissionError, Reservation
from repro.sim.scheduler import Process, Simulator
from repro.sim.sync import TimedSemaphore
from repro.transport.addresses import TransportAddress
from repro.transport.buffers import ROLE_PROTOCOL, SharedCircularBuffer
from repro.transport.entity import TransportEntity, VCEndpoint
from repro.transport.flowcontrol import RateBasedFlowControl
from repro.transport.osdu import OPDU, OSDU
from repro.transport.profiles import ClassOfService, ProtocolProfile
from repro.transport.qos import QoSContract, QoSOffer, QoSSpec
from repro.transport.service import ConnectionRefused
from repro.transport.tpdu import (
    DATA_HEADER_BYTES,
    DataTPDU,
)
from repro.transport.vc import RETRANSMIT_CACHE, RecvVC, _data_priority


class MulticastSendVC:
    """Source-side protocol machine for a 1:N group connection.

    The shared-buffer interface and sequence discipline match
    :class:`~repro.transport.vc.SendVC`; what differs is the wire fan-out
    (one tree transmission per OSDU) and the credit rule: the sender may
    be at most ``buffer_osdus`` units ahead of the **slowest** receiver.
    """

    def __init__(
        self,
        sim: Simulator,
        network,
        vc_id: str,
        local: TransportAddress,
        sinks: List[TransportAddress],
        contract: QoSContract,
        cos: ClassOfService,
        buffer_osdus: int,
    ):
        if not sinks:
            raise ValueError("a multicast VC needs at least one sink")
        self.sim = sim
        self.network = network
        self.vc_id = vc_id
        self.local = local
        self.sinks = list(sinks)
        self.contract = contract
        self.cos = cos
        self.profile = ProtocolProfile.CM_RATE_BASED
        self.buffer = SharedCircularBuffer(sim, buffer_osdus)
        self.flow = RateBasedFlowControl(sim, contract.throughput_bps)
        self.open = True
        self._next_seq = 0
        self._cache: Dict[int, DataTPDU] = {}
        self._pending_drop_notices: List[int] = []
        self._epoch = 0
        self.sent_count = 0
        self.retransmit_count = 0
        # Per-receiver cumulative credit grants (post-pipeline); the
        # group advances on the minimum.  The initial pipeline depth is
        # the semaphore's starting value.
        self._credits_seen: Dict[str, int] = {
            sink.node: 0 for sink in self.sinks
        }
        self._group_min = 0
        self._credits = TimedSemaphore(sim, buffer_osdus)
        self._proc: Process = sim.spawn(
            self._sender_loop(), name=f"mcast-send:{vc_id}"
        )

    # -- user side -----------------------------------------------------

    def alloc_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def write(self, osdu: OSDU) -> Generator:
        if osdu.size_bytes > self.contract.max_osdu_bytes:
            raise ValueError(
                f"OSDU of {osdu.size_bytes} B exceeds negotiated maximum "
                f"{self.contract.max_osdu_bytes} B"
            )
        stamped = osdu.with_opdu(self.alloc_seq())
        if stamped.created_at is None:
            stamped.created_at = self.sim.now
        yield from self.buffer.put(stamped)

    def try_write(self, osdu: OSDU) -> bool:
        if osdu.size_bytes > self.contract.max_osdu_bytes:
            raise ValueError("OSDU exceeds negotiated maximum")
        stamped = osdu.with_opdu(self.alloc_seq())
        if stamped.created_at is None:
            stamped.created_at = self.sim.now
        if self.buffer.try_put(stamped):
            return True
        self._next_seq -= 1
        return False

    # -- protocol loop ------------------------------------------------------

    def _sender_loop(self):
        while True:
            osdu = yield from self.buffer.get(ROLE_PROTOCOL)
            if not self.open:
                return
            epoch = self._epoch
            size_bits = (osdu.size_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES) * 8
            yield self._credits.acquire(ROLE_PROTOCOL)
            yield from self.flow.acquire_slot(int(size_bits))
            if not self.open:
                return
            if epoch != self._epoch:
                self._pending_drop_notices.append(osdu.seq)
                self._credits.release()
                continue
            self._transmit(osdu)

    def _transmit(self, osdu: OSDU) -> None:
        notices, self._pending_drop_notices = self._pending_drop_notices, []
        tpdu = DataTPDU(
            vc_id=self.vc_id,
            osdu=osdu,
            seq=osdu.seq,
            sent_at_sim=self.sim.now,
            sent_at_local=self.sim.now,
            backlogged=len(self.buffer) > 0,
            dropped_seqs=notices,
        )
        if self.cos.error_correction:
            self._cache[osdu.seq] = tpdu
            if len(self._cache) > RETRANSMIT_CACHE:
                self._cache.pop(min(self._cache))
        self.sent_count += 1
        size_bits = int(
            (osdu.size_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES) * 8
        )
        self.network.send_multicast(
            Packet(
                src=self.local.node,
                dst=f"group:{self.vc_id}",
                payload=tpdu,
                size_bits=size_bits,
                priority=_data_priority(self.cos.guarantee),
                flow_id=self.vc_id,
            ),
            [sink.node for sink in self.sinks],
        )

    # -- receiver feedback ---------------------------------------------------

    def on_credit(self, cumulative_credits: int,
                  from_node: Optional[str] = None) -> None:
        """Track per-receiver grants; release on group-minimum advance."""
        if from_node is None or from_node not in self._credits_seen:
            return
        if cumulative_credits <= self._credits_seen[from_node]:
            return
        self._credits_seen[from_node] = cumulative_credits
        new_min = min(self._credits_seen.values())
        while new_min > self._group_min:
            self._group_min += 1
            self._credits.release()

    def on_nack(self, missing: List[int],
                from_node: Optional[str] = None) -> None:
        """Repair unicast toward the receiver that asked."""
        if from_node is None:
            return
        for seq in missing:
            cached = self._cache.get(seq)
            if cached is None:
                continue
            self.retransmit_count += 1
            retransmission = DataTPDU(
                vc_id=cached.vc_id,
                osdu=cached.osdu,
                seq=cached.seq,
                sent_at_sim=self.sim.now,
                sent_at_local=self.sim.now,
                is_retransmission=True,
            )
            size_bits = int(
                (cached.osdu.size_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES)
                * 8
            )
            self.network.send(
                Packet(
                    src=self.local.node,
                    dst=from_node,
                    payload=retransmission,
                    size_bits=size_bits,
                    priority=_data_priority(self.cos.guarantee),
                    flow_id=self.vc_id,
                )
            )

    def on_ack(self, cumulative_seq: int, advertised=None) -> None:
        """Multicast runs the rate profile only; ACKs are ignored."""

    # -- orchestration-style hooks ------------------------------------------------

    def drop_oldest_unsent(self) -> Optional[int]:
        dropped = self.buffer.drop_oldest_unsent()
        if dropped is None:
            return None
        self._pending_drop_notices.append(dropped.seq)
        return dropped.seq

    def flush(self) -> int:
        flushed = 0
        while True:
            dropped = self.buffer.drop_oldest_unsent()
            if dropped is None:
                break
            self._pending_drop_notices.append(dropped.seq)
            flushed += 1
        self.buffer.dropped_at_source -= flushed
        self.buffer.overwrites += flushed
        self._epoch += 1
        return flushed

    def blocked_time(self, role: str) -> float:
        return self.buffer.blocked_time(role)

    def set_rate(self, rate_bps: float) -> None:
        self.flow.set_rate(rate_bps)

    def close(self) -> None:
        self.open = False
        self._proc.interrupt("closed")


class MulticastGroup:
    """User-facing handle on one established 1:N connection."""

    def __init__(self, send_vc: MulticastSendVC, send_endpoint: VCEndpoint,
                 recv_endpoints: Dict[str, VCEndpoint],
                 reservation: Optional[Reservation]):
        self.send_vc = send_vc
        self.send_endpoint = send_endpoint
        self.recv_endpoints = recv_endpoints
        self.reservation = reservation

    @property
    def vc_id(self) -> str:
        return self.send_vc.vc_id

    def close(self, entities: Dict[str, TransportEntity]) -> None:
        """Tear down the group: sender, every sink VC, the reservation."""
        self.send_vc.close()
        source_entity = entities[self.send_vc.local.node]
        source_entity.send_vcs.pop(self.vc_id, None)
        for node, endpoint in self.recv_endpoints.items():
            entity = entities[node]
            recv_vc = entity.recv_vcs.pop(self.vc_id, None)
            if recv_vc is not None:
                recv_vc.close()
            binding = entity.bindings.get(endpoint.vc.local.tsap)
            if binding is not None:
                binding.endpoints.pop(self.vc_id, None)
        if self.reservation is not None:
            source_entity.reservations.release(self.reservation)


def create_multicast(
    entities: Dict[str, TransportEntity],
    src: TransportAddress,
    sinks: List[TransportAddress],
    qos: QoSSpec,
    cos: Optional[ClassOfService] = None,
) -> MulticastGroup:
    """Establish a 1:N CM connection from ``src`` to every sink.

    Admission reserves the multicast tree once; the negotiated contract
    is computed against the *worst* route in the tree (every receiver
    must be servable).  Raises
    :class:`~repro.transport.service.ConnectionRefused` when any leg is
    unacceptable.  Synchronous (no handshake coroutine): group set-up
    uses management-plane knowledge, matching the paper's position that
    group addressing is a transport concern but distribution belongs to
    the subsystem.
    """
    cos = cos or ClassOfService.detect_and_indicate()
    source_entity = entities[src.node]
    sim = source_entity.sim
    network = source_entity.network
    reservations = source_entity.reservations
    sink_nodes = [sink.node for sink in sinks]
    # Admission over the tree.
    reservation = None
    offered_bps = qos.throughput.preferred
    try:
        reservation = reservations.reserve_multicast(
            src.node, sink_nodes, min(
                qos.throughput.preferred,
                min(
                    reservations.route_available_bps(src.node, node)
                    for node in sink_nodes if node != src.node
                ),
            ),
        )
        offered_bps = reservation.rate_bps
    except AdmissionError as exc:
        raise ConnectionRefused(f"multicast admission failed: {exc}") from exc
    if offered_bps < qos.throughput.acceptable:
        reservations.release(reservation)
        raise ConnectionRefused("multicast tree below acceptable throughput")
    # Contract from the worst route's characteristics.
    worst_delay = 0.0
    worst_jitter = 0.0
    worst_per = 0.0
    worst_ber = 0.0
    osdu_bits = (qos.max_osdu_bytes + DATA_HEADER_BYTES + OPDU.WIRE_BYTES) * 8
    for node in sink_nodes:
        if node == src.node:
            continue
        links = network.links_on_route(src.node, node)
        delay = sum(l.prop_delay for l in links) + sum(
            osdu_bits / l.bandwidth_bps for l in links
        )
        jitter = sum(l.jitter.bound() for l in links)
        per_ok = 1.0
        ber_ok = 1.0
        for link in links:
            per_ok *= 1.0 - link.loss.expected_loss()
            ber_ok *= 1.0 - link.ber
        worst_delay = max(worst_delay, delay)
        worst_jitter = max(worst_jitter, jitter)
        worst_per = max(worst_per, 1.0 - per_ok)
        worst_ber = max(worst_ber, 1.0 - ber_ok)
    if cos.error_correction:
        worst_per *= worst_per
        worst_ber *= worst_ber
    offer = QoSOffer(
        throughput_bps=offered_bps,
        delay_s=worst_delay,
        jitter_s=worst_jitter,
        packet_error_rate=worst_per,
        bit_error_rate=worst_ber,
    )
    contract = qos.negotiate(offer)
    if contract is None:
        reservations.release(reservation)
        raise ConnectionRefused("multicast QoS unacceptable on some branch")
    vc_id = source_entity.new_vc_id()
    send_vc = MulticastSendVC(
        sim, network, vc_id, src, sinks, contract, cos,
        buffer_osdus=contract.buffer_osdus,
    )
    source_entity.send_vcs[vc_id] = send_vc  # type: ignore[assignment]
    send_endpoint = VCEndpoint(source_entity, send_vc, "send")
    source_binding = source_entity.bindings.get(src.tsap)
    if source_binding is None:
        source_binding = source_entity.bind(src.tsap)
    source_binding.endpoints[vc_id] = send_endpoint
    recv_endpoints: Dict[str, VCEndpoint] = {}
    for sink in sinks:
        entity = entities[sink.node]
        recv_vc = RecvVC(
            sim,
            network.send,
            vc_id=vc_id,
            local=sink,
            remote=src,
            contract=contract,
            profile=ProtocolProfile.CM_RATE_BASED,
            cos=cos,
            buffer_osdus=contract.buffer_osdus,
            monitor=None,
            gap_timeout=entity.gap_timeout,
        )
        entity.recv_vcs[vc_id] = recv_vc
        endpoint = VCEndpoint(entity, recv_vc, "recv")
        binding = entity.bindings.get(sink.tsap)
        if binding is None:
            binding = entity.bind(sink.tsap)
        binding.endpoints[vc_id] = endpoint
        recv_endpoints[sink.node] = endpoint
    return MulticastGroup(send_vc, send_endpoint, recv_endpoints, reservation)
