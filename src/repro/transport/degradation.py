"""Graceful degradation: outage detection and the renegotiation ladder.

The paper's QoS maintenance story (sections 4.1.2-4.1.3, Tables 2-3)
assumes violations are *measurable*: packets arrive late, lossy or
slow, and the monitor compares them against the contract.  A network
fault is harsher -- nothing arrives at all, so every per-period
observation is None and the contract comparison has nothing to check.
This module supplies the two reaction pieces the fault-injection
subsystem needs:

- **Outage detection** (sink side): consecutive zero-delivery sample
  periods on a VC that *has* carried traffic, while its delivery gate
  is not deliberately closed, are declared an outage.  The entity then
  synthesises a throughput violation (observed 0) so a standard
  ``T-QoS.indication`` reaches the initiating user, exactly as Table 2
  prescribes for ordinary degradation.
- **The downgrade ladder** (initiator side): on a throughput
  violation, the entity steps the contract down by ``ladder_factor``
  toward ``floor_bps`` via a protocol-initiated ``T-Renegotiate``
  ("may be initiated by a transport user *or by the protocol
  itself*", Table 3).  If the outage outlasts ``grace`` seconds the
  sink releases the VC with reason ``qos-outage`` instead.

Everything here is strictly opt-in via
:meth:`~repro.transport.entity.TransportEntity.enable_degradation`;
entities that never enable it schedule no extra events and behave
bit-identically to builds without this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class DegradationConfig:
    """Tuning knobs for outage reaction on one entity.

    ``outage_periods`` consecutive empty sample periods declare an
    outage; ``grace`` seconds after declaration without recovery
    release the VC.  The ladder multiplies contracted throughput by
    ``ladder_factor`` per degradation indication, never below
    ``floor_bps``.
    """

    #: Seconds between outage declaration and provider-initiated release.
    grace: float = 5.0
    #: Per-indication contract throughput multiplier (0 < factor < 1).
    ladder_factor: float = 0.5
    #: The ladder never renegotiates below this rate.
    floor_bps: float = 0.0
    #: Consecutive zero-delivery sample periods that declare an outage.
    outage_periods: int = 2

    def __post_init__(self) -> None:
        if self.grace <= 0:
            raise ValueError(f"grace must be positive, got {self.grace}")
        if not 0 < self.ladder_factor < 1:
            raise ValueError(
                f"ladder_factor must be in (0, 1), got {self.ladder_factor}"
            )
        if self.floor_bps < 0:
            raise ValueError(f"floor_bps must be >= 0, got {self.floor_bps}")
        if self.outage_periods < 1:
            raise ValueError(
                f"outage_periods must be >= 1, got {self.outage_periods}"
            )


@dataclass
class OutageState:
    """Sink-side per-VC outage tracking (only exists once traffic flowed)."""

    #: True once the VC has delivered at least one OSDU.
    had_traffic: bool = False
    #: Consecutive sample periods with zero deliveries.
    zero_periods: int = 0
    #: Virtual time the outage was declared; None while healthy.
    outage_since: Optional[float] = None
    #: Times each outage was declared / recovered (for tests and bench).
    declared_at: list = field(default_factory=list)
    recovered_at: list = field(default_factory=list)

    @property
    def in_outage(self) -> bool:
        """True between outage declaration and first post-outage delivery."""
        return self.outage_since is not None
