"""Extended Quality of Service parameters and negotiation.

Paper section 3.2 fixes the parameter set "meaningful to the transport
level and the levels below":

- throughput
- end-to-end delay
- delay jitter
- packet error rate
- bit error rate

and requires that "at connection establishment time it should be
possible to quantify and express preferred, acceptable and unacceptable
tolerance levels for each of these parameters", with "full end-to-end
option negotiation" and a guarantee (hard or soft) on the agreed
values.

:class:`Tolerance` captures a (preferred, acceptable) pair for one
parameter; values worse than ``acceptable`` are the "unacceptable"
region.  :class:`QoSSpec` bundles the five parameters plus the maximum
OSDU size (which the paper passes as a QoS parameter, section 5).
Negotiation clamps an *offer* between preferred and acceptable:
the provider offers what it can, the spec accepts anything no worse
than its acceptable bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

#: Sentinel bound meaning "no constraint" for lower-is-better parameters.
UNCONSTRAINED = float("inf")


@dataclass(frozen=True)
class Tolerance:
    """Preferred / acceptable bounds for one QoS parameter.

    ``higher_is_better`` is True for throughput and False for delay,
    jitter and the error rates.  ``preferred`` must be at least as good
    as ``acceptable``.
    """

    preferred: float
    acceptable: float
    higher_is_better: bool = False

    def __post_init__(self) -> None:
        if self.preferred < 0 or self.acceptable < 0:
            raise ValueError("tolerance bounds must be non-negative")
        if self.higher_is_better:
            if self.preferred < self.acceptable:
                raise ValueError(
                    f"preferred {self.preferred} worse than acceptable "
                    f"{self.acceptable} (higher is better)"
                )
        else:
            if self.preferred > self.acceptable:
                raise ValueError(
                    f"preferred {self.preferred} worse than acceptable "
                    f"{self.acceptable} (lower is better)"
                )

    def admits(self, value: float) -> bool:
        """True when ``value`` is in the acceptable region."""
        if self.higher_is_better:
            return value >= self.acceptable
        return value <= self.acceptable

    def clamp_offer(self, offered: float) -> Optional[float]:
        """Negotiate against a provider offer.

        Returns the agreed value -- the offer capped at ``preferred``
        (asking for better than preferred buys nothing) -- or None when
        the offer falls in the unacceptable region.
        """
        if not self.admits(offered):
            return None
        if self.higher_is_better:
            return min(offered, self.preferred)
        return max(offered, self.preferred)

    def tightened(self, other: "Tolerance") -> Optional["Tolerance"]:
        """Intersect with another tolerance (peer negotiation).

        The result's acceptable bound is the *stricter* of the two and
        its preferred the more demanding.  Returns None if the regions
        are disjoint (cannot happen for same-direction tolerances, kept
        for symmetry).
        """
        if self.higher_is_better != other.higher_is_better:
            raise ValueError("cannot intersect tolerances of opposite sense")
        if self.higher_is_better:
            acceptable = max(self.acceptable, other.acceptable)
            preferred = max(self.preferred, other.preferred)
        else:
            acceptable = min(self.acceptable, other.acceptable)
            preferred = min(self.preferred, other.preferred)
        return Tolerance(preferred, acceptable, self.higher_is_better)


def throughput(preferred_bps: float, acceptable_bps: float) -> Tolerance:
    """Throughput tolerance (bits/second, higher is better)."""
    return Tolerance(preferred_bps, acceptable_bps, higher_is_better=True)


def delay(preferred_s: float, acceptable_s: float) -> Tolerance:
    """End-to-end delay tolerance (seconds, lower is better)."""
    return Tolerance(preferred_s, acceptable_s, higher_is_better=False)


@dataclass(frozen=True)
class QoSSpec:
    """The user's requested QoS tolerance levels for one simplex VC.

    Attributes map one-to-one onto the paper's parameter list (section
    3.2) plus the maximum OSDU size of section 5, which bounds receive
    buffer slot allocation.
    """

    throughput: Tolerance
    delay: Tolerance
    jitter: Tolerance
    packet_error_rate: Tolerance
    bit_error_rate: Tolerance
    max_osdu_bytes: int = 8192
    #: Buffer depth in OSDUs at each end; the paper derives buffer
    #: allocation from the max-OSDU QoS parameter (section 5).  Priming
    #: fills exactly this many OSDUs at the sink.
    buffer_osdus: int = 16

    def __post_init__(self) -> None:
        if not self.throughput.higher_is_better:
            raise ValueError("throughput tolerance must be higher-is-better")
        for name in ("delay", "jitter", "packet_error_rate", "bit_error_rate"):
            if getattr(self, name).higher_is_better:
                raise ValueError(f"{name} tolerance must be lower-is-better")
        if self.max_osdu_bytes <= 0:
            raise ValueError("max_osdu_bytes must be positive")
        if self.buffer_osdus <= 0:
            raise ValueError("buffer_osdus must be positive")

    @staticmethod
    def simple(
        throughput_bps: float,
        delay_s: float = 0.5,
        jitter_s: float = UNCONSTRAINED,
        per: float = 1.0,
        ber: float = 1.0,
        max_osdu_bytes: int = 8192,
        buffer_osdus: int = 16,
        slack: float = 2.0,
    ) -> "QoSSpec":
        """Convenience constructor: preferred values with a slack factor.

        ``slack`` widens the acceptable region: acceptable throughput is
        ``preferred / slack``, acceptable delay/jitter is ``preferred *
        slack``.  Error-rate arguments are taken directly as acceptable
        bounds with preferred 0.
        """
        if slack < 1.0:
            raise ValueError(f"slack must be >= 1, got {slack}")
        return QoSSpec(
            throughput=throughput(throughput_bps, throughput_bps / slack),
            delay=delay(delay_s, delay_s * slack),
            jitter=Tolerance(
                0.0 if jitter_s == UNCONSTRAINED else jitter_s / slack, jitter_s
            ),
            packet_error_rate=Tolerance(0.0, per),
            bit_error_rate=Tolerance(0.0, ber),
            max_osdu_bytes=max_osdu_bytes,
            buffer_osdus=buffer_osdus,
        )

    def negotiate(self, offer: "QoSOffer") -> Optional["QoSContract"]:
        """Negotiate against a provider offer; None when unacceptable."""
        agreed_throughput = self.throughput.clamp_offer(offer.throughput_bps)
        agreed_delay = self.delay.clamp_offer(offer.delay_s)
        agreed_jitter = self.jitter.clamp_offer(offer.jitter_s)
        agreed_per = self.packet_error_rate.clamp_offer(offer.packet_error_rate)
        agreed_ber = self.bit_error_rate.clamp_offer(offer.bit_error_rate)
        values = (agreed_throughput, agreed_delay, agreed_jitter, agreed_per,
                  agreed_ber)
        if any(v is None for v in values):
            return None
        return QoSContract(
            throughput_bps=agreed_throughput,
            delay_s=agreed_delay,
            jitter_s=agreed_jitter,
            packet_error_rate=agreed_per,
            bit_error_rate=agreed_ber,
            max_osdu_bytes=self.max_osdu_bytes,
            buffer_osdus=self.buffer_osdus,
        )

    def tightened(self, other: "QoSSpec") -> "QoSSpec":
        """Peer-side tightening: destination imposes its own tolerances."""
        return QoSSpec(
            throughput=self.throughput.tightened(other.throughput),
            delay=self.delay.tightened(other.delay),
            jitter=self.jitter.tightened(other.jitter),
            packet_error_rate=self.packet_error_rate.tightened(
                other.packet_error_rate
            ),
            bit_error_rate=self.bit_error_rate.tightened(other.bit_error_rate),
            max_osdu_bytes=min(self.max_osdu_bytes, other.max_osdu_bytes),
            buffer_osdus=min(self.buffer_osdus, other.buffer_osdus),
        )

    def with_throughput(self, preferred_bps: float, acceptable_bps: float) -> "QoSSpec":
        """Copy with a new throughput tolerance (common renegotiation)."""
        return replace(self, throughput=throughput(preferred_bps, acceptable_bps))


@dataclass(frozen=True)
class QoSOffer:
    """What the provider (network + peer) can deliver on a route."""

    throughput_bps: float
    delay_s: float
    jitter_s: float
    packet_error_rate: float
    bit_error_rate: float


@dataclass(frozen=True)
class QoSContract:
    """The agreed, guaranteed values for the lifetime of a VC."""

    throughput_bps: float
    delay_s: float
    jitter_s: float
    packet_error_rate: float
    bit_error_rate: float
    max_osdu_bytes: int
    buffer_osdus: int = 16

    def violations(self, measured: "QoSMeasurement") -> List["QoSViolation"]:
        """Compare a measurement period against the contract.

        Only parameters actually observed (non-None) are checked; a
        period with no traffic yields no violations.
        """
        found: List[QoSViolation] = []
        checks = [
            ("throughput", measured.throughput_bps, self.throughput_bps, True),
            ("delay", measured.mean_delay_s, self.delay_s, False),
            ("jitter", measured.jitter_s, self.jitter_s, False),
            ("packet_error_rate", measured.packet_error_rate,
             self.packet_error_rate, False),
            ("bit_error_rate", measured.bit_error_rate, self.bit_error_rate,
             False),
        ]
        for name, observed, contracted, higher_is_better in checks:
            if observed is None:
                continue
            violated = (
                observed < contracted * (1 - _TOLERANCE_MARGIN)
                if higher_is_better
                else observed > contracted * (1 + _TOLERANCE_MARGIN) + _ABS_MARGIN
            )
            if violated:
                found.append(QoSViolation(name, contracted, observed))
        return found


#: Relative margin before a deviation counts as a violation; real
#: monitors need hysteresis to avoid flapping indications.
_TOLERANCE_MARGIN = 0.05
_ABS_MARGIN = 1e-9


@dataclass(frozen=True)
class QoSViolation:
    """One contracted parameter observed outside its agreed value."""

    parameter: str
    contracted: float
    observed: float

    def __str__(self) -> str:
        return (
            f"{self.parameter}: contracted {self.contracted:.6g}, "
            f"observed {self.observed:.6g}"
        )


@dataclass
class QoSMeasurement:
    """Per-sample-period observations produced by the VC monitor.

    None means the parameter could not be observed in the period (e.g.
    no packets arrived, so no delay samples exist).
    """

    period_start: float
    period_end: float
    osdus_delivered: int = 0
    throughput_bps: Optional[float] = None
    mean_delay_s: Optional[float] = None
    jitter_s: Optional[float] = None
    packet_error_rate: Optional[float] = None
    bit_error_rate: Optional[float] = None

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "throughput_bps": self.throughput_bps,
            "mean_delay_s": self.mean_delay_s,
            "jitter_s": self.jitter_s,
            "packet_error_rate": self.packet_error_rate,
            "bit_error_rate": self.bit_error_rate,
        }
