"""Convenience facade over the transport service.

The raw service interface is primitive exchange on TSAP bindings,
exactly as the paper specifies.  That is verbose for applications, so
this module adds:

- :func:`build_transport` -- create one entity per host of a network.
- :class:`TransportService` -- a per-node helper with a synchronous-
  style ``connect`` coroutine that performs the whole confirmed
  exchange (including auto-accepting listeners) and hands back the two
  endpoints.

The platform's Stream abstraction (:mod:`repro.ansa.stream`) is built
on this facade, keeping applications isolated from the protocol
service interface (paper section 2.2).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.netsim.reservation import ReservationManager
from repro.netsim.topology import Network
from repro.sim.scheduler import Simulator
from repro.transport.addresses import TransportAddress
from repro.transport.entity import TransportEntity, TSAPBinding, VCEndpoint
from repro.transport.primitives import (
    TConnectConfirm,
    TConnectIndication,
    TConnectRequest,
    TConnectResponse,
    TDisconnectIndication,
    TDisconnectRequest,
    TRenegotiateIndication,
    TRenegotiateResponse,
)
from repro.transport.profiles import ClassOfService, ProtocolProfile
from repro.transport.qos import QoSSpec


class ConnectionRefused(Exception):
    """Raised by the facade when a connect attempt is refused."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def build_transport(
    sim: Simulator,
    network: Network,
    reservations: Optional[ReservationManager] = None,
    sample_period: float = 1.0,
    gap_timeout: float = 0.05,
) -> Dict[str, TransportEntity]:
    """Instantiate one transport entity on every host of ``network``."""
    reservations = reservations or ReservationManager(network)
    return {
        host.name: TransportEntity(
            sim,
            network,
            reservations,
            host.name,
            sample_period=sample_period,
            gap_timeout=gap_timeout,
        )
        for host in network.hosts()
    }


class TransportService:
    """Per-node application-facing helper."""

    def __init__(self, entity: TransportEntity):
        self.entity = entity
        self.sim = entity.sim

    def bind(self, tsap: int) -> TSAPBinding:
        return self.entity.bind(tsap)

    def listen(self, tsap: int) -> TSAPBinding:
        """Bind ``tsap`` and auto-accept every incoming connect.

        A background process answers each T-Connect.indication with a
        T-Connect.response echoing the indicated QoS (no tightening).
        The created receive endpoints appear in ``binding.endpoints``.
        """
        binding = self.entity.bind(tsap)
        self.sim.spawn(self._acceptor(binding), name=f"listen:{binding.address}")
        return binding

    def _acceptor(self, binding: TSAPBinding):
        while True:
            primitive = yield binding.next_primitive()
            if isinstance(primitive, TConnectIndication):
                self.entity.request(
                    TConnectResponse(
                        initiator=primitive.initiator,
                        src=primitive.src,
                        dst=primitive.dst,
                        protocol=primitive.protocol,
                        class_of_service=primitive.class_of_service,
                        qos=primitive.qos,
                        vc_id=primitive.vc_id,
                    )
                )
            elif isinstance(primitive, TRenegotiateIndication):
                self.entity.request(
                    TRenegotiateResponse(
                        initiator=primitive.initiator,
                        src=primitive.src,
                        dst=primitive.dst,
                        new_qos=primitive.new_qos,
                        vc_id=primitive.vc_id,
                    )
                )

    def connect(
        self,
        binding: TSAPBinding,
        dst: TransportAddress,
        qos: QoSSpec,
        profile: ProtocolProfile = ProtocolProfile.CM_RATE_BASED,
        cos: Optional[ClassOfService] = None,
        src: Optional[TransportAddress] = None,
    ) -> Generator:
        """Coroutine: full confirmed connect from ``binding`` to ``dst``.

        Returns the send :class:`VCEndpoint` on success; raises
        :class:`ConnectionRefused` when any party or the network
        provider rejects the call.  ``src`` defaults to the binding's
        own address (the conventional, initiator-is-sender case).
        """
        cos = cos or ClassOfService.detect_and_indicate()
        src = src or binding.address
        vc_id = self.entity.new_vc_id()
        request = TConnectRequest(
            initiator=binding.address,
            src=src,
            dst=dst,
            protocol=profile,
            class_of_service=cos,
            qos=qos,
            vc_id=vc_id,
        )
        self.entity.request(request)
        # Primitives unrelated to this connect are deferred and put
        # back once the exchange completes -- re-queueing them inline
        # would livelock a single-consumer binding.
        deferred = []
        try:
            while True:
                primitive = yield binding.next_primitive()
                if (
                    isinstance(primitive, TConnectConfirm)
                    and primitive.vc_id == vc_id
                ):
                    endpoint = binding.endpoints.get(vc_id)
                    # For a remote connect the send endpoint lives at
                    # the (distinct) source node: None is returned and
                    # the caller manages via addresses.
                    return endpoint
                if (
                    isinstance(primitive, TDisconnectIndication)
                    and primitive.vc_id == vc_id
                ):
                    raise ConnectionRefused(primitive.reason)
                deferred.append(primitive)
        finally:
            for primitive in deferred:
                binding.primitives.put_nowait(primitive)

    def disconnect(self, binding: TSAPBinding, vc_id: str) -> None:
        self.entity.request(
            TDisconnectRequest(initiator=binding.address, vc_id=vc_id)
        )


def connect_pair(
    sim: Simulator,
    entities: Dict[str, TransportEntity],
    src: TransportAddress,
    dst: TransportAddress,
    qos: QoSSpec,
    profile: ProtocolProfile = ProtocolProfile.CM_RATE_BASED,
    cos: Optional[ClassOfService] = None,
    run: bool = True,
) -> Tuple[VCEndpoint, VCEndpoint]:
    """Test/benchmark helper: establish ``src -> dst`` and return both
    endpoints (send, recv).

    Binds both TSAPs (reusing existing bindings is not supported --
    each call uses fresh TSAPs), auto-accepts at the destination, and
    drives the simulator until the connect completes when ``run``.
    """
    src_service = TransportService(entities[src.node])
    dst_service = TransportService(entities[dst.node])
    binding = src_service.bind(src.tsap)
    dst_service.listen(dst.tsap)
    result: Dict[str, VCEndpoint] = {}

    def runner():
        endpoint = yield from src_service.connect(
            binding, dst, qos, profile=profile, cos=cos
        )
        result["send"] = endpoint

    sim.spawn(runner(), name="connect-pair")
    if run:
        sim.run(until=sim.now + 5.0)
    if "send" not in result:
        raise ConnectionRefused("connect did not complete")
    send_endpoint = result["send"]
    recv_entity = entities[dst.node]
    recv_endpoint = recv_entity.endpoint_for(send_endpoint.vc_id)
    if recv_endpoint is None:
        raise ConnectionRefused("receive endpoint missing")
    return send_endpoint, recv_endpoint
