"""The per-node transport entity: connection management and dispatch.

One :class:`TransportEntity` runs on each host.  Service users attach
by *binding* a TSAP (:meth:`TransportEntity.bind`) and then exchange
primitives: requests/responses go down through
:meth:`TransportEntity.request`; indications/confirms come up through
the binding's primitive queue.

Implemented flows, each mapped to the paper:

- conventional connect (initiator == source, section 4.1.1);
- remote connect (initiator, source, destination all distinct,
  section 3.5, Figures 2 and 3);
- remote and local release (section 4.1.1);
- QoS degradation indication (section 4.1.2, Table 2);
- QoS renegotiation, local and remote, with the rejected-renegotiation
  rule "the existing VC is not torn down" (section 4.1.3, Table 3).

QoS offers are computed from the route: reservable bandwidth (via the
ST-II-like :class:`~repro.netsim.reservation.ReservationManager`),
propagation + per-hop serialisation delay, summed link jitter bounds,
and composed loss/BER estimates.  Error-correcting classes of service
improve the offered residual error rates (one recovery round).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Generator, Optional, Tuple

from repro.netsim.packet import Packet, Priority
from repro.netsim.reservation import AdmissionError, Reservation, ReservationManager
from repro.netsim.topology import Network
from repro.sim.scheduler import Simulator
from repro.sim.sync import Queue
from repro.transport.addresses import TransportAddress
from repro.transport.degradation import DegradationConfig, OutageState
from repro.transport.monitor import QoSMonitor
from repro.transport.osdu import OSDU
from repro.transport.primitives import (
    REASON_NO_SUCH_TSAP,
    REASON_NO_SUCH_VC,
    REASON_OUTAGE,
    REASON_QOS_UNACCEPTABLE,
    REASON_REJECTED_BY_DESTINATION,
    REASON_REJECTED_BY_NETWORK,
    REASON_REJECTED_BY_SOURCE,
    REASON_RENEGOTIATION_REFUSED,
    REASON_USER_RELEASE,
    TConnectConfirm,
    TConnectIndication,
    TConnectRequest,
    TConnectResponse,
    TDisconnectIndication,
    TDisconnectRequest,
    TQoSIndication,
    TRenegotiateConfirm,
    TRenegotiateIndication,
    TRenegotiateRequest,
    TRenegotiateResponse,
    TransportPrimitive,
)
from repro.transport.profiles import ClassOfService, Guarantee
from repro.transport.qos import (
    QoSContract,
    QoSMeasurement,
    QoSOffer,
    QoSSpec,
    QoSViolation,
)
from repro.transport.tpdu import (
    AckTPDU,
    CONTROL_TPDU_BYTES,
    ConnectConfirmTPDU,
    ConnectRejectTPDU,
    ConnectRequestTPDU,
    CreditTPDU,
    DataTPDU,
    DisconnectTPDU,
    NackTPDU,
    QoSReportTPDU,
    RemoteConnectTPDU,
    RemoteDisconnectTPDU,
    RemoteOutcomeTPDU,
    RemoteRenegotiateOutcomeTPDU,
    RemoteRenegotiateTPDU,
    RenegotiateConfirmTPDU,
    RenegotiateRejectTPDU,
    RenegotiateRequestTPDU,
)
from repro.transport.vc import RecvVC, SendVC


class TransportServiceError(Exception):
    """Raised for misuse of the transport service interface."""


class VCEndpoint:
    """User-side handle on one end of an established VC.

    ``kind`` is ``"send"`` at the source, ``"recv"`` at the sink.  The
    data path is the shared-buffer interface of section 3.7: ``write``
    and ``read`` are coroutines that block via the buffer semaphores.

    ``orch_queue`` carries (primitive, reply_event) pairs delivered by
    the local LLO instance -- the Orch.Prime/Start/Stop/Delayed
    indications of Tables 5 and 6.  Applications that do not care can
    attach :func:`repro.orchestration.llo.auto_orch_responder`.
    """

    def __init__(self, entity: "TransportEntity", vc, kind: str):
        self.entity = entity
        self.vc = vc
        self.kind = kind
        self.orch_queue = Queue(entity.sim)

    @property
    def vc_id(self) -> str:
        return self.vc.vc_id

    @property
    def contract(self) -> QoSContract:
        return self.vc.contract

    def write(self, osdu: OSDU) -> Generator:
        if self.kind != "send":
            raise TransportServiceError("write() on a receive endpoint")
        return (yield from self.vc.write(osdu))

    def try_write(self, osdu: OSDU) -> bool:
        if self.kind != "send":
            raise TransportServiceError("try_write() on a receive endpoint")
        return self.vc.try_write(osdu)

    def read(self) -> Generator:
        if self.kind != "recv":
            raise TransportServiceError("read() on a send endpoint")
        return (yield from self.vc.buffer.take())

    def try_read(self) -> Optional[OSDU]:
        if self.kind != "recv":
            raise TransportServiceError("try_read() on a send endpoint")
        return self.vc.buffer.try_take()

    def next_orch(self):
        """Waitable for the next orchestration indication."""
        return self.orch_queue.get()


class TSAPBinding:
    """A transport user attached to one TSAP.

    ``primitives`` receives every indication and confirm addressed to
    this TSAP; ``endpoints`` holds the established VC endpoints.
    """

    def __init__(self, entity: "TransportEntity", address: TransportAddress):
        self.entity = entity
        self.address = address
        self.primitives = Queue(entity.sim)
        self.endpoints: Dict[str, VCEndpoint] = {}

    def next_primitive(self):
        """Waitable for the next indication/confirm."""
        return self.primitives.get()

    def endpoint(self, vc_id: str) -> VCEndpoint:
        try:
            return self.endpoints[vc_id]
        except KeyError:
            raise TransportServiceError(
                f"no endpoint for VC {vc_id!r} at {self.address}"
            ) from None

    def deliver(self, primitive: TransportPrimitive) -> None:
        self.primitives.put_nowait(primitive)


@dataclass
class _SourcePending:
    """A connect in progress at the source entity."""

    request: TConnectRequest
    offer: QoSOffer
    reservation: Optional[Reservation]
    remote_initiator: bool
    #: Open trace span covering the CR -> CC/CJ handshake (None when
    #: tracing is disabled).
    span: Optional[object] = None


@dataclass
class _DstPending:
    """An indicated connect awaiting the destination user's response."""

    request: TConnectRequest
    offer: QoSOffer


@dataclass
class _VCRecord:
    """Source-side bookkeeping for an established VC."""

    request: TConnectRequest
    contract: QoSContract
    reservation: Optional[Reservation]


class TransportEntity:
    """Transport protocol entity for one host."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        reservations: ReservationManager,
        node_name: str,
        sample_period: float = 1.0,
        gap_timeout: float = 0.05,
    ):
        self.sim = sim
        self.network = network
        self.reservations = reservations
        self.node_name = node_name
        self.sample_period = sample_period
        self.gap_timeout = gap_timeout
        self.host = network.host(node_name)
        self.host.register_handler("tpdu", self._on_packet)
        # Control-TPDU dispatch table, built once per entity instead of
        # per packet.
        self._control_dispatch = {
            ConnectRequestTPDU: self._on_connect_request,
            ConnectConfirmTPDU: self._on_connect_confirm,
            ConnectRejectTPDU: self._on_connect_reject,
            RemoteConnectTPDU: self._on_remote_connect,
            RemoteOutcomeTPDU: self._on_remote_outcome,
            RemoteDisconnectTPDU: self._on_remote_disconnect,
            DisconnectTPDU: self._on_disconnect,
            RenegotiateRequestTPDU: self._on_renegotiate_request,
            RenegotiateConfirmTPDU: self._on_renegotiate_confirm,
            RenegotiateRejectTPDU: self._on_renegotiate_reject,
            RemoteRenegotiateTPDU: self._on_remote_renegotiate,
            RemoteRenegotiateOutcomeTPDU: self._on_remote_renegotiate_outcome,
            QoSReportTPDU: self._on_qos_report,
        }
        self.bindings: Dict[int, TSAPBinding] = {}
        self.send_vcs: Dict[str, SendVC] = {}
        self.recv_vcs: Dict[str, RecvVC] = {}
        # Connect state machines.
        self._src_pending: Dict[str, _SourcePending] = {}
        self._src_accept_pending: Dict[str, TConnectRequest] = {}
        self._dst_pending: Dict[str, _DstPending] = {}
        self._remote_pending: Dict[str, TConnectRequest] = {}
        # Renegotiation state machines.
        self._reneg_src_pending: Dict[str, TRenegotiateRequest] = {}
        self._reneg_src_accept: Dict[str, TRenegotiateRequest] = {}
        self._reneg_dst_pending: Dict[str, Tuple[TRenegotiateRequest, QoSOffer]] = {}
        self._reneg_remote_pending: Dict[str, TRenegotiateRequest] = {}
        # Outstanding source-side renegotiation offers, kept so a lost
        # RenegotiateRequestTPDU can be retransmitted verbatim.
        self._reneg_offers: Dict[str, QoSOffer] = {}
        # Source-side VC records (for release/renegotiation/relay).
        self._vc_records: Dict[str, _VCRecord] = {}
        # Graceful degradation (opt-in; see repro.transport.degradation).
        self._degradation: Optional[DegradationConfig] = None
        self._outage_states: Dict[str, OutageState] = {}
        self._outage_probes: set = set()
        # Per-entity VC numbering: since node names are globally
        # unique, ids like "host-vc3" are a pure function of the host
        # and its connect order -- never of process-global state.  A
        # sharded run therefore mints the same vc ids regardless of
        # which worker a host lands on (the merge identity rule, see
        # repro.obs.audit.merge_snapshots).
        self._vc_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # User interface
    # ------------------------------------------------------------------

    def bind(self, tsap: int) -> TSAPBinding:
        """Attach a transport user to ``tsap`` on this node."""
        if tsap in self.bindings:
            raise TransportServiceError(
                f"TSAP {tsap} already bound on {self.node_name}"
            )
        binding = TSAPBinding(self, TransportAddress(self.node_name, tsap))
        self.bindings[tsap] = binding
        return binding

    def unbind(self, tsap: int) -> None:
        self.bindings.pop(tsap, None)

    def new_vc_id(self) -> str:
        return f"{self.node_name}-vc{next(self._vc_counter)}"

    def enable_degradation(
        self, config: Optional[DegradationConfig] = None
    ) -> DegradationConfig:
        """Turn on outage detection and the downgrade ladder.

        Off by default: an entity that never calls this schedules no
        extra events and generates no extra primitives, so fault-free
        runs are unaffected.  Enable it at *both* ends of a monitored
        VC -- the sink detects outages, the initiator drives the
        ladder.  Returns the active config.
        """
        self._degradation = config or DegradationConfig()
        return self._degradation

    def request(self, primitive: TransportPrimitive) -> None:
        """Issue a request or response primitive at this entity."""
        if isinstance(primitive, TConnectRequest):
            self._handle_connect_request(primitive)
        elif isinstance(primitive, TConnectResponse):
            self._handle_connect_response(primitive)
        elif isinstance(primitive, TDisconnectRequest):
            self._handle_disconnect_request(primitive)
        elif isinstance(primitive, TRenegotiateRequest):
            self._handle_renegotiate_request(primitive)
        elif isinstance(primitive, TRenegotiateResponse):
            self._handle_renegotiate_response(primitive)
        else:
            raise TransportServiceError(
                f"primitive {type(primitive).__name__} is not a request type"
            )

    # ------------------------------------------------------------------
    # Connect: initiator side
    # ------------------------------------------------------------------

    def _handle_connect_request(self, request: TConnectRequest) -> None:
        if request.initiator.node != self.node_name:
            raise TransportServiceError(
                f"T-Connect.request issued at {self.node_name}, but initiator "
                f"is {request.initiator}"
            )
        if request.initiator == request.src:
            # Conventional connect: the initiator is the sender.
            self._begin_source_connect(request, remote_initiator=False)
        else:
            # Remote connect (Figure 2): relay to the source entity.
            self._remote_pending[request.vc_id] = request
            self._send_control(
                request.src.node, RemoteConnectTPDU(request=request)
            )

    def _on_remote_connect(self, tpdu: RemoteConnectTPDU) -> None:
        request = tpdu.request
        binding = self.bindings.get(request.src.tsap)
        if binding is None:
            self._send_control(
                request.initiator.node,
                RemoteOutcomeTPDU(
                    vc_id=request.vc_id,
                    accepted=False,
                    reason=REASON_NO_SUCH_TSAP,
                    request=request,
                ),
            )
            return
        self._src_accept_pending[request.vc_id] = request
        binding.deliver(TConnectIndication(**_connect_params(request)))

    def _on_remote_outcome(self, tpdu: RemoteOutcomeTPDU) -> None:
        request = self._remote_pending.pop(tpdu.vc_id, None)
        if request is None:
            request = tpdu.request
        if request is None:
            return
        binding = self.bindings.get(request.initiator.tsap)
        if binding is None:
            return
        if tpdu.accepted:
            binding.deliver(
                TConnectConfirm(**_connect_params(request), contract=tpdu.contract)
            )
        else:
            binding.deliver(
                TDisconnectIndication(
                    initiator=request.initiator,
                    vc_id=tpdu.vc_id,
                    reason=tpdu.reason,
                )
            )

    # ------------------------------------------------------------------
    # Connect: source side
    # ------------------------------------------------------------------

    def _begin_source_connect(
        self, request: TConnectRequest, remote_initiator: bool
    ) -> None:
        if request.src.node != self.node_name:
            raise TransportServiceError(
                f"source connect at {self.node_name} for source {request.src}"
            )
        offer, reservation, reason = self._compute_offer(request)
        if offer is None:
            self._source_connect_failed(request, remote_initiator, reason)
            return
        trace = self.sim.trace
        span = (
            trace.span(
                f"connect:{request.vc_id}",
                track=f"vc:{request.vc_id}",
                cat="transport",
                args={
                    "src": str(request.src),
                    "dst": str(request.dst),
                    "remote_initiator": remote_initiator,
                },
            )
            if trace.enabled
            else None
        )
        self._src_pending[request.vc_id] = _SourcePending(
            request, offer, reservation, remote_initiator, span
        )
        self._send_control(
            request.dst.node, ConnectRequestTPDU(request=request, offer=offer)
        )
        # Establishment control PDUs may be lost: retransmit the CR
        # until the exchange concludes or the retry budget is spent.
        self.sim.spawn(
            self._cr_retry_loop(request.vc_id),
            name=f"cr-retry:{request.vc_id}",
        )

    #: Connect-request retransmission schedule.
    CR_RETRY_INTERVAL = 0.5
    CR_RETRY_LIMIT = 5

    def _cr_retry_loop(self, vc_id: str):
        from repro.sim.scheduler import Timeout

        for _attempt in range(self.CR_RETRY_LIMIT):
            yield Timeout(self.sim, self.CR_RETRY_INTERVAL)
            pending = self._src_pending.get(vc_id)
            if pending is None:
                return  # concluded (confirm or reject arrived)
            self._send_control(
                pending.request.dst.node,
                ConnectRequestTPDU(request=pending.request,
                                   offer=pending.offer),
            )
        pending = self._src_pending.pop(vc_id, None)
        if pending is None:
            return
        if pending.span is not None:
            pending.span.end(outcome="retry-exhausted")
        if pending.reservation is not None:
            self.reservations.release(pending.reservation)
        self._source_connect_failed(
            pending.request, pending.remote_initiator,
            REASON_REJECTED_BY_NETWORK,
        )

    def _compute_offer(
        self, request: TConnectRequest
    ) -> Tuple[Optional[QoSOffer], Optional[Reservation], str]:
        """Work out what the network can provide toward the destination."""
        qos = request.qos
        try:
            links = self.network.links_on_route(request.src.node, request.dst.node)
        except ValueError:
            return None, None, REASON_REJECTED_BY_NETWORK
        reservation: Optional[Reservation] = None
        if request.class_of_service.guarantee is Guarantee.BEST_EFFORT:
            offered_bps = qos.throughput.preferred
        else:
            available = self.reservations.route_available_bps(
                request.src.node, request.dst.node
            )
            offered_bps = min(qos.throughput.preferred, available)
            if offered_bps < qos.throughput.acceptable:
                return None, None, REASON_REJECTED_BY_NETWORK
            try:
                reservation = self.reservations.reserve(
                    request.src.node, request.dst.node, offered_bps
                )
            except AdmissionError:
                return None, None, REASON_REJECTED_BY_NETWORK
        osdu_bits = (qos.max_osdu_bytes + CONTROL_TPDU_BYTES) * 8
        delay = sum(link.prop_delay for link in links) + sum(
            osdu_bits / link.bandwidth_bps for link in links
        )
        jitter = sum(link.jitter.bound() for link in links)
        per = 1.0
        ber_ok = 1.0
        for link in links:
            per *= 1.0 - link.loss.expected_loss()
            ber_ok *= 1.0 - link.ber
        per = 1.0 - per
        ber = 1.0 - ber_ok
        if request.class_of_service.error_correction:
            # One bounded-time recovery round: residual errors need two
            # consecutive failures.
            per = per * per
            ber = ber * ber
        offer = QoSOffer(
            throughput_bps=offered_bps,
            delay_s=delay,
            jitter_s=jitter,
            packet_error_rate=per,
            bit_error_rate=ber,
        )
        return offer, reservation, ""

    def _source_connect_failed(
        self, request: TConnectRequest, remote_initiator: bool, reason: str
    ) -> None:
        indication = TDisconnectIndication(
            initiator=request.initiator, vc_id=request.vc_id, reason=reason
        )
        binding = self.bindings.get(request.src.tsap)
        if binding is not None:
            binding.deliver(indication)
        if remote_initiator:
            self._send_control(
                request.initiator.node,
                RemoteOutcomeTPDU(
                    vc_id=request.vc_id,
                    accepted=False,
                    reason=reason,
                    request=request,
                ),
            )

    def _on_connect_confirm(self, tpdu: ConnectConfirmTPDU) -> None:
        pending = self._src_pending.pop(tpdu.vc_id, None)
        if pending is None:
            return
        if pending.span is not None:
            pending.span.end(outcome="confirmed")
        request = pending.request
        contract = tpdu.contract
        if pending.reservation is not None and (
            contract.throughput_bps < pending.reservation.rate_bps
        ):
            self.reservations.modify(pending.reservation, contract.throughput_bps)
        send_vc = SendVC(
            self.sim,
            self.network.send,
            vc_id=tpdu.vc_id,
            local=request.src,
            remote=request.dst,
            contract=contract,
            profile=request.protocol,
            cos=request.class_of_service,
            buffer_osdus=contract.buffer_osdus,
            initial_credits=contract.buffer_osdus,
        )
        self.send_vcs[tpdu.vc_id] = send_vc
        self._vc_records[tpdu.vc_id] = _VCRecord(
            request, contract, pending.reservation
        )
        binding = self.bindings.get(request.src.tsap)
        if binding is not None:
            binding.endpoints[tpdu.vc_id] = VCEndpoint(self, send_vc, "send")
            binding.deliver(
                TConnectConfirm(**_connect_params(request), contract=contract)
            )
        if pending.remote_initiator:
            self._send_control(
                request.initiator.node,
                RemoteOutcomeTPDU(
                    vc_id=tpdu.vc_id,
                    accepted=True,
                    contract=contract,
                    request=request,
                ),
            )

    def _on_connect_reject(self, tpdu: ConnectRejectTPDU) -> None:
        pending = self._src_pending.pop(tpdu.vc_id, None)
        if pending is None:
            return
        if pending.span is not None:
            pending.span.end(outcome="rejected", reason=tpdu.reason)
        if pending.reservation is not None:
            self.reservations.release(pending.reservation)
        self._source_connect_failed(
            pending.request, pending.remote_initiator, tpdu.reason
        )

    # ------------------------------------------------------------------
    # Connect: destination side
    # ------------------------------------------------------------------

    def _on_connect_request(self, tpdu: ConnectRequestTPDU) -> None:
        request = tpdu.request
        if request.vc_id in self._dst_pending:
            # Duplicate CR (retransmission): the indication is already
            # with the application.
            return
        existing = self.recv_vcs.get(request.vc_id)
        if existing is not None:
            # The CC was lost: repeat it (idempotent).
            self._send_control(
                request.src.node,
                ConnectConfirmTPDU(vc_id=request.vc_id,
                                   contract=existing.contract),
            )
            return
        binding = self.bindings.get(request.dst.tsap)
        if binding is None:
            self._send_control(
                request.src.node,
                ConnectRejectTPDU(vc_id=request.vc_id, reason=REASON_NO_SUCH_TSAP),
            )
            return
        self._dst_pending[request.vc_id] = _DstPending(request, tpdu.offer)
        binding.deliver(TConnectIndication(**_connect_params(request)))

    def _accept_at_destination(self, response: TConnectResponse) -> None:
        pending = self._dst_pending.pop(response.vc_id, None)
        if pending is None:
            raise TransportServiceError(
                f"T-Connect.response for unknown VC {response.vc_id!r}"
            )
        request = pending.request
        final_spec = request.qos.tightened(response.qos)
        contract = final_spec.negotiate(pending.offer)
        if contract is None:
            self._send_control(
                request.src.node,
                ConnectRejectTPDU(
                    vc_id=request.vc_id, reason=REASON_QOS_UNACCEPTABLE
                ),
            )
            binding = self.bindings.get(request.dst.tsap)
            if binding is not None:
                binding.deliver(
                    TDisconnectIndication(
                        initiator=request.initiator,
                        vc_id=request.vc_id,
                        reason=REASON_QOS_UNACCEPTABLE,
                    )
                )
            return
        recv_vc = self._create_recv_vc(request, contract)
        self.recv_vcs[request.vc_id] = recv_vc
        binding = self.bindings.get(request.dst.tsap)
        if binding is not None:
            binding.endpoints[request.vc_id] = VCEndpoint(self, recv_vc, "recv")
        self._send_control(
            request.src.node,
            ConnectConfirmTPDU(vc_id=request.vc_id, contract=contract),
        )

    def _create_recv_vc(
        self, request: TConnectRequest, contract: QoSContract
    ) -> RecvVC:
        monitor: Optional[QoSMonitor] = None
        recv_vc_holder: Dict[str, RecvVC] = {}

        def on_period(measurement: QoSMeasurement) -> None:
            self._on_monitor_period(
                request, contract, measurement, recv_vc_holder["vc"]
            )

        if request.class_of_service.error_indication:
            monitor = QoSMonitor(
                self.sim, self.sample_period, on_period, name=request.vc_id
            )
        recv_vc = RecvVC(
            self.sim,
            self.network.send,
            vc_id=request.vc_id,
            local=request.dst,
            remote=request.src,
            contract=contract,
            profile=request.protocol,
            cos=request.class_of_service,
            buffer_osdus=contract.buffer_osdus,
            monitor=monitor,
            gap_timeout=self.gap_timeout,
        )
        recv_vc_holder["vc"] = recv_vc
        if monitor is not None:
            monitor.start()
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.register_connection(
                request.vc_id, contract,
                src=str(request.src), dst=str(request.dst),
                sample_period=self.sample_period,
            )
        return recv_vc

    def _handle_connect_response(self, response: TConnectResponse) -> None:
        if response.vc_id in self._src_accept_pending:
            # The *source* application accepted a remote connect.
            request = self._src_accept_pending.pop(response.vc_id)
            merged = dc_replace(request, qos=request.qos.tightened(response.qos))
            self._begin_source_connect(merged, remote_initiator=True)
        else:
            self._accept_at_destination(response)

    # ------------------------------------------------------------------
    # Disconnect
    # ------------------------------------------------------------------

    def _handle_disconnect_request(self, request: TDisconnectRequest) -> None:
        vc_id = request.vc_id
        if vc_id in self._src_accept_pending:
            # Source application refusing a remote connect.
            pending_req = self._src_accept_pending.pop(vc_id)
            self._send_control(
                pending_req.initiator.node,
                RemoteOutcomeTPDU(
                    vc_id=vc_id,
                    accepted=False,
                    reason=REASON_REJECTED_BY_SOURCE,
                    request=pending_req,
                ),
            )
            return
        if vc_id in self._dst_pending:
            # Destination application refusing an indicated connect.
            pending = self._dst_pending.pop(vc_id)
            self._send_control(
                pending.request.src.node,
                ConnectRejectTPDU(
                    vc_id=vc_id, reason=REASON_REJECTED_BY_DESTINATION
                ),
            )
            return
        if vc_id in self._reneg_dst_pending:
            # Destination refusing a renegotiation (section 4.1.3).
            reneg, _offer = self._reneg_dst_pending.pop(vc_id)
            self._send_control(
                reneg.src.node,
                RenegotiateRejectTPDU(
                    vc_id=vc_id, reason=REASON_RENEGOTIATION_REFUSED
                ),
            )
            return
        if vc_id in self.send_vcs or vc_id in self.recv_vcs:
            self._release_local_vc(vc_id, request.initiator, REASON_USER_RELEASE,
                                   notify_peer=True)
            return
        # Remote release: the initiator does not hold the VC locally.
        record = self._remote_pending.get(vc_id)
        if record is not None:
            self._send_control(
                record.src.node, RemoteDisconnectTPDU(request=request)
            )
            return
        # Fall back: relay toward the source recorded at connect time.
        raise TransportServiceError(
            f"T-Disconnect.request for unknown VC {vc_id!r} at {self.node_name}"
        )

    def remote_release(self, initiator: TransportAddress, target_node: str,
                       vc_id: str) -> None:
        """Ask a remote end-system to release ``vc_id`` (section 4.1.1).

        On arrival a T-Disconnect.indication is issued to the attached
        application, which may then issue its own T-Disconnect.request.
        """
        self._send_control(
            target_node,
            RemoteDisconnectTPDU(
                request=TDisconnectRequest(initiator=initiator, vc_id=vc_id)
            ),
        )

    def _on_remote_disconnect(self, tpdu: RemoteDisconnectTPDU) -> None:
        request = tpdu.request
        vc = self.send_vcs.get(request.vc_id) or self.recv_vcs.get(request.vc_id)
        if vc is None:
            return
        binding = self.bindings.get(vc.local.tsap)
        if binding is not None:
            binding.deliver(
                TDisconnectIndication(
                    initiator=request.initiator,
                    vc_id=request.vc_id,
                    reason=REASON_USER_RELEASE,
                )
            )

    def _release_local_vc(
        self,
        vc_id: str,
        initiator: Optional[TransportAddress],
        reason: str,
        notify_peer: bool,
    ) -> None:
        vc = self.send_vcs.pop(vc_id, None) or self.recv_vcs.pop(vc_id, None)
        if vc is None:
            return
        auditor = self.sim.auditor
        if auditor is not None and isinstance(vc, RecvVC):
            # Record at the sink, where the connection was registered.
            auditor.record_release(
                vc_id, reason,
                initiator=str(initiator) if initiator is not None else None,
            )
        vc.close()
        self._outage_states.pop(vc_id, None)
        self._reneg_src_pending.pop(vc_id, None)
        self._reneg_offers.pop(vc_id, None)
        record = self._vc_records.pop(vc_id, None)
        if record is not None and record.reservation is not None:
            self.reservations.release(record.reservation)
        binding = self.bindings.get(vc.local.tsap)
        if binding is not None:
            binding.endpoints.pop(vc_id, None)
        if notify_peer:
            self._send_control(
                vc.remote.node,
                DisconnectTPDU(vc_id=vc_id, initiator=initiator, reason=reason),
            )
        # Notify a distinct initiator (section 3.5: responses go to both
        # initiator and source addresses).
        if record is not None:
            req = record.request
            if req.initiator != req.src and notify_peer:
                self._send_control(
                    req.initiator.node,
                    RemoteOutcomeTPDU(
                        vc_id=vc_id, accepted=False, reason=reason, request=req
                    ),
                )

    def _on_disconnect(self, tpdu: DisconnectTPDU) -> None:
        vc = self.send_vcs.get(tpdu.vc_id) or self.recv_vcs.get(tpdu.vc_id)
        if vc is None:
            return
        binding = self.bindings.get(vc.local.tsap)
        self._release_local_vc(tpdu.vc_id, tpdu.initiator, tpdu.reason,
                               notify_peer=False)
        if binding is not None:
            binding.deliver(
                TDisconnectIndication(
                    initiator=tpdu.initiator, vc_id=tpdu.vc_id, reason=tpdu.reason
                )
            )

    # ------------------------------------------------------------------
    # Renegotiation (Table 3)
    # ------------------------------------------------------------------

    def _handle_renegotiate_request(self, request: TRenegotiateRequest) -> None:
        if request.initiator == request.src:
            self._begin_source_renegotiate(request, remote_initiator=False)
        elif request.initiator.node == self.node_name:
            self._reneg_remote_pending[request.vc_id] = request
            self._send_control(
                request.src.node, RemoteRenegotiateTPDU(request=request)
            )
        else:
            raise TransportServiceError(
                "T-Renegotiate.request must be issued at the initiator"
            )

    def _on_remote_renegotiate(self, tpdu: RemoteRenegotiateTPDU) -> None:
        request = tpdu.request
        binding = self.bindings.get(request.src.tsap)
        if binding is None or request.vc_id not in self.send_vcs:
            self._send_control(
                request.initiator.node,
                RemoteRenegotiateOutcomeTPDU(
                    vc_id=request.vc_id,
                    accepted=False,
                    reason=REASON_NO_SUCH_VC,
                    request=request,
                ),
            )
            return
        self._reneg_src_accept[request.vc_id] = request
        binding.deliver(TRenegotiateIndication(**_reneg_params(request)))

    def _begin_source_renegotiate(
        self, request: TRenegotiateRequest, remote_initiator: bool
    ) -> None:
        send_vc = self.send_vcs.get(request.vc_id)
        record = self._vc_records.get(request.vc_id)
        if send_vc is None or record is None:
            self._renegotiate_failed(request, remote_initiator, REASON_NO_SUCH_VC)
            return
        qos = request.new_qos
        if record.reservation is not None:
            headroom = self.reservations.route_available_bps(
                request.src.node, request.dst.node
            )
            available = headroom + record.reservation.rate_bps
        else:
            available = qos.throughput.preferred
        offered_bps = min(qos.throughput.preferred, available)
        if offered_bps < qos.throughput.acceptable:
            self._renegotiate_failed(
                request, remote_initiator, REASON_RENEGOTIATION_REFUSED
            )
            return
        base = self._route_offer_estimates(request.src.node, request.dst.node,
                                           qos, record.request.class_of_service)
        offer = QoSOffer(
            throughput_bps=offered_bps,
            delay_s=base[0],
            jitter_s=base[1],
            packet_error_rate=base[2],
            bit_error_rate=base[3],
        )
        self._reneg_src_pending[request.vc_id] = request
        self._reneg_offers[request.vc_id] = offer
        if remote_initiator:
            self._reneg_remote_pending[request.vc_id] = request
        self._send_control(
            request.dst.node, RenegotiateRequestTPDU(request=request, offer=offer)
        )

    def _route_offer_estimates(
        self, src: str, dst: str, qos: QoSSpec, cos: ClassOfService
    ) -> Tuple[float, float, float, float]:
        links = self.network.links_on_route(src, dst)
        osdu_bits = (qos.max_osdu_bytes + CONTROL_TPDU_BYTES) * 8
        delay = sum(link.prop_delay for link in links) + sum(
            osdu_bits / link.bandwidth_bps for link in links
        )
        jitter = sum(link.jitter.bound() for link in links)
        per_ok = 1.0
        ber_ok = 1.0
        for link in links:
            per_ok *= 1.0 - link.loss.expected_loss()
            ber_ok *= 1.0 - link.ber
        per = 1.0 - per_ok
        ber = 1.0 - ber_ok
        if cos.error_correction:
            per *= per
            ber *= ber
        return delay, jitter, per, ber

    def _renegotiate_failed(
        self, request: TRenegotiateRequest, remote_initiator: bool, reason: str
    ) -> None:
        # "The existing VC is not torn down; the T-Disconnect.indication
        # simply indicates that the new service level requested can not
        # be supported" (section 4.1.3).
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.record_renegotiation(request.vc_id, "failed", reason=reason)
        binding = self.bindings.get(request.src.tsap)
        if binding is not None:
            binding.deliver(
                TDisconnectIndication(
                    initiator=request.initiator, vc_id=request.vc_id, reason=reason
                )
            )
        if remote_initiator:
            self._send_control(
                request.initiator.node,
                RemoteRenegotiateOutcomeTPDU(
                    vc_id=request.vc_id,
                    accepted=False,
                    reason=reason,
                    request=request,
                ),
            )

    def _on_renegotiate_request(self, tpdu: RenegotiateRequestTPDU) -> None:
        request = tpdu.request
        if request.vc_id in self._reneg_dst_pending:
            # Duplicate RR (source-side retransmission): the indication
            # is already with the application.
            return
        recv_vc = self.recv_vcs.get(request.vc_id)
        if recv_vc is None:
            self._send_control(
                request.src.node,
                RenegotiateRejectTPDU(
                    vc_id=request.vc_id, reason=REASON_NO_SUCH_VC
                ),
            )
            return
        binding = self.bindings.get(recv_vc.local.tsap)
        if binding is None:
            self._send_control(
                request.src.node,
                RenegotiateRejectTPDU(
                    vc_id=request.vc_id, reason=REASON_NO_SUCH_TSAP
                ),
            )
            return
        self._reneg_dst_pending[request.vc_id] = (request, tpdu.offer)
        binding.deliver(TRenegotiateIndication(**_reneg_params(request)))

    def _handle_renegotiate_response(self, response: TRenegotiateResponse) -> None:
        if response.vc_id in self._reneg_src_accept:
            request = self._reneg_src_accept.pop(response.vc_id)
            merged = dc_replace(
                request, new_qos=request.new_qos.tightened(response.new_qos)
            )
            self._begin_source_renegotiate(merged, remote_initiator=True)
            return
        pending = self._reneg_dst_pending.pop(response.vc_id, None)
        if pending is None:
            raise TransportServiceError(
                f"T-Renegotiate.response for unknown VC {response.vc_id!r}"
            )
        request, offer = pending
        recv_vc = self.recv_vcs.get(response.vc_id)
        final_spec = request.new_qos.tightened(response.new_qos)
        contract = final_spec.negotiate(offer)
        if contract is None or recv_vc is None:
            self._send_control(
                request.src.node,
                RenegotiateRejectTPDU(
                    vc_id=request.vc_id, reason=REASON_QOS_UNACCEPTABLE
                ),
            )
            return
        # Buffers and protocol state are retained across the change
        # (section 3.3: state maintenance minimises resume delay).
        recv_vc.contract = contract
        self._send_control(
            request.src.node,
            RenegotiateConfirmTPDU(vc_id=request.vc_id, contract=contract),
        )

    def _on_renegotiate_confirm(self, tpdu: RenegotiateConfirmTPDU) -> None:
        request = self._reneg_src_pending.pop(tpdu.vc_id, None)
        self._reneg_offers.pop(tpdu.vc_id, None)
        if request is None:
            return
        send_vc = self.send_vcs.get(tpdu.vc_id)
        record = self._vc_records.get(tpdu.vc_id)
        if send_vc is None or record is None:
            return
        contract = tpdu.contract
        auditor = self.sim.auditor
        if auditor is not None:
            auditor.record_renegotiation(
                tpdu.vc_id, "confirmed",
                from_bps=record.contract.throughput_bps,
                to_bps=contract.throughput_bps,
            )
        if record.reservation is not None:
            self.reservations.modify(record.reservation, contract.throughput_bps)
        send_vc.contract = contract
        send_vc.set_rate(contract.throughput_bps)
        record.contract = contract
        binding = self.bindings.get(request.src.tsap)
        if binding is not None:
            binding.deliver(
                TRenegotiateConfirm(**_reneg_params(request), contract=contract)
            )
        remote = self._reneg_remote_pending.pop(tpdu.vc_id, None)
        if remote is not None and remote.initiator != remote.src:
            self._send_control(
                remote.initiator.node,
                RemoteRenegotiateOutcomeTPDU(
                    vc_id=tpdu.vc_id,
                    accepted=True,
                    contract=contract,
                    request=remote,
                ),
            )

    def _on_renegotiate_reject(self, tpdu: RenegotiateRejectTPDU) -> None:
        request = self._reneg_src_pending.pop(tpdu.vc_id, None)
        self._reneg_offers.pop(tpdu.vc_id, None)
        if request is None:
            return
        remote = self._reneg_remote_pending.pop(tpdu.vc_id, None)
        self._renegotiate_failed(
            request, remote is not None and remote.initiator != remote.src,
            tpdu.reason,
        )

    def _on_remote_renegotiate_outcome(
        self, tpdu: RemoteRenegotiateOutcomeTPDU
    ) -> None:
        request = self._reneg_remote_pending.pop(tpdu.vc_id, None) or tpdu.request
        if request is None:
            return
        binding = self.bindings.get(request.initiator.tsap)
        if binding is None:
            return
        if tpdu.accepted:
            binding.deliver(
                TRenegotiateConfirm(**_reneg_params(request), contract=tpdu.contract)
            )
        else:
            binding.deliver(
                TDisconnectIndication(
                    initiator=request.initiator,
                    vc_id=tpdu.vc_id,
                    reason=tpdu.reason,
                )
            )

    # ------------------------------------------------------------------
    # Monitoring (Table 2)
    # ------------------------------------------------------------------

    def _on_monitor_period(
        self,
        request: TConnectRequest,
        contract: QoSContract,
        measurement: QoSMeasurement,
        recv_vc: RecvVC,
    ) -> None:
        current_contract = recv_vc.contract
        violations = current_contract.violations(measurement)
        if self._degradation is not None:
            outage = self._track_outage(request, current_contract,
                                        measurement, recv_vc)
            if outage is not None:
                violations = list(violations) + [outage]
        auditor = self.sim.auditor
        if auditor is not None:
            # Before the early return: met/degraded/idle periods belong
            # on the conformance timeline too.
            auditor.record_period(
                request.vc_id, current_contract, measurement, violations
            )
        if not violations:
            return
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "qos.violation",
                track=f"vc:{request.vc_id}",
                cat="monitor",
                args={"violations": [v.parameter for v in violations]},
            )
        indication = TQoSIndication(
            initiator=request.initiator,
            src=request.src,
            dst=request.dst,
            initial_qos=current_contract,
            sample_period=self.sample_period,
            vc_id=request.vc_id,
            current_qos=measurement,
            violations=violations,
        )
        if request.initiator.node == self.node_name:
            binding = self.bindings.get(request.initiator.tsap)
            if binding is not None:
                binding.deliver(indication)
            self._maybe_degrade(indication)
        else:
            self._send_control(
                request.initiator.node,
                QoSReportTPDU(vc_id=request.vc_id, indication=indication),
            )

    def _on_qos_report(self, tpdu: QoSReportTPDU) -> None:
        indication = tpdu.indication
        if indication.initiator.node != self.node_name:
            return
        binding = self.bindings.get(indication.initiator.tsap)
        if binding is not None:
            binding.deliver(indication)
        self._maybe_degrade(indication)

    # ------------------------------------------------------------------
    # Graceful degradation (opt-in; repro.transport.degradation)
    # ------------------------------------------------------------------

    def _track_outage(
        self,
        request: TConnectRequest,
        contract: QoSContract,
        measurement: QoSMeasurement,
        recv_vc: RecvVC,
    ) -> Optional[QoSViolation]:
        """Sink-side outage bookkeeping for one sample period.

        Returns a synthetic throughput violation (observed 0) for every
        period spent in a declared outage, so the standard Table 2
        indication path carries the fault to the initiator.  When the
        outage outlives the grace period the VC is released with reason
        ``qos-outage`` instead.
        """
        cfg = self._degradation
        state = self._outage_states.get(request.vc_id)
        if state is None:
            state = self._outage_states[request.vc_id] = OutageState()
        if measurement.osdus_delivered > 0:
            state.had_traffic = True
            state.zero_periods = 0
            if state.in_outage:
                state.recovered_at.append(self.sim.now)
                state.outage_since = None
                trace = self.sim.trace
                if trace.enabled:
                    trace.instant(
                        "qos.outage.end", track=f"vc:{request.vc_id}",
                        cat="fault",
                    )
            return None
        # An idle-by-design VC is not in outage: before any traffic, or
        # while orchestration holds the delivery gate closed.
        if not state.had_traffic or recv_vc.buffer.gate_state == "closed":
            return None
        state.zero_periods += 1
        if state.zero_periods < cfg.outage_periods and not state.in_outage:
            return None
        if not state.in_outage:
            state.outage_since = self.sim.now
            state.declared_at.append(self.sim.now)
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "qos.outage", track=f"vc:{request.vc_id}", cat="fault",
                    args={"zero_periods": state.zero_periods},
                )
        elif self.sim.now - state.outage_since >= cfg.grace:
            trace = self.sim.trace
            if trace.enabled:
                trace.instant(
                    "qos.outage.disconnect", track=f"vc:{request.vc_id}",
                    cat="fault",
                    args={"outage_s": self.sim.now - state.outage_since},
                )
            binding = self.bindings.get(request.dst.tsap)
            self._release_local_vc(request.vc_id, request.dst, REASON_OUTAGE,
                                   notify_peer=True)
            if binding is not None:
                binding.deliver(
                    TDisconnectIndication(
                        initiator=request.dst,
                        vc_id=request.vc_id,
                        reason=REASON_OUTAGE,
                    )
                )
            return None
        return QoSViolation("throughput", contract.throughput_bps, 0.0)

    def _maybe_degrade(self, indication: TQoSIndication) -> None:
        """Initiator-side ladder: step the contract down one rung.

        Only runs where the source VC record lives (conventional
        connects: initiator == source) and only one renegotiation is in
        flight per VC; repeated indications during an outage are
        absorbed by the pending check while the retry loop delivers the
        request.
        """
        cfg = self._degradation
        if cfg is None:
            return
        vc_id = indication.vc_id
        outage_flavored = any(
            v.parameter == "throughput" and v.observed == 0.0
            for v in indication.violations
        )
        if outage_flavored and vc_id in self.send_vcs:
            self.begin_outage_probe(vc_id)
        if vc_id in self._reneg_src_pending:
            return
        record = self._vc_records.get(vc_id)
        if record is None:
            return
        if not any(v.parameter == "throughput" for v in indication.violations):
            return
        current = record.contract.throughput_bps
        target = max(cfg.floor_bps, current * cfg.ladder_factor)
        if target >= current:
            return  # already at the floor; nothing left to concede
        trace = self.sim.trace
        if trace.enabled:
            trace.instant(
                "qos.degrade", track=f"vc:{vc_id}", cat="fault",
                args={"from_bps": current, "to_bps": target},
            )
        self.request(
            TRenegotiateRequest(
                initiator=indication.initiator,
                src=record.request.src,
                dst=record.request.dst,
                new_qos=record.request.qos.with_throughput(target, cfg.floor_bps),
                vc_id=vc_id,
            )
        )
        # The RR TPDU may be crossing the very fault that triggered the
        # ladder: retransmit until the exchange concludes.
        if vc_id in self._reneg_src_pending:
            self.sim.spawn(
                self._reneg_retry_loop(vc_id), name=f"rr-retry:{vc_id}"
            )

    def begin_outage_probe(self, vc_id: str) -> None:
        """Start (at most one) credit-probe loop for an outaged send VC.

        Idempotent while a probe is running.  Called from the
        degradation ladder when an outage-flavored T-QoS.indication
        arrives, and by the LLO when the HLO agent declares an
        orchestrated stream in outage (NudgeCmdOPDU).
        """
        if vc_id in self._outage_probes or vc_id not in self.send_vcs:
            return
        self._outage_probes.add(vc_id)
        self.sim.spawn(
            self._outage_probe_loop(vc_id), name=f"outage-probe:{vc_id}"
        )

    #: Outage credit-probe schedule (see SendVC.probe_credit).
    OUTAGE_PROBE_INTERVAL = 0.5
    OUTAGE_PROBE_LIMIT = 120

    def _outage_probe_loop(self, vc_id: str):
        """Release one probe credit per interval until credits flow again."""
        from repro.sim.scheduler import Timeout

        try:
            for _attempt in range(self.OUTAGE_PROBE_LIMIT):
                send_vc = self.send_vcs.get(vc_id)
                if send_vc is None:
                    return
                seen = send_vc.credits_seen
                send_vc.probe_credit()
                trace = self.sim.trace
                if trace.enabled:
                    trace.instant(
                        "outage.probe", track=f"vc:{vc_id}", cat="fault",
                    )
                yield Timeout(self.sim, self.OUTAGE_PROBE_INTERVAL)
                send_vc = self.send_vcs.get(vc_id)
                if send_vc is None or send_vc.credits_seen > seen:
                    return  # credit grants resumed: the path recovered
        finally:
            self._outage_probes.discard(vc_id)

    #: Renegotiate-request retransmission schedule (degradation only).
    RENEG_RETRY_INTERVAL = 0.5
    RENEG_RETRY_LIMIT = 8

    def _reneg_retry_loop(self, vc_id: str):
        """Retransmit a pending RR until confirmed, rejected or exhausted."""
        from repro.sim.scheduler import Timeout

        for _attempt in range(self.RENEG_RETRY_LIMIT):
            yield Timeout(self.sim, self.RENEG_RETRY_INTERVAL)
            request = self._reneg_src_pending.get(vc_id)
            offer = self._reneg_offers.get(vc_id)
            if request is None or offer is None:
                return  # concluded (confirm or reject arrived)
            self._send_control(
                request.dst.node,
                RenegotiateRequestTPDU(request=request, offer=offer),
            )
        request = self._reneg_src_pending.pop(vc_id, None)
        self._reneg_offers.pop(vc_id, None)
        if request is not None:
            # Section 4.1.3: a failed renegotiation never tears down
            # the existing VC; the user just learns the new level is
            # unsupported.
            self._renegotiate_failed(request, False, REASON_REJECTED_BY_NETWORK)

    # ------------------------------------------------------------------
    # Packet dispatch
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        prof = self.sim.profile
        if prof is not None:
            _t0 = prof.clock()
        # The data/flow-control TPDUs are recycled through freelists:
        # once the VC handler returns, every field the receiver keeps
        # has been copied out, so the shells go back to their pools.
        if isinstance(payload, DataTPDU):
            recv_vc = self.recv_vcs.get(payload.vc_id)
            if recv_vc is not None:
                recv_vc.on_data(payload, corrupted=packet.corrupted)
            DataTPDU.release(payload)
            if prof is not None:
                prof.add("transport.deliver", _t0, prof.clock())
            return
        if isinstance(payload, CreditTPDU):
            send_vc = self.send_vcs.get(payload.vc_id)
            if send_vc is not None:
                send_vc.on_credit(payload.credits, from_node=packet.src)
            CreditTPDU.release(payload)
            if prof is not None:
                prof.add("transport.deliver", _t0, prof.clock())
            return
        if isinstance(payload, NackTPDU):
            send_vc = self.send_vcs.get(payload.vc_id)
            if send_vc is not None:
                send_vc.on_nack(payload.missing, from_node=packet.src)
            if prof is not None:
                prof.add("transport.deliver", _t0, prof.clock())
            return
        if isinstance(payload, AckTPDU):
            send_vc = self.send_vcs.get(payload.vc_id)
            if send_vc is not None:
                send_vc.on_ack(payload.cumulative_seq, payload.advertised)
            AckTPDU.release(payload)
            if prof is not None:
                prof.add("transport.deliver", _t0, prof.clock())
            return
        handler = self._control_dispatch.get(type(payload))
        if handler is not None:
            handler(payload)
        if prof is not None:
            prof.add("transport.deliver", _t0, prof.clock())

    def _send_control(self, dst_node: str, tpdu) -> None:
        packet = Packet(
            src=self.node_name,
            dst=dst_node,
            payload=tpdu,
            size_bits=CONTROL_TPDU_BYTES * 8,
            priority=Priority.CONTROL,
        )
        trace = self.sim.trace
        if trace.packets:
            # Causal parent: service primitive/TPDU -> netsim packet id.
            trace.instant(
                "tpdu.tx", track=f"node:{self.node_name}", cat="causal",
                args={
                    "packet_id": packet.packet_id,
                    "vc": getattr(tpdu, "vc_id", None),
                    "kind": type(tpdu).__name__,
                    "dst": dst_node,
                },
            )
        self.network.send(packet)

    # ------------------------------------------------------------------
    # Orchestration coupling
    # ------------------------------------------------------------------

    def vc_role(self, vc_id: str) -> Optional[str]:
        """``"source"``, ``"sink"`` or None for this entity's role on a VC."""
        if vc_id in self.send_vcs:
            return "source"
        if vc_id in self.recv_vcs:
            return "sink"
        return None

    def endpoint_for(self, vc_id: str) -> Optional[VCEndpoint]:
        """Find the user endpoint for ``vc_id`` across local bindings."""
        for binding in self.bindings.values():
            endpoint = binding.endpoints.get(vc_id)
            if endpoint is not None:
                return endpoint
        return None


def _connect_params(request: TConnectRequest) -> Dict:
    return {
        "initiator": request.initiator,
        "src": request.src,
        "dst": request.dst,
        "protocol": request.protocol,
        "class_of_service": request.class_of_service,
        "qos": request.qos,
        "vc_id": request.vc_id,
    }


def _reneg_params(request: TRenegotiateRequest) -> Dict:
    return {
        "initiator": request.initiator,
        "src": request.src,
        "dst": request.dst,
        "new_qos": request.new_qos,
        "vc_id": request.vc_id,
    }
