"""Flow control machines.

The paper's transport assumes **rate-based flow control** "as opposed to
a traditional window based technique", citing VMTP [Cheriton,86], XTP
[Chesson,88] and NETBLT [Clark,88], because it decouples flow control
from error control and corresponds naturally to continuous data flow
(section 7).  Crucially for orchestration, the rate mechanism "must be
capable of rapid adaptation" (section 6.2.3) so that ``Orch.Stop`` and
regulation blocking take effect quickly.

:class:`RateBasedFlowControl` paces transmissions to a configured rate
with immediate effect on rate changes, and supports pause/resume.
:class:`WindowBasedFlowControl` is the conventional baseline: a sliding
window opened by cumulative acknowledgements, with go-back-N
retransmission driven by a timeout.  Benchmark E12 compares the two
carrying CM traffic.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim.scheduler import (
    Event,
    Simulator,
    Timer,
    TimerHandle,
)


class RateBasedFlowControl:
    """Token-less rate pacing: one transmission slot per OSDU.

    ``acquire_slot(size_bits)`` is a coroutine that resumes when the
    sender may transmit a unit of that size while respecting the
    configured bit rate.  Rate changes apply to the *next* slot
    computation, so adaptation latency is one OSDU at most.

    Pacing reuses one :class:`~repro.sim.scheduler.Timer`, re-armed per
    slot, so the per-OSDU hot path allocates nothing on the event heap.
    """

    def __init__(self, sim: Simulator, rate_bps: float):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self._rate_bps = rate_bps
        self._next_slot = 0.0
        self._paused = False
        self._resume_event: Optional[Event] = None
        self._pace = Timer(sim)

    @property
    def rate_bps(self) -> float:
        return self._rate_bps

    def set_rate(self, rate_bps: float) -> None:
        """Adapt the sending rate (QoS renegotiation, regulation)."""
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self._rate_bps = rate_bps

    def pause(self) -> None:
        """Suspend transmission immediately."""
        if not self._paused:
            self._paused = True
            self._resume_event = Event(self.sim)

    def resume(self) -> None:
        if self._paused:
            self._paused = False
            event, self._resume_event = self._resume_event, None
            if event is not None and not event.is_set:
                event.set(None)

    @property
    def paused(self) -> bool:
        return self._paused

    def acquire_slot(self, size_bits: int) -> Generator:
        """Coroutine: wait until the pacing schedule allows ``size_bits``."""
        while self._paused:
            yield self._resume_event
        start = max(self.sim.now, self._next_slot)
        self._next_slot = start + size_bits / self._rate_bps
        if start > self.sim.now:
            yield self._pace.at(start)
        # A pause may have landed while we slept.
        while self._paused:
            yield self._resume_event
        return None


class WindowBasedFlowControl:
    """Sliding window with cumulative ACKs and go-back-N retransmission.

    The sender may have up to ``window`` unacknowledged sequence numbers
    outstanding; transmission is otherwise unpaced (as fast as the
    window and the link permit), which is exactly what makes the window
    scheme bursty for CM traffic.

    The owner (the send VC) wires :attr:`on_retransmit` to re-send from
    its retransmission cache.
    """

    def __init__(
        self,
        sim: Simulator,
        window: int = 16,
        rto: float = 0.2,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if rto <= 0:
            raise ValueError(f"RTO must be positive, got {rto}")
        self.sim = sim
        self.window = window
        self.rto = rto
        #: Receiver-advertised window (free buffer slots); the sender
        #: may have at most ``min(window, advertised)`` outstanding.
        self.advertised = window
        self._base = 0            # oldest unacked seq
        self._next_seq = 0        # next seq to be sent
        self._space_event: Optional[Event] = None
        self._timer = TimerHandle(sim, self._on_timeout)
        self.on_retransmit = None  # Callable[[int, int], None]: range base..next-1
        self.retransmission_count = 0
        self.timeout_count = 0

    @property
    def outstanding(self) -> int:
        return self._next_seq - self._base

    @property
    def effective_window(self) -> int:
        return min(self.window, self.advertised)

    @property
    def has_space(self) -> bool:
        return self.outstanding < self.effective_window

    def acquire_slot(self, size_bits: int) -> Generator:
        """Coroutine: wait for window space, then claim one sequence."""
        while not self.has_space:
            if self._space_event is None or self._space_event.is_set:
                self._space_event = Event(self.sim)
            yield self._space_event
        self._next_seq += 1
        if not self._timer.scheduled:
            self._arm_timer()
        return None

    def on_ack(self, cumulative_seq: int,
               advertised: Optional[int] = None) -> None:
        """Receiver acknowledged everything below ``cumulative_seq``.

        ``advertised`` updates the receiver window; a pure window
        update (repeated cumulative value, new advertisement) also
        wakes a stalled sender.
        """
        if advertised is not None:
            self.advertised = advertised
        if cumulative_seq > self._base:
            self._base = min(cumulative_seq, self._next_seq)
            self._disarm_timer()
            if self.outstanding > 0:
                self._arm_timer()
        if self.has_space and self._space_event is not None:
            event, self._space_event = self._space_event, None
            if not event.is_set:
                event.set(None)

    def _arm_timer(self) -> None:
        self._timer.reschedule_after(self.rto)

    def _disarm_timer(self) -> None:
        self._timer.cancel()

    def _on_timeout(self) -> None:
        if self.outstanding == 0:
            return
        self.timeout_count += 1
        self.retransmission_count += self.outstanding
        if self.on_retransmit is not None:
            self.on_retransmit(self._base, self._next_seq)
        self._arm_timer()

    def reset(self) -> None:
        """Forget all state (connection re-establishment)."""
        self._disarm_timer()
        self._base = 0
        self._next_seq = 0
        if self._space_event is not None and not self._space_event.is_set:
            self._space_event.set(None)
        self._space_event = None

