"""Collect persisted benchmark result tables into one report.

Usage::

    python -m repro.metrics.report [results_dir]

Prints every table under ``benchmarks/results/`` in experiment order,
with the EXPERIMENTS.md experiment ids as headers -- the quick way to
eyeball a full ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional

#: Display order and one-line description per result file stem.
EXPERIMENT_INDEX: Dict[str, str] = {
    "e01_connection": "E1  Table 1/Fig 3 — connection establishment & admission",
    "e02_remote_connect": "E2  Figs 2-3 — remote connect",
    "e03_qos_monitor": "E3  Table 2 — QoS degradation notification",
    "e04_renegotiation": "E4  Table 3 — renegotiation vs teardown",
    "e05_common_node": "E5  Figs 4-5 — orchestrating-node selection",
    "e06_regulation": "E6  Fig 6/Table 6 — continuous synchronisation",
    "e07_prime_start": "E7  Fig 7/Table 5 — Orch.Prime & atomic start",
    "e08_orch_session": "E8  Table 4 — orchestration sessions",
    "e09_max_drop": "E9  Table 6 — max-drop# catch-up",
    "e10_attribution": "E10 §6.3.1.2 — blocking-time fault attribution",
    "e11_multiplexing": "E11 §3.6 — multiplexing considered harmful",
    "e12_flowcontrol": "E12 §7 — rate vs window flow control",
    "e13_buffer_interface": "E13 §3.7 — shared circular buffers",
    "e14_events": "E14 §6.3.4 — Orch.Event",
    "e15_multicast": "E15 §3.8/§7 — 1:N multicast extension",
    "e16_vbr": "E16 §3.7 — VBR over rate pacing",
    "a01_interval_ablation": "A1  ablation — regulation interval",
    "a02_prime_depth": "A2  ablation — priming depth",
    "a03_gap_timeout": "A3  ablation — bounded-recovery deadline",
    "a04_playout_delay": "A4  ablation — de-jitter playout point",
}

DEFAULT_RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))),
    "benchmarks",
    "results",
)


def gather(results_dir: str) -> List[str]:
    """Collect result blocks in experiment order; unknown files last."""
    if not os.path.isdir(results_dir):
        raise FileNotFoundError(
            f"no results directory at {results_dir!r}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    present = {
        name[:-4]
        for name in os.listdir(results_dir)
        if name.endswith(".txt")
    }
    ordered = [stem for stem in EXPERIMENT_INDEX if stem in present]
    ordered += sorted(present - set(EXPERIMENT_INDEX))
    blocks: List[str] = []
    for stem in ordered:
        header = EXPERIMENT_INDEX.get(stem, stem)
        with open(os.path.join(results_dir, f"{stem}.txt")) as handle:
            body = handle.read().strip()
        bar = "=" * len(header)
        blocks.append(f"{header}\n{bar}\n{body}")
    return blocks


def render(results_dir: Optional[str] = None) -> str:
    blocks = gather(results_dir or DEFAULT_RESULTS_DIR)
    missing = [
        stem for stem in EXPERIMENT_INDEX
        if not os.path.exists(
            os.path.join(results_dir or DEFAULT_RESULTS_DIR, f"{stem}.txt")
        )
    ]
    report = "\n\n\n".join(blocks)
    if missing:
        report += (
            "\n\n\n(not yet run: " + ", ".join(missing) + ")"
        )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    results_dir = args[0] if args else DEFAULT_RESULTS_DIR
    try:
        print(render(results_dir))
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Piped into head/less that closed early: not an error.
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
