"""Measurement utilities shared by tests, examples and benchmarks."""

from repro.metrics.stats import Summary, interarrival_jitter, summarize
from repro.metrics.table import Table
from repro.metrics.report import render as render_report

__all__ = ["Summary", "Table", "interarrival_jitter", "render_report",
           "summarize"]
