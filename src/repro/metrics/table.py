"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class Table:
    """Accumulates rows, prints an aligned ASCII table."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None):
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_format(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
