"""Summary statistics for benchmark series."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} p95={self.p95:.6g} "
            f"p99={self.p99:.6g} max={self.maximum:.6g}"
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    value = sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac
    # Clamp away the last-ULP wobble of the interpolation so that
    # percentile ordering invariants hold exactly.
    return min(max(value, sorted_values[lo]), sorted_values[hi])


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` (NaNs for an empty sample)."""
    if not values:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    ordered = sorted(values)
    mean = sum(ordered) / len(ordered)
    if len(ordered) > 1:
        var = sum((v - mean) ** 2 for v in ordered) / (len(ordered) - 1)
    else:
        var = 0.0
    return Summary(
        count=len(ordered),
        mean=mean,
        std=math.sqrt(var),
        minimum=ordered[0],
        p50=_percentile(ordered, 0.50),
        p95=_percentile(ordered, 0.95),
        p99=_percentile(ordered, 0.99),
        maximum=ordered[-1],
    )


def interarrival_jitter(arrival_times: Sequence[float]) -> Summary:
    """Jitter of a delivery process: |interarrival - median interarrival|.

    This is the delivery-smoothness metric used by the flow-control
    comparison (E12): an isochronous stream has near-constant
    interarrival times, a bursty one does not.
    """
    if len(arrival_times) < 3:
        return summarize([])
    gaps: List[float] = [
        b - a for a, b in zip(arrival_times, arrival_times[1:])
    ]
    nominal = sorted(gaps)[len(gaps) // 2]
    deviations = [abs(g - nominal) for g in gaps]
    return summarize(deviations)
