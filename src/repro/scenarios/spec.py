"""Declarative scenario specs and the pure compile to fleet specs.

A :class:`ScenarioSpec` names one cell of the scenario matrix in
workload/topology/variant terms -- *what* is exercised -- and
:func:`compile_spec` lowers it to the concrete
:class:`~repro.soak.FleetSpec` that :func:`repro.soak.run_fleet`
executes.  The compile is a **pure function of (spec, seed)**: every
random draw (the chaos plan's episode times, targets and loss
parameters) comes from a named
:class:`~repro.sim.random.RandomStreams` stream keyed by the scenario
id, so compiling the same spec twice yields byte-identical fleet specs
and running them yields byte-identical audit documents (the property
test in ``tests/scenarios/test_purity.py``).

The three registries -- :data:`WORKLOADS`, :data:`TOPOLOGIES` (re
-exported from the fleet) and :data:`VARIANTS` -- define the matrix
axes; :func:`default_matrix` enumerates the checked-in CI matrix
(every workload x topology x variant combination).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import ChaosPlan, FaultEpisode
from repro.sim.random import RandomStreams
from repro.soak.fleet import TOPOLOGIES, FleetSpec

#: Matrix workloads: constant-bitrate plus the checked-in GoP traces.
WORKLOADS = ("cbr", "trace:news", "trace:action")


@dataclass(frozen=True)
class Variant:
    """One fault-plan x flow-control matrix axis value.

    ``chaos`` turns on a seeded :class:`~repro.faults.plan.ChaosPlan`
    over the topology's cell-internal links; ``episode_rate`` is its
    mean episodes-per-virtual-second.  ``flow`` picks the fleet's
    flow-control variant (open / paced / abr).
    """

    name: str
    flow: str = "open"
    chaos: bool = False
    episode_rate: float = 0.5


#: Matrix variants: a pristine network, the same network under seeded
#: chaos, and chaos with ABR ladder adaptation fighting back.
VARIANTS: Dict[str, Variant] = {
    variant.name: variant
    for variant in (
        Variant("calm"),
        Variant("paced", flow="paced"),
        Variant("chaos", chaos=True),
        Variant("abr-chaos", flow="abr", chaos=True),
    )
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the scenario matrix.

    The first three fields are the matrix coordinates; the rest size
    the underlying fleet (defaults are CI-small: 6 VCs for 8 virtual
    seconds).  ``tight_every=0`` disables the deliberately violated
    delay contracts so a calm cell's conformance baseline is 1.0-able;
    the default keeps one tight VC as a canary.
    """

    workload: str = "cbr"
    topology: str = "cells"
    variant: str = "calm"
    seed: int = 0
    cells: int = 2
    vcs_per_cell: int = 3
    shards: int = 1
    duration: float = 8.0
    pump_period: float = 0.5
    tight_every: int = 6
    cp_pairs: int = 0

    @property
    def scenario_id(self) -> str:
        """The cell's stable name, e.g. ``trace:news/pipeline/chaos@s0``."""
        return f"{self.workload}/{self.topology}/{self.variant}@s{self.seed}"

    def validate(self) -> "ScenarioSpec":
        """Raise ``ValueError`` on an uncompilable spec; returns self."""
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; "
                f"expected one of {tuple(VARIANTS)}"
            )
        compile_spec(self)  # full fleet-level validation
        return self


def parse_scenario_id(scenario_id: str) -> ScenarioSpec:
    """Invert :attr:`ScenarioSpec.scenario_id` (matrix-default sizing)."""
    coords, _, seed_part = scenario_id.rpartition("@s")
    parts = coords.rsplit("/", 2)
    if len(parts) != 3 or not seed_part:
        raise ValueError(
            f"malformed scenario id {scenario_id!r}; expected "
            "'<workload>/<topology>/<variant>@s<seed>'"
        )
    try:
        seed = int(seed_part)
    except ValueError:
        raise ValueError(f"malformed scenario seed in {scenario_id!r}")
    return ScenarioSpec(
        workload=parts[0], topology=parts[1], variant=parts[2], seed=seed,
    )


def compile_spec(
    spec: ScenarioSpec,
    faults: Optional[Sequence[FaultEpisode]] = None,
) -> FleetSpec:
    """Lower a scenario spec to a validated, runnable fleet spec.

    Pure in ``(spec,)``: chaotic variants materialise their fault plan
    from the stream named by the scenario id, so equal specs compile to
    equal fleets (compare via
    :func:`repro.faults.plan_to_jsonable` -- loss models are stateful
    and have no ``__eq__``).  Passing ``faults`` overrides the
    variant's plan -- that is how the shrinker probes candidate plans
    and how a repro file replays its minimal plan.
    """
    variant = VARIANTS.get(spec.variant)
    if variant is None:
        raise ValueError(
            f"unknown variant {spec.variant!r}; "
            f"expected one of {tuple(VARIANTS)}"
        )
    fleet = FleetSpec(
        cells=spec.cells,
        vcs_per_cell=spec.vcs_per_cell,
        shards=spec.shards,
        cp_pairs=spec.cp_pairs,
        duration=spec.duration,
        seed=spec.seed,
        pump_period=spec.pump_period,
        tight_every=spec.tight_every,
        workload=spec.workload,
        topology=spec.topology,
        flow=variant.flow,
    )
    if faults is None and variant.chaos:
        rng = RandomStreams(spec.seed).stream(
            f"scenario.chaos.{spec.scenario_id}"
        )
        plan = ChaosPlan(
            horizon=spec.duration,
            links=fleet.chaos_links(),
            episode_rate=variant.episode_rate,
        ).materialise(rng)
        faults = tuple(plan)
    return replace(fleet, faults=tuple(faults or ())).validate()


#: The checked-in CI matrix axes (kept small so a matrix run is a
#: smoke test, not a soak): 3 workloads x 2 topologies x 4 variants.
MATRIX_WORKLOADS: Tuple[str, ...] = ("cbr", "trace:news", "trace:action")
MATRIX_TOPOLOGIES: Tuple[str, ...] = TOPOLOGIES
MATRIX_VARIANTS: Tuple[str, ...] = ("calm", "paced", "chaos", "abr-chaos")


def default_matrix(seed: int = 0) -> List[ScenarioSpec]:
    """The checked-in scenario matrix (baselined in ``BASELINES.json``)."""
    return [
        ScenarioSpec(workload=workload, topology=topology,
                     variant=variant, seed=seed)
        for workload in MATRIX_WORKLOADS
        for topology in MATRIX_TOPOLOGIES
        for variant in MATRIX_VARIANTS
    ]
