"""The canonical film (lip-sync) scenario, with a dubbing variant.

Migrated from ``benchmarks/scenarios.py`` (which now re-exports from
here) so the experiment harness and the test suite share one
definition.  The scenario is the paper's motivating example: a video
server and an audio server feed one workstation through a router, and
orchestration (or free-running playout, for the contrast case) keeps
the two streams within lip-sync tolerance.

New here: the **dubbing** variant.  ``audio_worker_delay`` /
``audio_worker_jitter`` model a speech-to-speech translation / dubbing
worker on the audio path -- every audio OSDU costs extra processing
time at the source before it is submitted to transport, with a seeded
uniform jitter component.  As long as the mean per-unit cost stays
under the audio unit period the pipeline keeps up and orchestration
holds the skew bound; a worker slower than the unit rate falls
cumulatively behind and no transport-level mechanism can save lip
sync (``tests/integration/test_dubbing_lipsync.py`` pins both sides).
"""

from __future__ import annotations

from typing import Dict

from repro.ansa.stream import AudioQoS, VideoQoS
from repro.core import Stack
from repro.media.encodings import audio_pcm, video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.orchestration.policy import OrchestrationPolicy
from repro.sim.clock import NodeClock
from repro.sim.scheduler import Timeout
from repro.transport.addresses import TransportAddress


def film_testbed(
    seed: int = 1,
    drift_ppm: float = 200.0,
    bandwidth: float = 20e6,
    jitter=None,
    loss=None,
):
    """video-srv + audio-srv feeding one workstation through a router."""
    bed = Stack(seed=seed)
    bed.host("video-srv", clock_skew_ppm=drift_ppm)
    bed.host("audio-srv", clock_skew_ppm=-drift_ppm)
    bed.host("ws", clock_skew_ppm=drift_ppm / 4)
    bed.router("net")
    for name in ("video-srv", "audio-srv", "ws"):
        bed.link(name, "net", bandwidth, prop_delay=0.003, jitter=jitter,
                 loss=loss)
    return bed.up()


class FilmScenario:
    """The canonical lip-sync workload, orchestrated or free-running.

    ``audio_worker_delay``/``audio_worker_jitter`` > 0 turn the plain
    film into the *dubbed* film: the audio source pays that much extra
    per-OSDU processing before submission (jitter drawn from the
    testbed's ``"dub.audio"`` random stream, so runs are seeded).
    """

    def __init__(self, bed, orchestrated: bool, drift_ppm: float,
                 interval_length: float = 0.2,
                 video_drop: int = 2,
                 audio_worker_delay: float = 0.0,
                 audio_worker_jitter: float = 0.0):
        self.bed = bed
        self.orchestrated = orchestrated
        self.drift_ppm = drift_ppm
        self.interval_length = interval_length
        self.video_drop = video_drop
        self.audio_worker_delay = audio_worker_delay
        self.audio_worker_jitter = audio_worker_jitter
        self.streams: Dict[str, object] = {}
        self.sources: Dict[str, StoredMediaSource] = {}
        self.sinks: Dict[str, PlayoutSink] = {}
        self.session = None
        self.marks: Dict[str, float] = {}

    def connect(self, duration: float = 300.0) -> None:
        holder = self.streams

        def connector():
            holder["video"] = yield from self.bed.factory.create(
                TransportAddress("video-srv", 1), TransportAddress("ws", 1),
                VideoQoS.of(fps=25.0, compression_ratio=80.0),
            )
            holder["audio"] = yield from self.bed.factory.create(
                TransportAddress("audio-srv", 2), TransportAddress("ws", 2),
                AudioQoS.telephone(),
            )

        self.bed.spawn(connector())
        self.bed.run(5.0)
        encodings = {
            "video": video_cbr(25.0, holder["video"].media_qos.osdu_bytes),
            "audio": audio_pcm(8000.0, 1, 32),
        }
        playout_clocks = {
            "video": NodeClock(self.bed.sim, skew_ppm=self.drift_ppm),
            "audio": NodeClock(self.bed.sim, skew_ppm=-self.drift_ppm),
        }
        worker: Dict[str, dict] = {
            "video": {},
            "audio": {
                "per_osdu_delay": self.audio_worker_delay,
                "per_osdu_jitter": self.audio_worker_jitter,
                "rng": (
                    self.bed.stream("dub.audio")
                    if self.audio_worker_jitter > 0 else None
                ),
            },
        }
        for name in ("video", "audio"):
            self.sources[name] = StoredMediaSource(
                self.bed.sim, holder[name].send_endpoint, encodings[name],
                total_osdus=int(duration * encodings[name].osdu_rate),
                **worker[name],
            )
            self.sinks[name] = PlayoutSink(
                self.bed.sim,
                holder[name].recv_endpoint,
                osdu_rate=encodings[name].osdu_rate,
                clock=(
                    self.bed.clock("ws")
                    if self.orchestrated
                    else playout_clocks[name]
                ),
                mode="gated" if self.orchestrated else "paced",
            )

    def play(self, seconds: float) -> None:
        marks = self.marks

        if self.orchestrated:
            def driver():
                session = yield from self.bed.hlo.orchestrate(
                    [
                        self.streams["video"].spec(
                            max_drop_per_interval=self.video_drop
                        ),
                        self.streams["audio"].spec(max_drop_per_interval=0),
                    ],
                    OrchestrationPolicy(interval_length=self.interval_length),
                )
                self.session = session
                yield from session.prime()
                yield from session.start()
                marks["t0"] = self.bed.sim.now
                yield Timeout(self.bed.sim, seconds)
                marks["t1"] = self.bed.sim.now
        else:
            def driver():
                self.sources["video"].play()
                self.sources["audio"].play()
                marks["t0"] = self.bed.sim.now
                yield Timeout(self.bed.sim, seconds)
                marks["t1"] = self.bed.sim.now

        self.bed.spawn(driver())
        self.bed.run(seconds + 20.0)

    def skew_series(self, settle: float = 3.0, dt: float = 0.05):
        from repro.media.lipsync import interstream_skew_series

        return interstream_skew_series(
            [self.sinks["video"], self.sinks["audio"]],
            self.marks["t0"] + settle,
            self.marks["t1"] - 1.0,
            dt=dt,
        )


def run_film(orchestrated: bool, drift_ppm: float, seconds: float = 30.0,
             seed: int = 1, interval_length: float = 0.2,
             bandwidth: float = 20e6,
             audio_worker_delay: float = 0.0,
             audio_worker_jitter: float = 0.0):
    """Build, connect and play one film scenario end to end."""
    bed = film_testbed(seed=seed, drift_ppm=drift_ppm, bandwidth=bandwidth)
    scenario = FilmScenario(bed, orchestrated, drift_ppm,
                            interval_length=interval_length,
                            audio_worker_delay=audio_worker_delay,
                            audio_worker_jitter=audio_worker_jitter)
    scenario.connect(duration=seconds + 60.0)
    scenario.play(seconds)
    return scenario
