"""Declarative scenario matrix over the soak fleet.

The scenario layer turns "which configurations do we regression-test?"
into data: a :class:`ScenarioSpec` names one matrix cell (workload x
topology x fault/flow variant x seed), :func:`compile_spec` lowers it
-- purely, seed-deterministically -- into a runnable
:class:`~repro.soak.FleetSpec`, and :func:`run_matrix` sweeps the
checked-in :func:`default_matrix`, diffing every cell's conformance
against ``BASELINES.json`` and shrinking any degraded chaotic cell's
fault plan to a minimal replayable repro file.

``python -m repro.scenarios --matrix`` is the CI entry point; see
``docs/SCENARIOS.md`` for the full workflow.
"""

from repro.scenarios.runner import (
    CellOutcome,
    MatrixReport,
    cell_outcome,
    replay_repro,
    run_cell,
    run_matrix,
    shrink_cell,
    write_repro,
)
from repro.scenarios.spec import (
    MATRIX_TOPOLOGIES,
    MATRIX_VARIANTS,
    MATRIX_WORKLOADS,
    VARIANTS,
    WORKLOADS,
    ScenarioSpec,
    Variant,
    compile_spec,
    default_matrix,
    parse_scenario_id,
)

__all__ = [
    "CellOutcome",
    "MATRIX_TOPOLOGIES",
    "MATRIX_VARIANTS",
    "MATRIX_WORKLOADS",
    "MatrixReport",
    "ScenarioSpec",
    "VARIANTS",
    "Variant",
    "WORKLOADS",
    "cell_outcome",
    "compile_spec",
    "default_matrix",
    "parse_scenario_id",
    "replay_repro",
    "run_cell",
    "run_matrix",
    "shrink_cell",
    "write_repro",
]
