"""CLI for the scenario matrix: ``python -m repro.scenarios --matrix``.

Modes (mutually exclusive):

- ``--matrix`` -- run every cell of the checked-in matrix, diff each
  against the baselines file, shrink degraded chaotic cells to minimal
  repro files, and exit 1 on any drift/invariant failure;
- ``--cell ID`` -- run one cell (by scenario id) and print its summary;
- ``--replay FILE`` -- re-run a repro file's minimal fault plan and
  report whether it still reproduces the conformance violation;
- ``--list`` -- print the matrix's scenario ids and exit.

``--update-baselines`` rewrites the baselines file from the observed
matrix instead of failing on drift (review the diff before
committing!).  Exit codes: 0 clean, 1 drift or invariant failure or
non-reproducing replay, 2 usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.obs.baseline import load_baselines, save_baselines
from repro.scenarios.runner import (
    cell_outcome,
    replay_repro,
    run_cell,
    run_matrix,
)
from repro.scenarios.spec import default_matrix, parse_scenario_id


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run the scenario matrix against its conformance "
                    "baselines.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--matrix", action="store_true",
                      help="run every matrix cell and diff baselines")
    mode.add_argument("--cell", metavar="ID",
                      help="run one cell by scenario id "
                           "(see --list)")
    mode.add_argument("--replay", metavar="FILE",
                      help="re-run a shrunk repro file's minimal plan")
    mode.add_argument("--list", action="store_true",
                      help="print the matrix's scenario ids")
    parser.add_argument("--seed", type=int, default=0,
                        help="matrix seed (default 0, the baselined one)")
    parser.add_argument("--baselines", default="BASELINES.json",
                        help="baselines file (default BASELINES.json)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baselines file's drift band")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite the baselines file from this run "
                             "instead of failing on drift")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report degraded cells without shrinking "
                             "their fault plans")
    parser.add_argument("--repro-dir", default=".",
                        help="directory for shrunk repro files")
    parser.add_argument("--max-probes", type=int, default=200,
                        help="shrinker probe budget per degraded cell")
    cell = parser.add_argument_group(
        "cell sizing (--cell mode only)",
        "override the matrix-default fleet sizing of the one cell "
        "being run; the scenario id (and thus its baseline entry) is "
        "unchanged, so keep overrides shard-count-only when diffing "
        "against baselines",
    )
    cell.add_argument("--shards", type=int, default=None,
                      help="worker processes (>1 enables sharding)")
    cell.add_argument("--cells", type=int, default=None)
    cell.add_argument("--vcs-per-cell", type=int, default=None)
    cell.add_argument("--duration", type=float, default=None,
                      help="virtual seconds to simulate")
    cell.add_argument("--stream", action="store_true",
                      help="per-window telemetry deltas instead of "
                           "finish-time snapshots (sharded cells only)")
    cell.add_argument("--live", default=None, metavar="PATH|FD",
                      help="rolling JSONL telemetry sink ('-' for "
                           "stdout); tail with python -m repro.obs.live")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    if args.tolerance is not None and args.tolerance < 0:
        parser.error("--tolerance must be >= 0")
    specs = default_matrix(seed=args.seed)

    if args.list:
        for spec in specs:
            print(spec.scenario_id)
        return 0

    if args.replay:
        try:
            verdict = replay_repro(args.replay)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"cannot replay {args.replay!r}: {exc}")
        print(
            f"{verdict['scenario']}: {verdict['episodes']} episode(s), "
            f"conformance {verdict['conformance']} vs floor "
            f"{verdict['floor']} -> "
            + ("REPRODUCED" if verdict["reproduced"] else "not reproduced")
        )
        return 0 if verdict["reproduced"] else 1

    baselines = None
    try:
        baselines = load_baselines(args.baselines)
    except FileNotFoundError:
        if not args.update_baselines:
            print(f"no baselines file at {args.baselines!r} "
                  "(run with --update-baselines to create it)",
                  file=sys.stderr)
    except ValueError as exc:
        parser.error(str(exc))

    if args.cell:
        try:
            spec = parse_scenario_id(args.cell)
            overrides = {
                name: value for name, value in (
                    ("shards", args.shards),
                    ("cells", args.cells),
                    ("vcs_per_cell", args.vcs_per_cell),
                    ("duration", args.duration),
                ) if value is not None
            }
            if overrides:
                spec = dataclasses.replace(spec, **overrides)
            spec.validate()
        except ValueError as exc:
            parser.error(str(exc))
        if args.stream and spec.shards == 1:
            parser.error("--stream needs a sharded cell (--shards > 1)")
        live_sink = None
        close_live = False
        if args.live is not None:
            from repro.obs.stream import open_live_sink

            live_sink, close_live = open_live_sink(args.live)
        try:
            result = run_cell(
                spec, stream=args.stream, live=live_sink,
            )
        finally:
            if close_live and live_sink is not None:
                live_sink.close()
        outcome = cell_outcome(spec, result, baselines, args.tolerance)
        print(f"{outcome.scenario_id}: {outcome.status} "
              f"(conformance {outcome.conformance}, "
              f"{outcome.summary.get('periods', 0)} periods)")
        for failure in outcome.invariant_failures:
            print(f"INVARIANT FAILED: {failure}", file=sys.stderr)
        return 0 if outcome.ok or outcome.status == "new" else 1

    report = run_matrix(
        specs, baselines,
        tolerance=args.tolerance,
        shrink=not args.no_shrink,
        repro_dir=args.repro_dir,
        max_probes=args.max_probes,
        log=print,
    )
    bad = [o for o in report.outcomes if not o.ok]
    print(f"matrix: {len(report.outcomes)} cell(s), "
          f"{len(report.outcomes) - len(bad)} ok, {len(bad)} failing "
          f"(tolerance {report.tolerance})")
    if args.update_baselines:
        tolerance = report.tolerance
        if baselines is not None:
            tolerance = baselines.get("tolerance", tolerance)
        if args.tolerance is not None:
            tolerance = args.tolerance
        save_baselines(args.baselines, {
            "tolerance": tolerance,
            "cells": report.refreshed_cells(),
        })
        print(f"baselines rewritten to {args.baselines}")
        # Invariant failures still fail an update run; drift does not.
        return 1 if any(o.invariant_failures for o in report.outcomes) else 0
    if baselines is None:
        print("no baselines to diff against", file=sys.stderr)
        return 1
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
