"""Matrix runner: execute cells, diff baselines, shrink failing chaos.

:func:`run_cell` executes one compiled scenario and reduces it to a
:class:`CellOutcome`; :func:`run_matrix` sweeps a list of specs, diffs
each against ``BASELINES.json`` (via :mod:`repro.obs.baseline`) and --
for a *degraded* chaotic cell -- hands the cell's materialised fault
plan to :func:`repro.faults.shrink_plan` with a "rerun this cell with
the candidate plan, is conformance still below the band?" predicate.
The shrunk minimal plan is written as a **repro file**: a small JSON
document that pins the scenario coordinates, the failing band and the
minimal episode list, replayable with
``python -m repro.scenarios --replay <file>`` (or
:func:`replay_repro`).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.faults.plan import FaultPlan, plan_from_jsonable, plan_to_jsonable
from repro.faults.shrink import ShrinkResult, shrink_plan
from repro.obs.baseline import (
    DEFAULT_TOLERANCE,
    attach_baseline_diff,
    baseline_entry,
    diff_cell,
)
from repro.scenarios.spec import ScenarioSpec, compile_spec
from repro.soak import FleetResult, run_fleet

#: Repro-file format marker (bump on incompatible change).
REPRO_FORMAT = "repro.scenarios/1"


@dataclass
class CellOutcome:
    """One matrix cell's reduced result."""

    spec: ScenarioSpec
    conformance: Optional[float]
    summary: Dict[str, Any]
    invariant_failures: List[str] = field(default_factory=list)
    diff: Optional[Dict[str, Any]] = None
    shrink: Optional[Dict[str, Any]] = None
    repro_path: Optional[str] = None

    @property
    def scenario_id(self) -> str:
        return self.spec.scenario_id

    @property
    def ok(self) -> bool:
        """Healthy and within the baseline band (a new cell is not ok)."""
        if self.invariant_failures:
            return False
        return self.diff is None or self.diff["status"] == "ok"

    @property
    def status(self) -> str:
        if self.invariant_failures:
            return "invariant"
        if self.diff is not None and self.diff["status"] != "ok":
            return self.diff["status"]
        return "ok"


def run_cell(
    spec: ScenarioSpec,
    faults: Optional[tuple] = None,
    *,
    stream: bool = False,
    live: Optional[Any] = None,
) -> FleetResult:
    """Execute one scenario cell (inline unless the spec shards it).

    ``stream`` switches a sharded cell to per-window telemetry deltas
    (byte-identical merged documents, O(active window) coordinator
    state); ``live`` is an optional JSONL sink passed through to
    :func:`repro.soak.run_fleet` for rolling SLO telemetry.
    """
    fleet = compile_spec(spec, faults)
    if stream:
        fleet = dataclasses.replace(fleet, stream=True)
    return run_fleet(fleet, inline=spec.shards == 1, live=live)


def cell_outcome(
    spec: ScenarioSpec,
    result: FleetResult,
    baselines: Optional[Dict[str, Any]] = None,
    tolerance: Optional[float] = None,
) -> CellOutcome:
    """Reduce a fleet result (plus optional baseline diff) to an outcome."""
    summary = result.audit.get("summary", {})
    outcome = CellOutcome(
        spec=spec,
        conformance=summary.get("conformance"),
        summary=dict(summary),
        invariant_failures=result.invariant_failures(),
    )
    if baselines is not None:
        band = tolerance
        if band is None:
            band = baselines.get("tolerance", DEFAULT_TOLERANCE)
        diff = diff_cell(
            summary, baselines.get("cells", {}).get(spec.scenario_id), band,
        )
        attach_baseline_diff(result.audit, diff, spec.scenario_id)
        outcome.diff = diff
    return outcome


def _degraded_predicate(
    spec: ScenarioSpec, floor: float,
) -> Callable[[FaultPlan], bool]:
    """"Does this candidate plan still push conformance below ``floor``?"

    Deterministic for a fixed candidate: the cell is seeded and the
    candidate plan fully replaces the variant's chaos, so the shrinker
    may trust repeated evaluations.
    """

    def still_fails(candidate: FaultPlan) -> bool:
        result = run_cell(spec, faults=tuple(candidate))
        conformance = result.audit.get("summary", {}).get("conformance")
        return conformance is not None and conformance < floor

    return still_fails


def shrink_cell(
    spec: ScenarioSpec,
    floor: float,
    max_probes: int = 200,
) -> Optional[ShrinkResult]:
    """Shrink a degraded chaotic cell's plan to a minimal repro.

    Returns ``None`` when the cell has no fault plan to shrink or the
    full plan does not actually push conformance below ``floor`` (the
    drift has another cause -- e.g. an upward drift or a code change
    unrelated to the chaos), in which case shrinking would be noise.
    """
    fleet = compile_spec(spec)
    if not fleet.faults:
        return None
    plan = FaultPlan(fleet.faults)
    still_fails = _degraded_predicate(spec, floor)
    if not still_fails(plan):
        return None
    return shrink_plan(plan, still_fails, max_probes=max_probes)


def write_repro(
    path: str,
    spec: ScenarioSpec,
    floor: float,
    shrunk: ShrinkResult,
) -> None:
    """Write a replayable minimal-plan repro file."""
    document = {
        "format": REPRO_FORMAT,
        "scenario": spec.scenario_id,
        "spec": asdict(spec),
        "conformance_floor": floor,
        "plan": plan_to_jsonable(shrunk.plan),
        "shrink": shrunk.to_jsonable(),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def replay_repro(path: str) -> Dict[str, Any]:
    """Re-run a repro file's minimal plan; report whether it reproduces."""
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != REPRO_FORMAT:
        raise ValueError(
            f"{path!r} is not a scenario repro file "
            f"(format {document.get('format')!r})"
        )
    spec = ScenarioSpec(**document["spec"])
    plan = plan_from_jsonable(document["plan"])
    result = run_cell(spec, faults=tuple(plan))
    conformance = result.audit.get("summary", {}).get("conformance")
    floor = document["conformance_floor"]
    return {
        "scenario": document["scenario"],
        "episodes": len(plan),
        "conformance": conformance,
        "floor": floor,
        "reproduced": conformance is not None and conformance < floor,
    }


@dataclass
class MatrixReport:
    """The full sweep's outcomes plus the refreshed baseline cells."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def refreshed_cells(self) -> Dict[str, Any]:
        """Observed per-cell baseline entries (for --update-baselines)."""
        return {
            outcome.scenario_id: baseline_entry(outcome.summary)
            for outcome in self.outcomes
        }


def run_matrix(
    specs: List[ScenarioSpec],
    baselines: Optional[Dict[str, Any]] = None,
    *,
    tolerance: Optional[float] = None,
    shrink: bool = True,
    repro_dir: str = ".",
    max_probes: int = 200,
    log: Callable[[str], None] = lambda line: None,
) -> MatrixReport:
    """Sweep the matrix: run, diff, and shrink degraded chaotic cells.

    Shrinking only fires for cells whose conformance fell *below* the
    band (fault-induced degradation is the shrinkable failure mode);
    upward drift and invariant failures are reported without a repro
    file.  Repro files land in ``repro_dir`` as
    ``repro-<mangled scenario id>.json``.
    """
    band = tolerance
    if band is None and baselines is not None:
        band = baselines.get("tolerance", DEFAULT_TOLERANCE)
    if band is None:
        band = DEFAULT_TOLERANCE
    report = MatrixReport(tolerance=band)
    for spec in specs:
        result = run_cell(spec)
        outcome = cell_outcome(spec, result, baselines, band)
        report.outcomes.append(outcome)
        log(f"{outcome.scenario_id}: {outcome.status} "
            f"(conformance {outcome.conformance})")
        for failure in outcome.invariant_failures:
            log(f"  INVARIANT FAILED: {failure}")
        diff = outcome.diff
        degraded = (
            diff is not None and diff["status"] == "drift"
            and diff.get("delta") is not None and diff["delta"] < 0
        )
        if not (shrink and degraded):
            continue
        floor = diff["expected"]["conformance"] - band
        shrunk = shrink_cell(spec, floor, max_probes=max_probes)
        if shrunk is None:
            log("  drift is not reproduced by the cell's fault plan; "
                "no repro to shrink")
            continue
        outcome.shrink = shrunk.to_jsonable()
        mangled = (outcome.scenario_id.replace("/", "_")
                   .replace(":", "-").replace("@", "_"))
        path = os.path.join(repro_dir, f"repro-{mangled}.json")
        write_repro(path, spec, floor, shrunk)
        outcome.repro_path = path
        log(f"  shrunk {shrunk.original_episodes} -> "
            f"{len(shrunk.plan)} episode(s) in {len(shrunk.probes)} "
            f"probe(s); repro written to {path}")
    return report
