#!/usr/bin/env python3
"""The video disc jockey console (paper section 2.2).

A VDJ plays a continuous audio bed while cutting the programme video
between two decks stored on different servers.  Deck switches are
Orch.Remove + Orch.Add on the live orchestrated group (section 6.2.4):
the outgoing deck keeps flowing as a preview, the incoming deck joins
regulation at the programme position.

Run:  python examples/vdj_console.py
"""

from repro.apps import Testbed, VideoDiscJockey
from repro.sim import Timeout


def main() -> None:
    bed = Testbed(seed=17)
    bed.host("console", clock_skew_ppm=60)
    bed.host("audio-srv", clock_skew_ppm=-90)
    bed.host("deck-a-srv", clock_skew_ppm=130)
    bed.host("deck-b-srv", clock_skew_ppm=-40)
    bed.router("studio-lan")
    for name in ("console", "audio-srv", "deck-a-srv", "deck-b-srv"):
        bed.link(name, "studio-lan", 30e6, prop_delay=0.001)
    bed.up()

    vdj = VideoDiscJockey(
        bed, console="console", audio_server="audio-srv",
        deck_servers=["deck-a-srv", "deck-b-srv"],
    )

    def show():
        session = yield from vdj.setup()
        print(f"[{bed.sim.now:7.3f}] console orchestrating at "
              f"{session.orchestrating_node!r}; deck0 cued")
        yield from vdj.go_live()
        print(f"[{bed.sim.now:7.3f}] ON AIR: audio bed + deck0")
        yield Timeout(bed.sim, 6.0)
        reply = yield from vdj.cut_to("deck1")
        print(f"[{bed.sim.now:7.3f}] CUT to deck1: {reply.accept} "
              f"(programme at {vdj.programme_position():.2f} s)")
        yield Timeout(bed.sim, 6.0)
        reply = yield from vdj.cut_to("deck0")
        print(f"[{bed.sim.now:7.3f}] CUT back to deck0: {reply.accept}")
        yield Timeout(bed.sim, 4.0)
        yield from session.stop()
        print(f"[{bed.sim.now:7.3f}] off air")

    bed.spawn(show())
    bed.run(60.0)

    print(f"\nprogramme audio: {vdj.audio_sink.presented} blocks "
          f"({vdj.programme_position():.2f} s)")
    for name, deck in vdj.decks.items():
        print(f"{name}: {deck.sink.presented} frames presented "
              f"({'on air' if deck.on_air else 'preview'})")
    print(f"cut log: {[(round(t, 2), a, b) for t, a, b in vdj.cut_log]}")


if __name__ == "__main__":
    main()
