#!/usr/bin/env python3
"""Film play-out with interactive control: the full paper workflow.

Demonstrates, in one session:

1. remote connect (Figure 2): a *control workstation* sets up a VC
   between the video server and the viewing workstation;
2. orchestrated prime/start (Figure 7, Table 5);
3. user interaction: pause, seek (fast-forward), resume -- the
   stop/flush/prime/start sequence of section 6.2.1;
4. dynamic QoS renegotiation (Table 3): mid-film upgrade from
   monochrome to colour video, the example of section 3.3;
5. the Orch.Event mechanism (section 6.3.4) signalling a change of
   encoding in-band.

Run:  python examples/film_playout.py
"""

from repro.apps import Testbed
from repro.ansa.stream import AudioQoS, VideoQoS
from repro.media.encodings import video_cbr, audio_pcm
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.orchestration import OrchestrationPolicy
from repro.sim import Timeout
from repro.transport import TransportAddress

ENCODING_CHANGE = 0x0E0C


def main() -> None:
    bed = Testbed(seed=7)
    bed.host("video-server", clock_skew_ppm=180)
    bed.host("audio-server", clock_skew_ppm=-140)
    bed.host("viewer", clock_skew_ppm=60)
    bed.router("net")
    for name in ("video-server", "audio-server", "viewer"):
        bed.link(name, "net", bandwidth_bps=30e6, prop_delay=0.004)
    bed.up()

    def driver():
        # -- streams ----------------------------------------------------
        mono = VideoQoS.of(fps=25.0, colour=False)
        video = yield from bed.factory.create(
            TransportAddress("video-server", 1),
            TransportAddress("viewer", 1),
            mono,
        )
        audio = yield from bed.factory.create(
            TransportAddress("audio-server", 2),
            TransportAddress("viewer", 2),
            AudioQoS.telephone(),
        )
        video_source = StoredMediaSource(
            bed.sim, video.send_endpoint,
            video_cbr(25.0, mono.osdu_bytes),
            event_marks={250: ENCODING_CHANGE},  # colour starts at 10 s
        )
        audio_source = StoredMediaSource(
            bed.sim, audio.send_endpoint, audio_pcm(8000.0, 1, 32)
        )
        video_sink = PlayoutSink(bed.sim, video.recv_endpoint, 25.0,
                                 bed.network.host("viewer").clock)
        audio_sink = PlayoutSink(bed.sim, audio.recv_endpoint, 250.0,
                                 bed.network.host("viewer").clock)

        # -- orchestrate -------------------------------------------------
        session = yield from bed.hlo.orchestrate(
            [video.spec(), audio.spec()],
            OrchestrationPolicy(interval_length=0.2),
        )
        session.register_event(
            video.vc_id, ENCODING_CHANGE,
            lambda ind: print(
                f"[{bed.sim.now:7.3f}] Orch.Event: encoding change "
                f"signalled at frame {ind.osdu_seq}"
            ),
        )
        print(f"[{bed.sim.now:7.3f}] orchestrating at "
              f"{session.orchestrating_node!r}")

        yield from session.prime()
        print(f"[{bed.sim.now:7.3f}] primed (pipelines full, sources "
              f"blocked by flow control)")
        yield from session.start()
        print(f"[{bed.sim.now:7.3f}] started -- playing monochrome")
        yield Timeout(bed.sim, 8.0)

        # -- pause / seek / resume ----------------------------------------
        yield from session.stop()
        print(f"[{bed.sim.now:7.3f}] paused at video media time "
              f"{video_sink.last_media_time():.2f} s; seeking to 60 s")
        video_source.seek(60.0)
        audio_source.seek(60.0)
        yield from session.prime()
        yield from session.start()
        print(f"[{bed.sim.now:7.3f}] resumed from 60 s")
        yield Timeout(bed.sim, 4.0)

        # -- mid-film QoS upgrade ------------------------------------------
        colour = VideoQoS.of(fps=25.0, colour=True)
        ok = yield from video.renegotiate(colour)
        contract = video.send_endpoint.contract
        print(
            f"[{bed.sim.now:7.3f}] renegotiated mono->colour: "
            f"{'accepted' if ok else 'refused'}, new contract "
            f"{contract.throughput_bps/1e6:.2f} Mbit/s"
        )
        yield Timeout(bed.sim, 4.0)
        yield from session.stop()
        print(
            f"[{bed.sim.now:7.3f}] stopped; presented "
            f"{video_sink.presented} frames / {audio_sink.presented} "
            f"audio blocks; final skew {session.skew()*1e3:.1f} ms"
        )
        post_seek = [r for r in video_sink.records if r.media_time >= 60.0]
        print(f"          frames from the seek target onward: "
              f"{len(post_seek)} (no stale pre-seek frames leaked: "
              f"{all(r.media_time >= 60.0 for r in post_seek)})")

    bed.spawn(driver())
    bed.run(60.0)


if __name__ == "__main__":
    main()
