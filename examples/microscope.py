#!/usr/bin/env python3
"""The remote microscope controller (paper section 2.2).

A scientist's workstation controls an electron microscope by ADT
invocation (REX RPC with delay bounds) and attaches its live video by
**remote connect** (section 3.5): the workstation is the initiator, the
microscope's camera TSAP is the source and the local display TSAP is
the sink -- three distinct transport addresses, exactly Figure 2.

Run:  python examples/microscope.py
"""

from repro.apps import MicroscopeClient, MicroscopeServer, Testbed
from repro.sim import Timeout


def main() -> None:
    bed = Testbed(seed=3)
    bed.host("lab", clock_skew_ppm=90)       # the microscope machine
    bed.host("office1", clock_skew_ppm=-70)  # scientist 1
    bed.host("office2", clock_skew_ppm=40)   # scientist 2
    bed.router("campus")
    for name in ("lab", "office1", "office2"):
        bed.link(name, "campus", 30e6, prop_delay=0.005)
    bed.up()

    microscope = MicroscopeServer(bed, "lab", name="em-alpha")
    alice = MicroscopeClient(bed, "office1")
    bob = MicroscopeClient(bed, "office2")

    def driver():
        mag = yield from alice.invoke("em-alpha", "set_magnification", 5000)
        print(f"[{bed.sim.now:7.3f}] alice set magnification to {mag}x "
              f"(delay-bounded invocation)")
        specimen = yield from alice.invoke(
            "em-alpha", "select_specimen", "graphene lattice"
        )
        print(f"[{bed.sim.now:7.3f}] specimen: {specimen}")
        ok = yield from alice.attach_viewer(microscope)
        print(f"[{bed.sim.now:7.3f}] alice's viewer attached by remote "
              f"connect: {ok}")
        ok = yield from bob.attach_viewer(microscope)
        print(f"[{bed.sim.now:7.3f}] bob's viewer attached: {ok}")
        yield Timeout(bed.sim, 6.0)
        status = yield from bob.invoke("em-alpha", "status")
        print(f"[{bed.sim.now:7.3f}] microscope status: {status}")
        print(f"[{bed.sim.now:7.3f}] frames received -- alice: "
              f"{alice.frames_received()}, bob: {bob.frames_received()} "
              f"(25 fps live video)")

    bed.spawn(driver())
    bed.run(30.0)


if __name__ == "__main__":
    main()
