#!/usr/bin/env python3
"""QoS negotiation, degradation indication and soft guarantees.

Walks the transport-service QoS machinery of paper sections 3.2-3.3:

1. full end-to-end option negotiation with preferred/acceptable
   tolerance levels, clamped by the network's admission control;
2. a connection refused outright when even the acceptable levels
   cannot be met;
3. a *soft guarantee* in action: congestion is injected on the path
   and the transport entity delivers T-QoS.indication (Table 2) to the
   initiating user, identifying the degraded tolerance levels;
4. the user reacting by renegotiating the VC down (section 3.3's
   "re-assess priorities" scenario).

Run:  python examples/qos_negotiation.py
"""

from dataclasses import replace

from repro.apps import Testbed
from repro.netsim import BernoulliLoss
from repro.sim import Timeout
from repro.transport import (
    OSDU,
    QoSSpec,
    TQoSIndication,
    TransportAddress,
)
from repro.transport.primitives import (
    TRenegotiateConfirm,
    TRenegotiateRequest,
)
from repro.transport.service import ConnectionRefused, TransportService


def main() -> None:
    bed = Testbed(seed=21, sample_period=0.5)
    bed.host("sender")
    bed.host("receiver")
    bed.link("sender", "receiver", 10e6, prop_delay=0.004,
             loss=BernoulliLoss(0.08))
    bed.up()

    service = TransportService(bed.entities["sender"])
    peer = TransportService(bed.entities["receiver"])
    binding = service.bind(1)
    peer.listen(1)

    def driver():
        # 1. Negotiation clamps to what the route can offer.
        generous = QoSSpec.simple(
            30e6, delay_s=0.05, per=0.5, ber=0.5,
            max_osdu_bytes=1000, slack=8.0,
        )
        endpoint = yield from service.connect(
            binding, TransportAddress("receiver", 1), generous
        )
        contract = endpoint.contract
        print(f"asked for 30 Mbit/s preferred (3.75 acceptable); "
              f"network offered and contract fixed at "
              f"{contract.throughput_bps/1e6:.2f} Mbit/s")

        # 2. Impossible demands are refused with a reason.
        try:
            yield from service.connect(
                binding, TransportAddress("receiver", 1),
                QoSSpec.simple(50e6, slack=1.01, max_osdu_bytes=1000),
            )
        except ConnectionRefused as exc:
            print(f"hopeless request refused: {exc.reason}")

        # 3. Stream data over the lossy link; the contract tolerates
        #    only 2% loss, the link delivers ~8% -> degradation reports.
        recv_vc = bed.entities["receiver"].recv_vcs[endpoint.vc_id]
        recv_vc.contract = replace(recv_vc.contract, packet_error_rate=0.02)

        def producer():
            for i in range(4000):
                yield from endpoint.write(OSDU(size_bytes=1000, payload=i))

        def consumer():
            recv_endpoint = bed.entities["receiver"].endpoint_for(
                endpoint.vc_id
            )
            while True:
                yield from recv_endpoint.read()

        bed.spawn(producer())
        bed.spawn(consumer())

        reports = 0
        while reports < 3:
            primitive = yield binding.next_primitive()
            if isinstance(primitive, TQoSIndication):
                reports += 1
                worst = primitive.violations[0]
                print(
                    f"T-QoS.indication #{reports}: over "
                    f"{primitive.sample_period:.1f} s, "
                    f"{worst.parameter} contracted {worst.contracted:.3g} "
                    f"but observed {worst.observed:.3g}"
                )

        # 4. React: renegotiate the packet-error tolerance up (accept
        #    the lossy path) rather than tear the VC down.
        relaxed = QoSSpec.simple(
            contract.throughput_bps, per=0.25, ber=0.5,
            max_osdu_bytes=1000, slack=4.0,
        )
        bed.entities["sender"].request(
            TRenegotiateRequest(
                initiator=binding.address,
                src=binding.address,
                dst=TransportAddress("receiver", 1),
                new_qos=relaxed,
                vc_id=endpoint.vc_id,
            )
        )
        while True:
            primitive = yield binding.next_primitive()
            if isinstance(primitive, TRenegotiateConfirm):
                print(
                    f"renegotiated: packet-error tolerance now "
                    f"{primitive.contract.packet_error_rate:.2f}; the VC "
                    f"carried on without teardown"
                )
                break

    bed.spawn(driver())
    bed.run(40.0)


if __name__ == "__main__":
    main()
