#!/usr/bin/env python3
"""Quickstart: one orchestrated film play-out in ~60 lines.

Builds the Lancaster-style stack on a simulated network, connects a
video stream and an audio stream from two servers to one workstation,
orchestrates them (Orch.Prime -> Orch.Start), plays ten seconds, and
prints the lip-sync quality.

Run:  python examples/quickstart.py
"""

from repro.apps import Testbed
from repro.ansa.stream import AudioQoS, VideoQoS
from repro.media.encodings import audio_pcm, video_cbr
from repro.media.lipsync import fraction_within, interstream_skew_series, skew_summary
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.orchestration import OrchestrationPolicy
from repro.sim import Timeout
from repro.transport import TransportAddress


def main() -> None:
    # 1. A three-machine network; every clock drifts a little.
    bed = Testbed(seed=42)
    bed.host("video-server", clock_skew_ppm=200)
    bed.host("audio-server", clock_skew_ppm=-150)
    bed.host("workstation", clock_skew_ppm=50)
    bed.router("net")
    for name in ("video-server", "audio-server", "workstation"):
        bed.link(name, "net", bandwidth_bps=20e6, prop_delay=0.003)
    bed.up()

    state = {}

    def session_driver():
        # 2. Streams: QoS in media terms; the platform negotiates the
        #    transport contract underneath (simplex VCs, reserved).
        video = yield from bed.factory.create(
            TransportAddress("video-server", 1),
            TransportAddress("workstation", 1),
            VideoQoS.of(fps=25.0),
        )
        audio = yield from bed.factory.create(
            TransportAddress("audio-server", 2),
            TransportAddress("workstation", 2),
            AudioQoS.telephone(),
        )
        # 3. Media endpoints: stored sources, gated playout sinks.
        state["sinks"] = [
            PlayoutSink(bed.sim, video.recv_endpoint, 25.0,
                        bed.network.host("workstation").clock),
            PlayoutSink(bed.sim, audio.recv_endpoint, 250.0,
                        bed.network.host("workstation").clock),
        ]
        StoredMediaSource(bed.sim, video.send_endpoint,
                          video_cbr(25.0, video.media_qos.osdu_bytes))
        StoredMediaSource(bed.sim, audio.send_endpoint,
                          audio_pcm(8000.0, 1, 32))
        # 4. Orchestrate: the HLO picks the workstation (the common
        #    node), primes the pipelines and starts both atomically.
        session = yield from bed.hlo.orchestrate(
            [video.spec(), audio.spec()],
            OrchestrationPolicy(interval_length=0.2),
        )
        print(f"orchestrating node: {session.orchestrating_node}")
        yield from session.prime()
        yield from session.start()
        state["t0"] = bed.sim.now
        yield Timeout(bed.sim, 10.0)
        state["t1"] = bed.sim.now
        yield from session.stop()

    bed.spawn(session_driver())
    bed.run(30.0)

    video_sink, audio_sink = state["sinks"]
    print(f"video frames presented: {video_sink.presented}")
    print(f"audio blocks presented: {audio_sink.presented}")
    series = interstream_skew_series(
        state["sinks"], state["t0"] + 2, state["t1"] - 1
    )
    summary = skew_summary(series)
    print(
        f"lip-sync skew: mean {summary['mean']*1e3:.1f} ms, "
        f"max {summary['max']*1e3:.1f} ms "
        f"({fraction_within(series):.0%} of samples within the 80 ms "
        f"perceptual threshold)"
    )


if __name__ == "__main__":
    main()
