#!/usr/bin/env python3
"""The language laboratory (paper section 3.6).

Audio tracks in different languages, stored on one server, distributed
to several workstations in a real-time interactive lesson.  The server
is the node common to every VC, so the HLO orchestrates at the *source*
(Figure 5's other case).  The teacher pauses the lesson, skips back to
repeat a sentence, and resumes -- every workstation hears the same
sentence at the same moment throughout.

Run:  python examples/language_lab.py
"""

from repro.apps import LanguageLab, Testbed
from repro.media.lipsync import interstream_skew_series, skew_summary
from repro.sim import Timeout


def main() -> None:
    bed = Testbed(seed=11)
    bed.host("lab-server", clock_skew_ppm=120)
    for i, skew in enumerate((80, -110, 140, -60)):
        bed.host(f"booth{i}", clock_skew_ppm=skew)
    bed.router("lan")
    bed.link("lab-server", "lan", 20e6, prop_delay=0.002)
    for i in range(4):
        bed.link(f"booth{i}", "lan", 10e6, prop_delay=0.002)
    bed.up()

    lab = LanguageLab(
        bed, "lab-server", [f"booth{i}" for i in range(4)],
        lesson_seconds=600.0,
    )
    marks = {}

    def driver():
        session = yield from lab.setup()
        print(f"[{bed.sim.now:7.3f}] lesson orchestrated at "
              f"{session.orchestrating_node!r} (the server: the common "
              f"node is the source this time)")
        reply = yield from lab.begin_lesson()
        print(f"[{bed.sim.now:7.3f}] lesson started "
              f"(all booths primed): {reply.accept}")
        marks["t0"] = bed.sim.now
        yield Timeout(bed.sim, 12.0)
        marks["t1"] = bed.sim.now
        print(f"[{bed.sim.now:7.3f}] teacher pauses and repeats from 5 s")
        reply = yield from lab.resume_from(5.0)
        marks["resume"] = bed.sim.now
        yield Timeout(bed.sim, 8.0)
        yield from lab.pause_lesson()
        marks["t2"] = bed.sim.now

    bed.spawn(driver())
    bed.run(60.0)

    firsts = lab.first_presented_after(0.0)
    print(f"\nstart simultaneity across booths: "
          f"{(max(firsts) - min(firsts))*1e3:.1f} ms spread")
    series = interstream_skew_series(
        lab.sinks, marks["t0"] + 2, marks["t1"] - 1
    )
    summary = skew_summary(series)
    print(f"cross-booth skew during the lesson: mean "
          f"{summary['mean']*1e3:.1f} ms, max {summary['max']*1e3:.1f} ms")
    for i, sink in enumerate(lab.sinks):
        resumed = [
            r for r in sink.records if r.delivered_at >= marks["resume"]
        ]
        first_media = resumed[0].media_time if resumed else float("nan")
        print(f"booth{i}: {sink.presented} blocks presented; "
              f"resumed at media {first_media:.2f} s")


if __name__ == "__main__":
    main()
