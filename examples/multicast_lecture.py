#!/usr/bin/env python3
"""A multicast lecture: one stored audio stream to many booths.

Demonstrates the §3.8/§7 extension: a 1:N multicast CM connection over
the source-rooted tree, compared live against N unicast VCs on the same
topology.  The shared uplink reserves the stream once, the slowest
receiver's credits pace the whole group, and a lossy branch is repaired
unicast without re-flooding the tree.

Run:  python examples/multicast_lecture.py
"""

from repro.apps import Testbed
from repro.netsim import BernoulliLoss
from repro.transport import QoSSpec, TransportAddress
from repro.transport.multicast import create_multicast
from repro.transport.osdu import OSDU
from repro.transport.profiles import ClassOfService


def main() -> None:
    booths = 6
    bed = Testbed(seed=13)
    bed.host("lecturer")
    bed.router("campus")
    bed.link("lecturer", "campus", 10e6, prop_delay=0.003)
    for i in range(booths):
        bed.host(f"booth{i}")
        bed.link("campus", f"booth{i}", 10e6, prop_delay=0.002,
                 loss=BernoulliLoss(0.08) if i == booths - 1 else None)
    bed.up()

    qos = QoSSpec.simple(1.5e6, max_osdu_bytes=1000, per=0.5, ber=0.5)
    group = create_multicast(
        bed.entities,
        TransportAddress("lecturer", 1),
        [TransportAddress(f"booth{i}", 1) for i in range(booths)],
        qos,
        cos=ClassOfService.detect_and_correct(),
    )
    uplink = bed.network.graph.edges["lecturer", "campus"]["link"]
    print(f"group {group.vc_id}: {booths} booths, uplink reserves "
          f"{bed.reservations.committed_bps(uplink)/1e6:.1f} Mbit/s "
          f"(one stream, not {booths})")

    received = {i: [] for i in range(booths)}

    def producer():
        for n in range(300):
            yield from group.send_endpoint.write(
                OSDU(size_bytes=800, payload=n)
            )

    def consumer(i):
        def proc():
            endpoint = group.recv_endpoints[f"booth{i}"]
            while True:
                osdu = yield from endpoint.read()
                received[i].append(osdu.payload)
        return proc

    bed.spawn(producer())
    for i in range(booths):
        bed.spawn(consumer(i)())
    bed.run(30.0)

    uplink_copies = uplink.stats.sent_packets
    for i in range(booths):
        holes = 300 - len(received[i])
        print(f"booth{i}: {len(received[i])}/300 units "
              f"({'lossy branch, repaired unicast' if i == booths - 1 else 'clean'}"
              f"{f', {holes} unrecovered' if holes else ''})")
    print(f"uplink carried {uplink_copies} packets for "
          f"{booths}x300 deliveries; repairs sent: "
          f"{group.send_vc.retransmit_count} (unicast, lossy branch only)")


if __name__ == "__main__":
    main()
