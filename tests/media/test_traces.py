"""Frame-trace replay: exact byte sequences, wraparound, priming.

The checked-in traces are regression data: the first frames of each
shipped trace are pinned to literal byte counts, so an accidental
regeneration (or a parser change that reorders/rescales frames) fails
loudly instead of silently shifting every trace-driven scenario's
conformance numbers.
"""

import random

import pytest

from repro.apps.testbed import Testbed
from repro.ansa.stream import VideoQoS
from repro.media.source import StoredMediaSource
from repro.media.traces import (
    FrameTrace,
    available_traces,
    load_trace,
    parse_trace,
    trace_encoding,
)
from repro.orchestration.policy import OrchestrationPolicy
from repro.transport.addresses import TransportAddress

#: Regression pins: the first 8 frames of each checked-in trace.
FIRST_FRAMES = {
    "news": [("I", 8598), ("B", 1085), ("B", 1410), ("P", 2823),
             ("B", 916), ("B", 1473), ("P", 3409), ("B", 1709)],
    "action": [("I", 17198), ("B", 1290), ("B", 1753), ("P", 5226),
               ("B", 2604), ("B", 3320), ("P", 3232), ("B", 3888)],
}


class TestCheckedInTraces:
    def test_both_traces_ship(self):
        assert set(FIRST_FRAMES) <= set(available_traces())

    @pytest.mark.parametrize("name", sorted(FIRST_FRAMES))
    def test_first_frames_pinned(self, name):
        trace = load_trace(name)
        got = [(trace.kind(i), trace.size(i)) for i in range(8)]
        assert got == FIRST_FRAMES[name]

    @pytest.mark.parametrize("name", sorted(FIRST_FRAMES))
    def test_gop_structure(self, name):
        trace = load_trace(name)
        assert trace.gop == 12
        assert len(trace) == 600
        for i in range(len(trace)):
            if i % trace.gop == 0:
                assert trace.kind(i) == "I"
            elif i % 3 == 0:
                assert trace.kind(i) == "P"
            else:
                assert trace.kind(i) == "B"
        # I frames dominate: every I beats every B in its GoP.
        assert trace.max_bytes == max(
            trace.size(i) for i in range(0, len(trace), trace.gop)
        )

    def test_unknown_trace_lists_available(self):
        with pytest.raises(ValueError, match="news"):
            load_trace("nosuchtrace")


class TestParseTrace:
    def test_headers_and_frames(self):
        trace = parse_trace(
            "# name=t fps=30 gop=6\nI 100\nB 10\nP 50\n"
        )
        assert (trace.name, trace.fps, trace.gop) == ("t", 30.0, 6)
        assert trace.sizes == (100, 10, 50)
        assert trace.kinds == ("I", "B", "P")
        assert trace.duration == pytest.approx(3 / 30.0)

    def test_rejects_bad_frame_type(self):
        with pytest.raises(ValueError, match="bad frame"):
            parse_trace("X 100\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no frames"):
            parse_trace("# name=empty\n")


class TestTraceEncoding:
    def test_replay_is_exact_and_wraps(self):
        encoding = trace_encoding("news")
        trace = load_trace("news")
        n = len(trace)
        for i in (0, 1, 7, n - 1, n, n + 1, 3 * n + 5):
            assert encoding.osdu_size(i) == trace.size(i % n)

    def test_replay_ignores_rng(self):
        encoding = trace_encoding("action")
        sizes_with = [encoding.osdu_size(i, random.Random(1))
                      for i in range(50)]
        sizes_without = [encoding.osdu_size(i) for i in range(50)]
        assert sizes_with == sizes_without

    def test_nominal_bps_follows_mean(self):
        trace = load_trace("news")
        encoding = trace_encoding("news")
        assert encoding.nominal_bps == pytest.approx(
            trace.fps * trace.mean_bytes * 8
        )

    def test_frame_trace_validates(self):
        with pytest.raises(ValueError, match="parallel"):
            FrameTrace(name="x", fps=25.0, gop=12,
                       sizes=(1, 2), kinds=("I",))


@pytest.fixture
def bed():
    testbed = Testbed(seed=11)
    testbed.host("src")
    testbed.host("dst")
    testbed.link("src", "dst", 30e6, prop_delay=0.004)
    return testbed.up()


def _run_coro(bed, gen, until=30.0):
    proc = bed.spawn(gen)
    bed.run(until)
    assert proc.finished.is_set, "coroutine did not finish"
    return proc.finished.value


def _make_stream(bed, tsap=5):
    holder = {}

    def driver():
        holder["stream"] = yield from bed.factory.create(
            TransportAddress("src", tsap),
            TransportAddress("dst", tsap),
            # Low compression ratio => a max-OSDU budget comfortably
            # above the news trace's largest I frame (12114 B).
            VideoQoS.of(fps=25.0, compression_ratio=20.0),
        )

    bed.spawn(driver())
    bed.run(5.0)
    return holder["stream"]


class TestTraceThroughTransport:
    def test_delivered_byte_sequence_matches_trace(self, bed):
        """The sink sees the trace's bytes, frame for frame, in order."""
        stream = _make_stream(bed)
        encoding = trace_encoding("news")
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, encoding, total_osdus=60,
        )
        received = []

        def reader():
            while True:
                osdu = yield from stream.recv_endpoint.read()
                received.append(osdu.size_bytes)

        bed.spawn(reader())
        source.play()
        bed.run(10.0)
        trace = load_trace("news")
        assert source.generated == 60
        assert received == [trace.size(i) for i in range(60)]

    def test_pause_resume_under_orchestration_priming(self, bed):
        """Orch.Prime starts trace replay; Orch.Stop pauses it; a
        restart resumes from the same media position (no frames lost
        or replayed out of sequence)."""
        from repro.media.sink import PlayoutSink

        stream = _make_stream(bed)
        encoding = trace_encoding("news")
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, encoding, total_osdus=500,
        )
        sink = PlayoutSink(
            bed.sim, stream.recv_endpoint, 25.0,
            bed.network.host("dst").clock, mode="gated",
        )
        holder = {}

        def driver():
            session = yield from bed.hlo.orchestrate(
                [stream.spec(max_drop_per_interval=0)],
                OrchestrationPolicy(interval_length=0.2),
            )
            holder["session"] = session
            yield from session.prime()

        bed.spawn(driver())
        bed.run(3.0)
        session = holder["session"]
        # Priming fills the pipeline: the source generates (replaying
        # the trace) but the gated sink presents nothing yet.
        assert source.generating
        primed_count = source.generated
        assert primed_count > 0
        assert sink.presented == 0

        _run_coro(bed, session.start(), until=2.0)
        bed.run(4.0)
        assert sink.presented > 0

        _run_coro(bed, session.stop(), until=2.0)
        bed.run(0.2)
        assert not source.generating  # Orch.Stop pauses the source
        paused_generated = source.generated
        paused_presented = sink.presented
        bed.run(2.0)
        assert source.generated == paused_generated
        assert sink.presented == paused_presented

        _run_coro(bed, session.start(), until=2.0)
        bed.run(3.0)
        assert source.generating
        assert source.generated > paused_generated
        assert sink.presented > paused_presented
        # Presented media is a contiguous prefix of the trace --
        # pause/resume never skipped or reordered a frame.
        seqs = [record.seq for record in sink.records]
        assert seqs == list(range(len(seqs)))
        trace = load_trace("news")
        assert [record.media_time for record in sink.records] == (
            pytest.approx([i / trace.fps for i in range(len(seqs))])
        )
