"""Tests for stored/live sources and playout sinks."""

import pytest

from repro.apps.testbed import Testbed
from repro.ansa.stream import AudioQoS, VideoQoS
from repro.media.encodings import video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import LiveSource, StoredMediaSource
from repro.media.lipsync import (
    fraction_within,
    interstream_skew_series,
    skew_summary,
)
from repro.transport.addresses import TransportAddress


@pytest.fixture
def bed():
    testbed = Testbed(seed=6)
    testbed.host("src", clock_skew_ppm=200.0)
    testbed.host("dst", clock_skew_ppm=-200.0)
    testbed.link("src", "dst", 20e6, prop_delay=0.004)
    return testbed.up()


def make_stream(bed, qos=None, tsap=5):
    holder = {}

    def driver():
        stream = yield from bed.factory.create(
            TransportAddress("src", tsap),
            TransportAddress("dst", tsap),
            qos or VideoQoS.of(fps=25.0),
        )
        holder["stream"] = stream

    bed.spawn(driver())
    bed.run(5.0)
    return holder["stream"]


class TestStoredSource:
    def test_generates_when_playing(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
            total_osdus=100,
        )
        sink = PlayoutSink(
            bed.sim, stream.recv_endpoint, 25.0,
            bed.network.host("dst").clock, mode="gated",
        )
        source.play()
        bed.run(10.0)
        assert source.generated == 100
        assert sink.presented == 100

    def test_pause_stops_generation(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
        )
        source.play()
        bed.run(2.0)
        source.pause()
        bed.run(0.5)
        generated = source.generated
        bed.run(3.0)
        # At most one unit in flight through the writer loop.
        assert source.generated <= generated + 1

    def test_seek_changes_position(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
        )
        source.seek(40.0)
        assert source.position == 1000
        assert source.media_time == pytest.approx(40.0)

    def test_media_time_stamped(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
            total_osdus=10,
        )
        sink = PlayoutSink(
            bed.sim, stream.recv_endpoint, 25.0,
            bed.network.host("dst").clock,
        )
        source.play()
        bed.run(5.0)
        assert [r.media_time for r in sink.records] == pytest.approx(
            [i / 25.0 for i in range(10)]
        )

    def test_finite_media_stops_at_end(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
            total_osdus=5,
        )
        source.play()
        bed.run(5.0)
        assert source.generated == 5

    def test_requires_send_endpoint(self, bed):
        stream = make_stream(bed)
        with pytest.raises(ValueError):
            StoredMediaSource(
                bed.sim, stream.recv_endpoint, video_cbr(25.0, 2000)
            )


class TestLiveSource:
    def test_capture_rate_follows_local_clock(self, bed):
        stream = make_stream(bed)
        clock = bed.network.host("src").clock
        source = LiveSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000), clock
        )
        source.switch_on()
        bed.run(10.0)
        # 25 fps on a +200 ppm clock over ~10 s.
        assert source.index == pytest.approx(250, abs=2)

    def test_switch_off_stops_capture(self, bed):
        stream = make_stream(bed)
        clock = bed.network.host("src").clock
        source = LiveSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000), clock
        )
        source.switch_on()
        bed.run(2.0)
        source.switch_off()
        index = source.index
        bed.run(2.0)
        assert source.index <= index + 1

    def test_overruns_counted_when_buffer_full(self, bed):
        # A tiny contract: the link admits the stream but the paced
        # sender cannot keep up with the camera, so the buffer fills.
        qos = VideoQoS.of(fps=25.0, headroom=1.0)
        slow_qos = AudioQoS.of(8000.0, 1, 32, headroom=1.0)
        stream = make_stream(bed, qos=slow_qos, tsap=7)
        clock = bed.network.host("src").clock
        # Camera generates 2000-byte frames at 25 fps into a VC sized
        # for 32-byte voice: hopeless, so overruns accumulate.
        source = LiveSource(
            bed.sim, stream.send_endpoint,
            video_cbr(25.0, 32), clock,
        )
        source.switch_on()
        bed.run(10.0)
        assert source.overrun_drops > 0
        assert source.generated + source.overrun_drops == source.index


class TestPlayoutAndLipsync:
    def test_paced_sink_presents_on_local_clock(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
            total_osdus=100,
        )
        sink = PlayoutSink(
            bed.sim, stream.recv_endpoint, 25.0,
            bed.network.host("dst").clock, mode="paced",
        )
        source.play()
        bed.run(10.0)
        gaps = [
            b.delivered_at - a.delivered_at
            for a, b in zip(sink.records[5:], sink.records[6:])
        ]
        assert all(g == pytest.approx(0.04, rel=0.01) for g in gaps)

    def test_media_position_at(self, bed):
        stream = make_stream(bed)
        source = StoredMediaSource(
            bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
            total_osdus=50,
        )
        sink = PlayoutSink(
            bed.sim, stream.recv_endpoint, 25.0,
            bed.network.host("dst").clock,
        )
        source.play()
        bed.run(10.0)
        end = sink.records[-1]
        assert sink.media_position_at(end.delivered_at + 1) == end.media_time
        assert sink.media_position_at(-1.0) == 0.0

    def test_skew_series_and_summary(self, bed):
        stream_a = make_stream(bed, tsap=11)
        stream_b = make_stream(bed, tsap=13)
        clock = bed.network.host("dst").clock
        sinks = []
        for stream in (stream_a, stream_b):
            source = StoredMediaSource(
                bed.sim, stream.send_endpoint, video_cbr(25.0, 2000),
                total_osdus=200,
            )
            sinks.append(
                PlayoutSink(bed.sim, stream.recv_endpoint, 25.0, clock)
            )
            source.play()
        bed.run(12.0)
        series = interstream_skew_series(sinks, 1.0, 7.0, dt=0.1)
        summary = skew_summary(series)
        assert summary["max"] < 0.5
        assert 0.0 <= fraction_within(series, 0.08) <= 1.0

    def test_skew_requires_two_sinks(self, bed):
        with pytest.raises(ValueError):
            interstream_skew_series([], 0, 1)

    def test_invalid_sink_mode_rejected(self, bed):
        stream = make_stream(bed)
        with pytest.raises(ValueError):
            PlayoutSink(
                bed.sim, stream.recv_endpoint, 25.0,
                bed.network.host("dst").clock, mode="warp",
            )
