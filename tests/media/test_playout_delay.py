"""De-jitter playout delay in paced sinks."""

import pytest

from repro.apps.testbed import Testbed
from repro.ansa.stream import VideoQoS
from repro.media.encodings import video_cbr
from repro.media.sink import PlayoutSink
from repro.media.source import StoredMediaSource
from repro.netsim.link import UniformJitter
from repro.transport.addresses import TransportAddress


def jittery_stream(playout_delay, jitter_s=0.05, seed=95):
    bed = Testbed(seed=seed)
    bed.host("src")
    bed.host("dst")
    bed.link("src", "dst", 20e6, prop_delay=0.004,
             jitter=UniformJitter(jitter_s))
    bed.up()
    holder = {}

    def connector():
        # headroom 1.0: arrivals pace at exactly the media rate, so
        # the de-jitter point is the only protection against jitter.
        holder["stream"] = yield from bed.factory.create(
            TransportAddress("src", 1), TransportAddress("dst", 1),
            VideoQoS.of(fps=25.0, jitter_bound=0.2, headroom=1.0,
                        buffer_osdus=4),
        )

    bed.spawn(connector())
    bed.run(5.0)
    stream = holder["stream"]
    source = StoredMediaSource(
        bed.sim, stream.send_endpoint,
        video_cbr(25.0, stream.media_qos.osdu_bytes), total_osdus=250,
    )
    sink = PlayoutSink(
        bed.sim, stream.recv_endpoint, 25.0,
        bed.network.host("dst").clock, mode="paced",
        playout_delay=playout_delay,
    )
    source.play()
    bed.run(20.0)
    return sink


class TestPlayoutDelay:
    def test_zero_delay_suffers_late_units_under_jitter(self):
        sink = jittery_stream(playout_delay=0.0)
        assert sink.late_count > 10

    def test_sufficient_delay_absorbs_jitter(self):
        # 50 ms uniform jitter: a 100 ms playout point absorbs it.
        sink = jittery_stream(playout_delay=0.1)
        assert sink.late_count == 0
        assert sink.presented == 250

    def test_presentation_cadence_is_exact_behind_playout_point(self):
        sink = jittery_stream(playout_delay=0.1)
        gaps = [
            b.delivered_at - a.delivered_at
            for a, b in zip(sink.records[5:], sink.records[6:])
        ]
        assert all(g == pytest.approx(0.04, rel=0.01) for g in gaps)

    def test_late_fraction_decreases_with_delay(self):
        lates = [
            jittery_stream(playout_delay=d).late_count
            for d in (0.0, 0.02, 0.05, 0.1)
        ]
        assert lates == sorted(lates, reverse=True)
        assert lates[0] > lates[-1]

    def test_negative_delay_rejected(self):
        bed = Testbed(seed=1)
        bed.host("src")
        bed.host("dst")
        bed.link("src", "dst", 10e6)
        bed.up()
        holder = {}

        def connector():
            holder["stream"] = yield from bed.factory.create(
                TransportAddress("src", 1), TransportAddress("dst", 1),
                VideoQoS.of(fps=25.0),
            )

        bed.spawn(connector())
        bed.run(5.0)
        with pytest.raises(ValueError):
            PlayoutSink(
                bed.sim, holder["stream"].recv_endpoint, 25.0,
                bed.network.host("dst").clock, mode="paced",
                playout_delay=-0.1,
            )
