"""Tests for media encodings."""

import random

import pytest

from repro.media.encodings import (
    CBREncoding,
    VBREncoding,
    audio_pcm,
    video_cbr,
    video_vbr,
)


class TestCBR:
    def test_constant_sizes(self):
        enc = video_cbr(25.0, 4000)
        assert all(enc.osdu_size(i) == 4000 for i in range(50))

    def test_nominal_bps(self):
        enc = video_cbr(25.0, 4000)
        assert enc.nominal_bps == pytest.approx(25 * 4000 * 8)

    def test_audio_pcm_defaults(self):
        enc = audio_pcm()
        assert enc.osdu_rate == pytest.approx(250.0)
        assert enc.max_osdu_bytes == 32
        assert enc.nominal_bps == pytest.approx(64000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CBREncoding("x", 0.0, 100)
        with pytest.raises(ValueError):
            CBREncoding("x", 1.0, 0)


class TestVBR:
    def test_i_frames_at_gop_boundaries(self):
        enc = VBREncoding("v", 25.0, 8000, gop=10, noise=0.0)
        assert enc.osdu_size(0) == 8000
        assert enc.osdu_size(10) == 8000
        assert enc.osdu_size(5) == int(8000 * 0.35)

    def test_sizes_bounded(self):
        enc = video_vbr(25.0, 8000)
        rng = random.Random(1)
        sizes = [enc.osdu_size(i, rng) for i in range(500)]
        assert all(1 <= s <= 8000 for s in sizes)

    def test_mean_matches_analytic(self):
        enc = VBREncoding("v", 25.0, 8000, gop=10, p_fraction=0.5, noise=0.2)
        rng = random.Random(2)
        sizes = [enc.osdu_size(i, rng) for i in range(10_000)]
        assert sum(sizes) / len(sizes) == pytest.approx(
            enc.mean_osdu_bytes, rel=0.05
        )

    def test_nominal_bps_uses_mean(self):
        enc = VBREncoding("v", 25.0, 8000, gop=10, p_fraction=0.5)
        assert enc.nominal_bps == pytest.approx(
            25 * enc.mean_osdu_bytes * 8
        )

    def test_no_rng_is_deterministic(self):
        enc = video_vbr()
        assert enc.osdu_size(3) == enc.osdu_size(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            VBREncoding("v", 25.0, 8000, gop=0)
        with pytest.raises(ValueError):
            VBREncoding("v", 25.0, 8000, p_fraction=0.0)
