"""ABR ladder switching driven by T-QoS.indication."""

import pytest

from repro.media.abr import (
    AbrController,
    AbrLadder,
    DEFAULT_RUNG_SCALES,
    ladder_from_encoding,
)
from repro.media.encodings import video_cbr
from repro.sim.sync import Queue
from repro.transport.addresses import TransportAddress
from repro.transport.primitives import TQoSIndication
from repro.transport.qos import QoSContract, QoSMeasurement, QoSViolation


class _Binding:
    """Just enough of a TSAPBinding for the controller to watch."""

    def __init__(self, sim):
        self.primitives = Queue(sim)

    def next_primitive(self):
        return self.primitives.get()

    def deliver(self, primitive):
        self.primitives.put_nowait(primitive)


class _Endpoint:
    def __init__(self, vc_id):
        self.vc_id = vc_id


class _Source:
    def __init__(self, vc_id, encoding):
        self.endpoint = _Endpoint(vc_id)
        self.encoding = encoding


def _indication(vc_id="vc-1"):
    return TQoSIndication(
        initiator=TransportAddress("a", 1),
        src=TransportAddress("a", 1),
        dst=TransportAddress("b", 1),
        initial_qos=QoSContract(
            throughput_bps=1e6, delay_s=0.1, jitter_s=0.05,
            packet_error_rate=0.01, bit_error_rate=1e-6,
            max_osdu_bytes=8192,
        ),
        sample_period=0.5,
        vc_id=vc_id,
        current_qos=QoSMeasurement(period_start=0.0, period_end=0.5),
        violations=[QoSViolation("delay_s", 0.1, 0.4)],
    )


def _controller(sim, **kwargs):
    base = video_cbr(25.0, 4000)
    ladder = ladder_from_encoding(base)
    binding = _Binding(sim)
    source = _Source("vc-1", base)
    controller = AbrController(
        sim, binding, source, ladder,
        sample_period=0.5, **kwargs,
    )
    return controller, binding, source, ladder


class TestAbrLadder:
    def test_requires_descending_bitrates(self):
        base = video_cbr(25.0, 4000)
        with pytest.raises(ValueError, match="highest bitrate first"):
            AbrLadder(list(reversed(ladder_from_encoding(base).rungs)))

    def test_ladder_from_encoding_scales(self):
        base = video_cbr(25.0, 4000)
        ladder = ladder_from_encoding(base)
        assert len(ladder) == len(DEFAULT_RUNG_SCALES)
        assert ladder[0] is base  # top rung is the unadapted encoding
        rates = [rung.nominal_bps for rung in ladder.rungs]
        assert rates == sorted(rates, reverse=True)
        assert ladder[1].osdu_size(0) == int(base.osdu_size(0) * 0.7)

    def test_rejects_nondecreasing_scales(self):
        base = video_cbr(25.0, 4000)
        with pytest.raises(ValueError, match="decreasing"):
            ladder_from_encoding(base, scales=(0.5, 0.7))


class TestAbrController:
    def test_indication_steps_down(self, sim):
        controller, binding, source, ladder = _controller(sim)
        binding.deliver(_indication())
        sim.run(until=0.1)
        assert controller.rung == 1
        assert source.encoding is ladder[1]
        assert len(controller.switches) == 1
        assert controller.switches[0].reason == "qos-indication"
        assert controller.switches[0].violations == ("delay_s",)

    def test_other_vcs_indications_ignored(self, sim):
        controller, binding, _, _ = _controller(sim)
        binding.deliver(_indication(vc_id="someone-else"))
        sim.run(until=0.1)
        assert controller.rung == 0
        assert controller.switches == []

    def test_clamps_at_bottom_rung(self, sim):
        controller, binding, _, ladder = _controller(sim)
        for _ in range(len(ladder) + 3):
            binding.deliver(_indication())
        sim.run(until=0.1)
        assert controller.rung == len(ladder) - 1
        assert len(controller.switches) == len(ladder) - 1

    def test_clean_periods_step_back_up(self, sim):
        controller, binding, source, ladder = _controller(
            sim, upswitch_after=3,
        )
        binding.deliver(_indication())
        sim.run(until=0.1)
        assert controller.rung == 1
        # The period at 0.5 s absorbs the indication; three clean
        # periods later (1.0, 1.5, 2.0 s) the controller climbs back.
        sim.run(until=2.05)
        assert controller.rung == 0
        assert source.encoding is ladder[0]
        assert controller.switches[-1].reason == "recovered"

    def test_indication_resets_clean_period_count(self, sim):
        controller, binding, _, _ = _controller(sim, upswitch_after=3)
        binding.deliver(_indication())
        binding.deliver(_indication())
        sim.run(until=0.1)
        assert controller.rung == 2
        # Two clean periods, then another indication: counter resets,
        # so two further clean periods are not enough to climb.
        sim.run(until=1.05)
        binding.deliver(_indication())
        sim.run(until=2.05)
        assert controller.rung == 3
        sim.run(until=2.6)
        assert controller.rung == 3

    def test_metrics_counters(self, sim):
        _, binding, _, _ = _controller(sim)
        binding.deliver(_indication())
        sim.run(until=2.0)
        assert sim.metrics.counter("abr.switches").value >= 2
        assert sim.metrics.counter("abr.down").value == 1
        assert sim.metrics.counter("abr.up").value >= 1

    def test_validates_parameters(self, sim):
        base = video_cbr(25.0, 4000)
        ladder = ladder_from_encoding(base)
        with pytest.raises(ValueError, match="sample_period"):
            AbrController(sim, _Binding(sim), _Source("v", base), ladder,
                          sample_period=0.0)
        with pytest.raises(ValueError, match="upswitch_after"):
            AbrController(sim, _Binding(sim), _Source("v", base), ladder,
                          upswitch_after=0)
