"""Tests for Streams and media-level QoS translation."""

import pytest

from repro.ansa.stream import AudioQoS, MediaQoS, TextQoS, VideoQoS
from repro.apps.testbed import Testbed
from repro.transport.addresses import TransportAddress
from repro.transport.service import ConnectionRefused


@pytest.fixture
def bed():
    testbed = Testbed(seed=4)
    testbed.host("server")
    testbed.host("client")
    testbed.link("server", "client", 20e6, prop_delay=0.004)
    return testbed.up()


class TestMediaQoS:
    def test_video_frame_size_from_resolution(self):
        qos = VideoQoS.of(fps=25, width=352, height=288, colour=True,
                          compression_ratio=50.0)
        assert qos.osdu_bytes == int(352 * 288 * 3 / 50)
        assert qos.osdu_rate == 25

    def test_monochrome_smaller_than_colour(self):
        colour = VideoQoS.of(colour=True)
        mono = VideoQoS.of(colour=False)
        assert mono.osdu_bytes == colour.osdu_bytes // 3

    def test_throughput_includes_wire_overhead(self):
        qos = AudioQoS.telephone()
        payload_only = qos.osdu_rate * qos.osdu_bytes * 8 * qos.headroom
        assert qos.throughput_bps > payload_only

    def test_telephone_rate(self):
        qos = AudioQoS.telephone()
        assert qos.osdu_rate == pytest.approx(250.0)  # 8000 / 32
        assert qos.osdu_bytes == 32

    def test_cd_quality_higher_bandwidth(self):
        assert AudioQoS.cd().throughput_bps > AudioQoS.telephone().throughput_bps

    def test_transport_translation_fields(self):
        qos = VideoQoS.of(fps=25)
        spec = qos.to_transport_qos()
        assert spec.throughput.preferred == pytest.approx(qos.throughput_bps)
        assert spec.max_osdu_bytes == qos.osdu_bytes
        assert spec.buffer_osdus == qos.buffer_osdus

    def test_invalid_media_qos_rejected(self):
        with pytest.raises(ValueError):
            MediaQoS(osdu_rate=0, osdu_bytes=10)
        with pytest.raises(ValueError):
            MediaQoS(osdu_rate=1, osdu_bytes=10, headroom=0.5)


class TestStreamCreation:
    def _create(self, bed, qos=None):
        holder = {}

        def driver():
            stream = yield from bed.factory.create(
                TransportAddress("server", 5),
                TransportAddress("client", 5),
                qos or AudioQoS.telephone(),
            )
            holder["stream"] = stream

        bed.spawn(driver())
        bed.run(5.0)
        return holder["stream"]

    def test_create_returns_connected_stream(self, bed):
        stream = self._create(bed)
        assert stream.source_node == "server"
        assert stream.sink_node == "client"
        assert stream.send_endpoint.kind == "send"
        assert stream.recv_endpoint.kind == "recv"

    def test_stream_spec_for_orchestration(self, bed):
        stream = self._create(bed)
        spec = stream.spec()
        assert spec.vc_id == stream.vc_id
        assert spec.osdu_rate == pytest.approx(250.0)
        assert spec.max_drop_per_interval >= 1  # telephone tolerates loss

    def test_lossless_media_gets_zero_drop_budget(self, bed):
        stream = self._create(bed, TextQoS.captions())
        assert stream.spec().max_drop_per_interval == 0

    def test_renegotiate_in_media_terms(self, bed):
        stream = self._create(bed, AudioQoS.telephone())
        holder = {}

        def driver():
            ok = yield from stream.renegotiate(AudioQoS.cd())
            holder["ok"] = ok

        bed.spawn(driver())
        bed.run(5.0)
        assert holder["ok"]
        assert stream.media_qos.sample_rate == pytest.approx(44100.0)
        send_vc = bed.entities["server"].send_vcs[stream.vc_id]
        assert send_vc.contract.throughput_bps > 1e6

    def test_refused_renegotiation_keeps_old_qos(self, bed):
        stream = self._create(bed, AudioQoS.telephone())
        impossible = AudioQoS.of(
            8000.0, 1, 32, headroom=1.0,
            osdu_rate=250.0, osdu_bytes=32,
        )
        # Demand far beyond the 20 Mbit/s link.
        huge = VideoQoS.of(fps=200, compression_ratio=2.0)
        holder = {}

        def driver():
            ok = yield from stream.renegotiate(huge)
            holder["ok"] = ok

        bed.spawn(driver())
        bed.run(5.0)
        assert not holder["ok"]
        assert isinstance(stream.media_qos, AudioQoS)

    def test_close_releases_vc(self, bed):
        stream = self._create(bed)
        stream.close()
        bed.run(1.0)
        assert stream.vc_id not in bed.entities["server"].send_vcs
        assert stream.vc_id not in bed.entities["client"].recv_vcs

    def test_create_refused_when_link_too_small(self):
        testbed = Testbed(seed=4)
        testbed.host("server")
        testbed.host("client")
        testbed.link("server", "client", 0.05e6)
        testbed.up()
        holder = {}

        def driver():
            try:
                yield from testbed.factory.create(
                    TransportAddress("server", 5),
                    TransportAddress("client", 5),
                    AudioQoS.telephone(),
                )
            except ConnectionRefused as exc:
                holder["reason"] = exc.reason

        testbed.spawn(driver())
        testbed.run(5.0)
        assert "network" in holder["reason"]
