"""Tests for the trader and REX-like delay-bounded RPC."""

import pytest

from repro.ansa.interface import ServiceInterface
from repro.ansa.rex import InvocationError, InvocationTimeout, RexRPC
from repro.ansa.trader import Trader
from repro.netsim.topology import Network
from repro.sim.random import RandomStreams
from repro.sim.scheduler import Timeout

from tests.conftest import run_coro


@pytest.fixture
def platform(sim):
    net = Network(sim, RandomStreams(9))
    net.add_host("server")
    net.add_host("client")
    net.add_link("server", "client", 10e6, prop_delay=0.01)
    trader = Trader()
    rpc = RexRPC(sim, net, trader)
    return net, trader, rpc


class TestTrader:
    def test_export_import(self, platform):
        _net, trader, _rpc = platform
        interface = ServiceInterface("server", "Calc")
        ref = trader.export("calc", interface)
        assert trader.import_("calc") == ref

    def test_import_unknown_raises(self, platform):
        _net, trader, _rpc = platform
        with pytest.raises(KeyError):
            trader.import_("ghost")

    def test_multiple_offers(self, platform):
        _net, trader, _rpc = platform
        a = trader.export("svc", ServiceInterface("server", "A"))
        b = trader.export("svc", ServiceInterface("client", "A"))
        assert trader.import_all("svc") == [a, b]
        assert trader.import_("svc") == a

    def test_withdraw(self, platform):
        _net, trader, _rpc = platform
        interface = ServiceInterface("server", "Calc")
        ref = trader.export("calc", interface)
        trader.withdraw("calc", ref)
        with pytest.raises(KeyError):
            trader.import_("calc")
        assert trader.resolve(ref) is None

    def test_duplicate_operation_rejected(self):
        interface = ServiceInterface("server", "Calc")
        interface.export("add", lambda a, b: a + b)
        with pytest.raises(ValueError):
            interface.export("add", lambda a, b: a - b)


class TestInvocation:
    def _export_calc(self, sim, trader):
        interface = ServiceInterface("server", "Calc")
        interface.export("add", lambda a, b: a + b)
        interface.export("fail", self._failing)

        def slow(x):
            yield Timeout(sim, 0.5)
            return x * 2

        interface.export("slow_double", slow, is_coroutine=True)
        return trader.export("calc", interface)

    @staticmethod
    def _failing():
        raise RuntimeError("deliberate")

    def test_successful_invocation(self, sim, platform):
        _net, trader, rpc = platform
        ref = self._export_calc(sim, trader)

        def caller():
            value = yield from rpc.invoke("client", ref, "add", 2, 3)
            return (sim.now, value)

        when, value = run_coro(sim, caller())
        assert value == 5
        # One round trip over the 10 ms link.
        assert when >= 0.02

    def test_coroutine_operation(self, sim, platform):
        _net, trader, rpc = platform
        ref = self._export_calc(sim, trader)

        def caller():
            return (yield from rpc.invoke("client", ref, "slow_double", 21))

        assert run_coro(sim, caller()) == 42

    def test_remote_exception_marshalled(self, sim, platform):
        _net, trader, rpc = platform
        ref = self._export_calc(sim, trader)

        def caller():
            try:
                yield from rpc.invoke("client", ref, "fail")
            except InvocationError as exc:
                return str(exc)

        assert "deliberate" in run_coro(sim, caller())

    def test_unknown_operation_rejected(self, sim, platform):
        _net, trader, rpc = platform
        ref = self._export_calc(sim, trader)

        def caller():
            try:
                yield from rpc.invoke("client", ref, "nope")
            except InvocationError as exc:
                return str(exc)

        assert "nope" in run_coro(sim, caller())

    def test_deadline_met(self, sim, platform):
        _net, trader, rpc = platform
        ref = self._export_calc(sim, trader)

        def caller():
            return (
                yield from rpc.invoke("client", ref, "add", 1, 1, deadline=0.1)
            )

        assert run_coro(sim, caller()) == 2

    def test_deadline_exceeded_raises(self, sim, platform):
        """The delay-bounded invocation of section 2.2."""
        _net, trader, rpc = platform
        ref = self._export_calc(sim, trader)

        def caller():
            try:
                yield from rpc.invoke(
                    "client", ref, "slow_double", 1, deadline=0.1
                )
            except InvocationTimeout:
                return ("timeout", sim.now)

        kind, when = run_coro(sim, caller())
        assert kind == "timeout"
        assert when == pytest.approx(0.1)
        assert rpc.timeouts == 1

    def test_unknown_interface_rejected(self, sim, platform):
        _net, trader, rpc = platform
        from repro.ansa.interface import InterfaceRef

        ghost = InterfaceRef("server", 99999, "Ghost")

        def caller():
            try:
                yield from rpc.invoke("client", ghost, "x")
            except InvocationError as exc:
                return str(exc)

        assert "unknown interface" in run_coro(sim, caller())
