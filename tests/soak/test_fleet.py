"""Fleet spec validation, partitioning, inline runs, and the CLI.

Everything here runs in-process (inline mode); the spawned-worker
determinism contract lives in ``tests/integration/test_shard_fleet.py``.
"""

import json

import pytest

from repro.soak import FleetSpec, fleet_partition, run_fleet
from repro.soak.__main__ import main as soak_main


class TestFleetSpec:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(cells=0), "cell"),
        (dict(vcs_per_cell=0), "VC"),
        (dict(shards=5, cells=4), "shards"),
        (dict(shards=0), "shards"),
        (dict(cp_pairs=-1), "cp_pairs"),
        (dict(duration=0.0), "duration"),
        (dict(cp_pairs=1, duration=2.0), "ready/unready"),
        (dict(cross_traffic=True, cells=1), "two cells"),
        (dict(pump_period=0.0), "pump_period"),
    ])
    def test_rejects_unbuildable_specs(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FleetSpec(**kwargs).validate()

    def test_round_robin_assignment(self):
        spec = FleetSpec(cells=5, shards=2)
        assert [spec.cell_shard(j) for j in range(5)] == [0, 1, 0, 1, 0]
        assert spec.total_vcs == 5 * spec.vcs_per_cell


class TestFleetPartition:
    def test_only_ring_links_cut(self):
        spec = FleetSpec(cells=4, shards=2, cp_pairs=2, cross_traffic=True)
        part = fleet_partition(spec)
        # Every ring hop joins consecutive cells on opposite shards.
        assert len(part.cuts) == 4
        assert all(c.prop_delay == spec.ring_prop_delay for c in part.cuts)
        assert part.lookahead == spec.ring_prop_delay
        # Cell and control-plane links stay local.
        local = [s for shard in part.local for s in shard]
        assert len(local) == 4 * 2 + 2 * 4

    def test_no_cross_traffic_means_no_cuts(self):
        part = fleet_partition(FleetSpec(cells=4, shards=4))
        assert part.cuts == ()
        assert part.lookahead == float("inf")

    def test_wraparound_ring_link_can_stay_local(self):
        # cells=5, shards=2: cell 4 -> cell 0 are both shard 0.
        spec = FleetSpec(cells=5, shards=2, cross_traffic=True)
        part = fleet_partition(spec)
        assert len(part.cuts) == 4  # one of five ring hops is local


class TestInlineFleet:
    def test_small_fleet_runs_healthy(self):
        spec = FleetSpec(
            cells=2, vcs_per_cell=4, cp_pairs=1, duration=6.0,
            cross_traffic=True, tight_every=4,
        )
        result = run_fleet(spec, inline=True)
        assert result.mode == "inline"
        assert result.invariant_failures() == []
        counts = result.payloads[0]["counts"]
        assert counts["pump_vcs"] == 8
        assert counts["cross_vcs"] == 2
        assert counts["pump_sent"] > 0
        assert counts["cross_exported"] == 0  # nothing leaves inline
        summary = result.audit["summary"]
        # Two tight VCs (global indices 3 and 7) violate every period.
        assert summary["counts"]["violated"] > 0
        assert 0 < summary["conformance"] < 1

    def test_tight_every_zero_disables_violations(self):
        spec = FleetSpec(
            cells=2, vcs_per_cell=2, cp_pairs=0, duration=5.0,
            tight_every=0,
        )
        result = run_fleet(spec, inline=True)
        assert result.audit["summary"]["counts"]["violated"] == 0
        assert result.invariant_failures() == []

    def test_max_timeline_bounds_the_snapshot(self):
        spec = FleetSpec(
            cells=1, vcs_per_cell=2, cp_pairs=0, duration=10.0,
            max_timeline=3,
        )
        result = run_fleet(spec, inline=True)
        for conn in result.audit["connections"]:
            assert len(conn["timeline"]) <= 3
            # Verdict *counts* still cover every period.
            assert sum(conn["counts"].values()) >= 8


class TestSoakCLI:
    def test_inline_smoke_writes_and_renders(self, tmp_path, capsys):
        out = tmp_path / "audit.json"
        code = soak_main([
            "--inline", "--cells", "2", "--vcs-per-cell", "2",
            "--cp-pairs", "1", "--duration", "5", "--render",
            "--max-rows", "4", "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["kind"] == "repro-audit"
        captured = capsys.readouterr().out
        assert "inline run" in captured
        assert "Per-VC conformance" in captured

    def test_cli_rejects_bad_spec_with_usage_exit(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            soak_main(["--cells", "0", "--inline"])
        assert excinfo.value.code == 2
        assert "cell" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["--workload", "trace:nosuch", "--inline"],
        ["--shards", "9", "--cells", "2", "--inline"],
        ["--topology", "hypercube", "--inline"],
        ["--flow", "closed", "--inline"],
        ["--no-such-flag"],
    ])
    def test_cli_usage_errors_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            soak_main(argv)
        assert excinfo.value.code == 2
        assert capsys.readouterr().err

    def test_cli_list_prints_presets(self, capsys):
        assert soak_main(["--list"]) == 0
        out = capsys.readouterr().out
        for preset in ("smoke", "pipeline-smoke", "soak", "trace-abr"):
            assert preset in out

    def test_cli_preset_applies_defaults_but_flags_win(self, capsys):
        code = soak_main([
            "--preset", "pipeline-smoke", "--inline", "--duration", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cell(s) x 3 VC(s)" in out
        assert "4 virtual s" in out
